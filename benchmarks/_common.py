"""Shared builders for the benchmark harness.

Each ``bench_*.py`` module reproduces one figure or claim of the paper
(see DESIGN.md §3 and EXPERIMENTS.md).  The interesting measurements are
*simulated* quantities (message counts, simulated latency, forced
writes); pytest-benchmark wraps each experiment so the harness also
reports the wall-clock cost of running it.
"""

import json
import os
import random

from repro.apps.banking import (
    check_consistency,
    debit_credit_program,
    install_banking,
    populate_banking,
)
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec
from repro.encompass import SystemBuilder
from repro.workloads import run_closed_loop


def build_banking_system(
    seed=7,
    cpus=4,
    volumes=1,
    accounts=24,
    branches=2,
    tellers=8,
    server_instances=3,
    restart_limit=8,
    terminals=8,
    keep_trace=True,
    front_end=False,
    cache_capacity=256,
    measure=None,
    trace=None,
):
    """A standard banking node, optionally with a terminal front-end node.

    ``measure`` defaults to whether ``BENCH_XRAY`` is set, so an XRAY'd
    harness run measures the same systems it reports on; ``trace``
    likewise defaults to ``BENCH_TRACE``, so a traced harness run can
    export per-experiment timelines (see :func:`maybe_dump_report`).
    """
    if measure is None:
        measure = bool(os.environ.get("BENCH_XRAY"))
    if trace is None:
        trace = bench_trace_enabled()
    builder = SystemBuilder(seed=seed, keep_trace=keep_trace, measure=measure,
                            trace=trace)
    builder.add_node("alpha", cpus=cpus)
    if front_end:
        builder.add_node("term", cpus=2)
    cpu_pairs = [(c, c + 1) for c in range(0, cpus - 1, 2)]
    volume_names = []
    for v in range(volumes):
        pair = cpu_pairs[v % len(cpu_pairs)]
        name = f"$data{v}" if volumes > 1 else "$data"
        builder.add_volume("alpha", name, cpus=pair, cache_capacity=cache_capacity)
        volume_names.append(name)
    if volumes == 1:
        install_banking(builder, "alpha", "$data",
                        server_instances=server_instances)
    else:
        # Spread the files: branch/teller on volume 0, history on volume
        # 1, the account file key-range partitioned over the rest.
        account_volumes = volume_names[2:] if volumes > 2 else volume_names
        step = max(accounts // len(account_volumes), 1)
        partitions = [PartitionSpec("alpha", account_volumes[0])]
        for index in range(1, len(account_volumes)):
            partitions.append(
                PartitionSpec("alpha", account_volumes[index], low_key=(index * step,))
            )
        install_banking(
            builder, "alpha", volume_names[0],
            server_instances=server_instances,
            data_partitions=tuple(partitions),
            meta_partition=PartitionSpec("alpha", volume_names[0]),
            history_partition=PartitionSpec("alpha", volume_names[1 % volumes]),
        )
    tcp_cpus = (cpus - 2, cpus - 1)
    builder.add_tcp("alpha", "$tcp1", cpus=tcp_cpus, restart_limit=restart_limit)
    builder.add_program("alpha", "$tcp1", "debit-credit", debit_credit_program)
    terminal_ids = [f"T{i}" for i in range(terminals)]
    for terminal in terminal_ids:
        builder.add_terminal("alpha", "$tcp1", terminal, "debit-credit")
    system = builder.build()
    populate_banking(system, "alpha", branches=branches,
                     tellers_per_branch=tellers // branches, accounts=accounts)
    return system, terminal_ids


def banking_input_maker(accounts, branches=2, tellers=8, amounts=(5, 10, 25, -5)):
    def make_input(rng, terminal_id, iteration):
        return {
            "account_id": rng.randrange(accounts),
            "teller_id": rng.randrange(tellers),
            "branch_id": rng.randrange(branches),
            "amount": rng.choice(list(amounts)),
            "allow_overdraft": True,
        }

    return make_input


def drive_banking(system, terminal_ids, duration=3000.0, seed=5, accounts=24,
                  node="alpha", tcp="$tcp1", think_time=15.0, branches=2,
                  tellers=8):
    return run_closed_loop(
        system, node, tcp, terminal_ids,
        banking_input_maker(accounts, branches=branches, tellers=tellers),
        duration=duration, think_time=think_time,
        rng=random.Random(seed),
    )


def settle(system, ms=3000.0, node="alpha"):
    proc = system.spawn(node, "$settle",
                        lambda p: (yield system.env.timeout(ms)), cpu=0)
    system.cluster.run(proc.sim_process)


BENCH_REPORT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_report.json")


def bench_trace_enabled():
    """Whether ``BENCH_TRACE`` asks for per-experiment timeline exports."""
    return bool(os.environ.get("BENCH_TRACE"))


def timeline_path(name):
    """Where ``name``'s Chrome trace_event timeline lands (next to the
    merged XRAY report)."""
    return os.path.join(os.path.dirname(__file__),
                        f"BENCH_{name}_timeline.json")


def write_bench_report(system, name, extra=None, path=None):
    """Merge one experiment's XRAY report into ``BENCH_report.json``.

    Each ``bench_*.py`` contributes a section keyed by its experiment
    name; the file accumulates across a harness run so a whole sweep
    lands in one artifact.
    """
    path = path or BENCH_REPORT_PATH
    try:
        with open(path) as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    section = system.xray_report()
    if extra:
        section["experiment"] = dict(extra)
    merged[name] = section
    with open(path, "w") as handle:
        json.dump(merged, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return section


def maybe_dump_report(system, name, extra=None):
    """Dump measurement artifacts asked for via the environment.

    Benchmarks stay artifact-free by default (the harness compares plain
    counters); ``BENCH_XRAY=1 pytest benchmarks/...`` adds the merged
    XRAY report, and ``BENCH_TRACE=1`` writes each experiment's Chrome
    ``trace_event`` timeline next to ``BENCH_report.json`` (load it in
    chrome://tracing or Perfetto).
    """
    if bench_trace_enabled() and getattr(system, "trace_collector", None):
        system.write_timeline(timeline_path(name))
    if not os.environ.get("BENCH_XRAY"):
        return None
    return write_bench_report(system, name, extra=extra)
