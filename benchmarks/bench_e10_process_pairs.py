"""E10 — the process-pair mechanism (§The Tandem Operating System).

Paper: "The primary process sends the backup process 'checkpoints' ...
which ensure that the backup process has all the information that it
would need in the event of failure to assume control of the device and
carry through to completion any operation initiated by the primary."

Reproduced quantitatively:

1. takeover latency as seen by a client (requests in flight during the
   takeover window complete transparently, a few ms late);
2. the checkpoint overhead: messages per served request, and the cost
   ratio against the request's useful work;
3. an unprotected window never loses checkpointed state (backup loss →
   re-protection on another CPU).
"""

from repro.guardian import Cluster, ConcurrentPair
from repro.workloads import format_table


class KvPair(ConcurrentPair):
    """A minimal replicated key-value service for measurement."""

    def state_defaults(self):
        return {"kv": {}, "completed": {}}

    def serve_request(self, proc, message):
        op = message.payload
        recorded = self.state["completed"].get(message.msg_id)
        if recorded is not None:
            proc.reply(message, recorded)
            return
        if op.get("op") == "put":
            self.state["kv"][op["key"]] = op["value"]
            reply = {"ok": True, "version": len(self.state["kv"])}
            yield from self.checkpoint_update("kv", updates={op["key"]: op["value"]})
            yield from self.checkpoint_update(
                "completed", updates={message.msg_id: reply}, _charge=False
            )
        else:
            reply = {"ok": True, "value": self.state["kv"].get(op["key"])}
        proc.reply(message, reply)


def build():
    cluster = Cluster(seed=113)
    cluster.add_node("alpha", cpu_count=4)
    cluster.connect_all()
    pair = KvPair(cluster.os("alpha"), "$kv", 0, 1, cluster.tracer)
    return cluster, pair


def test_e10_takeover_latency(benchmark):
    def run():
        cluster, pair = build()
        observations = {}

        def client(proc):
            latencies = []
            for i in range(50):
                start = cluster.env.now
                yield from cluster.fs("alpha").send(
                    proc, "$kv", {"op": "put", "key": i, "value": i}
                )
                latencies.append(cluster.env.now - start)
            observations["normal"] = sum(latencies) / len(latencies)
            # One request with the primary failing mid-flight.
            start = cluster.env.now
            request = cluster.fs("alpha").send(
                proc, "$kv", {"op": "put", "key": 999, "value": 1}
            )
            # Interleave the failure at the moment the request departs.
            cluster.node("alpha").fail_cpu(0)
            yield from request
            observations["during_takeover"] = cluster.env.now - start
            value = yield from cluster.fs("alpha").send(
                proc, "$kv", {"op": "get", "key": 25}
            )
            observations["state_after"] = value["value"]

        proc = cluster.os("alpha").spawn("$client", 2, client, register=False)
        cluster.run(proc.sim_process)
        observations["takeovers"] = pair.takeovers
        return observations

    obs = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE10: normal request {obs['normal']:.2f} ms; request spanning a "
          f"takeover {obs['during_takeover']:.2f} ms; takeovers={obs['takeovers']}")
    assert obs["takeovers"] == 1
    assert obs["state_after"] == 25, "checkpointed state survives"
    assert obs["during_takeover"] < 50, "takeover adds only milliseconds"
    assert obs["during_takeover"] > obs["normal"]


def test_e10_checkpoint_overhead(benchmark):
    def run():
        cluster, pair = build()

        def client(proc):
            for i in range(100):
                yield from cluster.fs("alpha").send(
                    proc, "$kv", {"op": "put", "key": i % 10, "value": i}
                )

        proc = cluster.os("alpha").spawn("$client", 2, client, register=False)
        cluster.run(proc.sim_process)
        return {
            "requests": 100,
            "checkpoints": pair.checkpoints_sent,
            "ckpt_per_request": pair.checkpoints_sent / 100,
            "ckpt_ms_per_request": (
                pair.checkpoints_sent * cluster.latencies.checkpoint / 100
            ),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table([row], title="E10: checkpoint overhead (kv puts)"))
    assert row["ckpt_per_request"] == 1.0
    # The protection cost is well under a disc I/O per request.
    assert row["ckpt_ms_per_request"] < 1.0


def test_e10_reprotection_after_backup_loss(benchmark):
    def run():
        cluster, pair = build()
        timeline = []

        def client(proc):
            yield from cluster.fs("alpha").send(
                proc, "$kv", {"op": "put", "key": "a", "value": 1}
            )
            cluster.node("alpha").fail_cpu(1)  # backup dies
            timeline.append(("backup_lost", pair.protected, pair.backup_cpu))
            yield from cluster.fs("alpha").send(
                proc, "$kv", {"op": "put", "key": "b", "value": 2}
            )
            # Now the re-protected pair survives a primary failure too.
            cluster.node("alpha").fail_cpu(0)
            value = yield from cluster.fs("alpha").send(
                proc, "$kv", {"op": "get", "key": "b"}
            )
            timeline.append(("after_double_hop", value["value"], pair.primary_cpu))

        proc = cluster.os("alpha").spawn("$client", 2, client, register=False)
        cluster.run(proc.sim_process)
        return timeline, pair

    timeline, pair = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE10 re-protection timeline: {timeline}")
    assert timeline[0][1] is True, "a replacement backup was recruited"
    assert timeline[1][1] == 2, "state survived primary loss after re-protection"
    assert pair.takeovers == 1
