"""E8 — voluntary abort, RESTART-TRANSACTION, and the restart limit.

Paper (§Transaction Management): voluntary backout via
ABORT-TRANSACTION makes user-coded reversal unnecessary; automatic
restart re-runs from BEGIN-TRANSACTION unless "the number of restarts
has ... exceeded a configurable 'transaction restart limit'";
RESTART-TRANSACTION is the transient-problem (deadlock-timeout) path.

Reproduced: the attempt distribution under heavy contention, the restart
limit enforced exactly, and voluntary aborts leaving no trace.
"""

import os
import random
from collections import Counter

from _common import bench_trace_enabled, maybe_dump_report, settle
from repro.apps.banking import check_consistency, install_banking, populate_banking
from repro.encompass import SystemBuilder
from repro.workloads import format_table, run_closed_loop


def build_transfer_system(restart_limit, seed=97):
    builder = SystemBuilder(seed=seed, keep_trace=False,
                            measure=bool(os.environ.get("BENCH_XRAY")),
                            trace=bench_trace_enabled())
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_banking(builder, "alpha", "$data", server_instances=4)

    def transfer_server(ctx, request):
        a = yield from ctx.read("account", (request["a"],), lock=True,
                                lock_timeout=100)
        yield from ctx.pause(request.get("hold", 20))
        b = yield from ctx.read("account", (request["b"],), lock=True,
                                lock_timeout=100)
        a["balance"] -= 1
        b["balance"] += 1
        yield from ctx.update("account", a)
        yield from ctx.update("account", b)
        return {"ok": True}

    def transfer_program(ctx, data):
        yield from ctx.send_ok("$xfer", data)
        return True

    builder.add_server_class("alpha", "$xfer", transfer_server, instances=4)
    builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=restart_limit)
    builder.add_program("alpha", "$tcp1", "transfer", transfer_program)
    terminals = [f"T{i}" for i in range(6)]
    for terminal in terminals:
        builder.add_terminal("alpha", "$tcp1", terminal, "transfer")
    system = builder.build()
    populate_banking(system, "alpha", branches=1, tellers_per_branch=1,
                     accounts=5)
    return system, terminals


def test_e8_attempt_distribution_under_contention(benchmark):
    def run():
        system, terminals = build_transfer_system(restart_limit=10)
        rng = random.Random(101)

        def make_input(r, terminal_id, iteration):
            a, b = r.sample(range(5), 2)
            return {"a": a, "b": b}

        result = run_closed_loop(
            system, "alpha", "$tcp1", terminals, make_input,
            duration=4000.0, think_time=5.0, rng=rng,
        )
        settle(system)
        maybe_dump_report(system, "e8_restart_contention")
        report = check_consistency(system, "alpha")
        return result, report

    result, report = benchmark.pedantic(run, rounds=1, iterations=1)
    attempts = Counter(m.attempts for m in result.metrics if m.ok)
    rows = [
        {"attempts": k, "units": v, "share": v / max(result.committed, 1)}
        for k, v in sorted(attempts.items())
    ]
    print()
    print(format_table(rows, title="E8: attempts per committed unit (hot transfers)"))
    assert report["consistent"]
    assert result.committed > 0
    assert any(k > 1 for k in attempts), "contention must cause restarts"


def test_e8_restart_limit_enforced_exactly(benchmark):
    def run():
        outcomes = []
        for limit in (0, 2, 4):
            builder = SystemBuilder(seed=103, keep_trace=False)
            builder.add_node("alpha", cpus=4)
            builder.add_volume("alpha", "$data")

            def always_restart(ctx, data):
                ctx.restart_transaction("transient problem")
                yield  # pragma: no cover

            builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=limit)
            builder.add_program("alpha", "$tcp1", "loop", always_restart)
            builder.add_terminal("alpha", "$tcp1", "T0", "loop")
            system = builder.build()
            reply = system.drive("alpha", "$tcp1", "T0", {})
            outcomes.append({
                "restart_limit": limit,
                "attempts": reply["attempts"],
                "error": reply.get("error"),
            })
        return outcomes

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="E8: restart limit enforcement"))
    for row in rows:
        assert row["error"] == "restart_limit"
        assert row["attempts"] == row["restart_limit"] + 1


def test_e8_voluntary_abort_leaves_no_trace(benchmark):
    """ABORT-TRANSACTION: everything the transaction did — including
    multi-file updates already applied — is backed out, with no
    user-coded reversal."""

    def run():
        system, terminals = build_transfer_system(restart_limit=3, seed=107)
        before = check_consistency(system, "alpha")

        def fickle_server(ctx, request):
            # Update two accounts, then decide to abort.
            a = yield from ctx.read("account", (0,), lock=True)
            a["balance"] += 1000
            yield from ctx.update("account", a)
            b = yield from ctx.read("account", (1,), lock=True)
            b["balance"] -= 1000
            yield from ctx.update("account", b)
            return {"ok": False, "error": "changed_my_mind"}

        def fickle_program(ctx, data):
            reply = yield from ctx.send("$fickle-1", data)
            if not reply.get("ok"):
                ctx.abort_transaction(reply["error"])
            return True
            yield  # pragma: no cover

        from repro.encompass import ServerClass
        ServerClass(system.cluster.os("alpha"), "$fickle", fickle_server,
                    system.clients["alpha"], instances=1)
        tcp = system.tcps[("alpha", "$tcp1")]
        tcp.add_program("fickle", fickle_program)
        tcp.add_terminal("TF", "fickle")
        reply = system.drive("alpha", "$tcp1", "TF", {})
        settle(system)
        after = check_consistency(system, "alpha")
        return reply, before, after

    reply, before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE8 voluntary abort: error={reply.get('error')}, "
          f"reason={reply.get('reason')}; totals unchanged: "
          f"{before['account_total']} -> {after['account_total']}")
    assert reply["error"] == "aborted"
    assert reply["attempts"] == 1, "voluntary abort must NOT restart"
    assert after["account_total"] == before["account_total"]
    assert after["consistent"]
