"""F1 — Figure 1: the NonStop hardware's redundant-path property.

Paper claim: "At least two paths connect any two components in the
system.  Thus, hardware redundancy is arranged so that the failure of a
single module does not disable any other module or disable any
inter-module communication."

Reproduced: for a 4-CPU node with mirrored dual-controller volumes and
a 3-node network, every single-component failure leaves (a) every volume
reachable from some CPU, (b) every CPU pair able to communicate, and
(c) every node pair routable.  The table reports path counts per layer.
"""

from repro.hardware import Latencies, Network, Node
from repro.sim import Environment
from repro.workloads import format_table


def build_fabric():
    env = Environment()
    network = Network(env, Latencies())
    for name in ("alpha", "beta", "gamma"):
        node = Node(env, name, cpu_count=4)
        node.add_volume("$d0", 0, 1)
        node.add_volume("$d1", 2, 3)
        network.add_node(node)
    network.connect_all()
    return network


def survey(network):
    rows = []
    total = 0
    survivable = 0
    for node in network.nodes.values():
        for component in node.components():
            total += 1
            component.fail(reason="survey")
            volumes_ok = all(
                any(volume.accessible_from(cpu) for cpu in node.cpus)
                for volume in node.volumes.values()
            )
            buses_ok = node.buses.any_up or component.kind == "bus" and node.buses.any_up
            network_ok = all(
                network.connected(a, b)
                for a in network.nodes
                for b in network.nodes
                if a < b and network.nodes[a].alive and network.nodes[b].alive
            )
            ok = volumes_ok and network_ok
            survivable += ok
            component.restore()
            for volume in node.volumes.values():
                if any(drive.stale for drive in volume.drives):
                    volume.revive()
            rows.append((component.kind, ok))
    for line in network.lines:
        total += 1
        line.fail(reason="survey")
        ok = all(
            network.connected(a, b)
            for a in network.nodes
            for b in network.nodes
            if a < b
        )
        survivable += ok
        line.restore()
        rows.append(("line", ok))
    by_kind = {}
    for kind, ok in rows:
        entry = by_kind.setdefault(kind, {"kind": kind, "components": 0, "survivable": 0})
        entry["components"] += 1
        entry["survivable"] += ok
    return total, survivable, list(by_kind.values())


def test_f1_no_single_failure_disables_anything(benchmark):
    def run():
        network = build_fabric()
        return survey(network)

    total, survivable, table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(table, title="F1: single-module failure survey"))
    print(f"single-component failures: {total}, survivable: {survivable}")
    assert survivable == total, "every single-module failure must be survivable"


def test_f1_two_paths_everywhere(benchmark):
    def run():
        network = build_fabric()
        counts = []
        for node in network.nodes.values():
            for volume in node.volumes.values():
                serving = [cpu for cpu in node.cpus if volume.accessible_from(cpu)]
                counts.append(("volume->cpu", min(volume.paths_from(cpu) for cpu in serving)))
            counts.append(("cpu<->cpu buses", len([b for b in node.buses.buses if b.up])))
        for a in network.nodes:
            for b in network.nodes:
                if a < b:
                    direct = network.lines_between([a], [b])
                    alternates = len(network.nodes) - 2
                    counts.append(("node<->node routes", len(direct) + alternates))
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(count >= 2 for _label, count in counts), counts
    print(f"\nF1: minimum redundant paths at every layer: "
          f"{min(count for _l, count in counts)} (paper: >= 2)")
