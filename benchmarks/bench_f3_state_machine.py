"""F3 — Figure 3: the transaction state-transition diagram, observed.

Reproduced: a mixed workload (commits, voluntary aborts, deadlock
restarts, failure-induced aborts) is run and every broadcast state
sequence is checked against the diagram's edges; the transition-count
matrix is printed.  Also measures the broadcast fan-out rule of
§Transaction State Change: within a node every CPU is notified,
regardless of participation.
"""

from collections import Counter

from _common import build_banking_system, drive_banking, maybe_dump_report, settle
from repro.core import LEGAL_TRANSITIONS, TxState
from repro.workloads import format_table


def run_mixed_workload():
    system, terminals = build_banking_system(seed=23, cpus=4, accounts=6,
                                             terminals=6)
    # Hot accounts → deadlock restarts; a CPU failure → automatic aborts.
    def chaos(proc):
        yield system.env.timeout(900)
        system.cluster.node("alpha").fail_cpu(1)
        yield system.env.timeout(900)
        system.cluster.node("alpha").restore_cpu(1)

    system.spawn("alpha", "$chaos", chaos, cpu=0)
    result = drive_banking(system, terminals, duration=3000.0, accounts=6)
    settle(system)
    maybe_dump_report(system, "f3_state_machine")
    return system, result


def test_f3_observed_transitions_match_figure3(benchmark):
    system, result = benchmark.pedantic(
        run_mixed_workload, rounds=1, iterations=1
    )
    sequences = {}
    fanouts = []
    for record in system.tracer.select("state_broadcast"):
        sequences.setdefault(record.transid, []).append(TxState(record.state))
        fanouts.append(record.cpus)
    transition_counts = Counter()
    for states in sequences.values():
        previous = None
        for state in states:
            assert state in LEGAL_TRANSITIONS[previous], (
                f"illegal edge {previous} -> {state}"
            )
            transition_counts[(str(previous), str(state))] += 1
            previous = state
    rows = [
        {"from": src, "to": dst, "count": count}
        for (src, dst), count in sorted(transition_counts.items())
    ]
    print()
    print(format_table(rows, title="F3: observed state transitions (all legal)"))
    # The workload must actually exercise both terminal paths of Fig. 3.
    assert transition_counts[("ending", "ended")] > 0, "commit path unused"
    assert transition_counts[("aborting", "aborted")] > 0, "abort path unused"
    assert transition_counts[("active", "aborting")] > 0
    # Broadcast rule: every live CPU of the node sees each change.
    assert set(fanouts) <= {4, 3}, "fan-out must equal the live CPU count"
    print(f"transactions observed: {len(sequences)}; "
          f"broadcasts: {len(fanouts)} (fan-out 4, or 3 during the CPU outage)")


def test_f3_broadcasts_per_commit(benchmark):
    """Cost of the broadcast rule: 3 broadcasts per committed transaction
    (active/ending/ended), each to all CPUs of the node."""

    def run():
        system, terminals = build_banking_system(seed=29, cpus=4, accounts=32,
                                                 terminals=4)
        result = drive_banking(system, terminals, duration=2000.0, accounts=32)
        return system, result

    system, result = benchmark.pedantic(run, rounds=1, iterations=1)
    broadcasts = system.tracer.count("state_broadcast")
    tmf = system.tmf["alpha"]
    total_tx = tmf.commits + tmf.aborts
    per_tx = broadcasts / max(total_tx, 1)
    print(f"\nF3: {broadcasts} broadcasts / {total_tx} transactions "
          f"= {per_tx:.2f} per transaction (expected 3.0)")
    assert 2.5 <= per_tx <= 3.5
