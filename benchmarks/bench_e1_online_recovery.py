"""E1 — online recovery: failures abort only the transactions they touch.

Paper claims (Abstract + Introduction): "Recovery from failures is
transparent to user programs and does not require system halt or
restart.  Recovery from a failure which directly affects active
transactions ... is accomplished by means of the backout and restart of
affected transactions."  "The effect of a processor or other single
module failure, which would necessitate crash restart and data base
recovery on a conventional system, is limited to the on-line backout of
those transactions in process on the failed module.  Transactions
uninvolved in the failure continue processing."

Reproduced: a CPU failure lands mid-load; the table shows commits before,
during the 800 ms outage window, and after — the system never stops, and
consistency holds throughout.
"""

from _common import build_banking_system, drive_banking, maybe_dump_report, settle
from repro.apps.banking import check_consistency
from repro.workloads import format_table


def run_episode(fail_cpu):
    system, terminals = build_banking_system(
        seed=41, cpus=4, accounts=32, terminals=8, keep_trace=False,
    )
    timeline = {"fail_at": 2000.0, "restore_at": 2800.0}

    def chaos(proc):
        yield system.env.timeout(timeline["fail_at"])
        system.cluster.node("alpha").fail_cpu(fail_cpu)
        yield system.env.timeout(timeline["restore_at"] - timeline["fail_at"])
        system.cluster.node("alpha").restore_cpu(fail_cpu)

    system.spawn("alpha", "$chaos", chaos, cpu=(fail_cpu + 1) % 4)
    result = drive_banking(system, terminals, duration=6000.0, accounts=32)
    settle(system)
    maybe_dump_report(system, f"e1_online_recovery_cpu{fail_cpu}")
    report = check_consistency(system, "alpha")
    windows = {"before": 0, "during": 0, "after": 0}
    for metric in result.metrics:
        if not metric.ok:
            continue
        if metric.end < timeline["fail_at"]:
            windows["before"] += 1
        elif metric.end < timeline["restore_at"]:
            windows["during"] += 1
        else:
            windows["after"] += 1
    return {
        "failed_cpu": fail_cpu,
        "commits_before": windows["before"],
        "commits_during_outage": windows["during"],
        "commits_after": windows["after"],
        "aborted_units": result.failed,
        "consistent": report["consistent"],
    }


def test_e1_processing_continues_through_cpu_failure(benchmark):
    def run():
        # CPU 0 hosts the DISCPROCESS primary; CPU 2 hosts TCP/TMP/audit
        # primaries — both the storage and the coordination side.
        return [run_episode(0), run_episode(2)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="E1: commits across a CPU outage window"))
    for row in rows:
        assert row["consistent"]
        assert row["commits_before"] > 0
        assert row["commits_during_outage"] > 0, (
            "no system halt: commits must continue during the outage"
        )
        assert row["commits_after"] > 0


def test_e1_only_affected_transactions_abort(benchmark):
    """Transactions whose BEGIN ran in the failed CPU are backed out;
    everything else commits untouched."""

    def run():
        system, terminals = build_banking_system(
            seed=43, cpus=4, accounts=32, terminals=8,
        )

        def chaos(proc):
            yield system.env.timeout(1500)
            system.cluster.node("alpha").fail_cpu(1)

        system.spawn("alpha", "$chaos", chaos, cpu=0)
        result = drive_banking(system, terminals, duration=4000.0, accounts=32)
        settle(system)
        tmf = system.tmf["alpha"]
        aborted_by_failure = [
            record for record in tmf.records.values()
            if record.done == "aborted" and "cpu 1 failed" in record.abort_reason
        ]
        report = check_consistency(system, "alpha")
        return result, aborted_by_failure, report

    result, aborted_by_failure, report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nE1: {result.committed} committed; "
          f"{len(aborted_by_failure)} transactions aborted by the CPU failure; "
          f"consistent={report['consistent']}")
    assert report["consistent"]
    # Every failure-aborted transaction began in the failed CPU.
    assert all(r.origin_cpu == 1 for r in aborted_by_failure)
