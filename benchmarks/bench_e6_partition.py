"""E6 — partitions and the in-doubt window (§Distributed Commit Protocol).

Paper: "Until a non-home node has replied affirmatively to the phase-one
message, it can unilaterally abort the transaction ...  Once a non-home
node has replied affirmatively ... it must hold the transaction's locks
until notification of the transaction's final disposition ...  If
communication is lost at this point, the transaction's locks on the
inaccessible node will be held until communication is restored."  Plus
the three-step manual override.

Reproduced: the full episode as a table — locks before/during/after, and
the manual-override variant that frees them without waiting for heal.
"""

from _common import bench_trace_enabled, maybe_dump_report
from repro.core import TmpForceDisposition, TransactionAborted
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec
from repro.encompass import SystemBuilder
from repro.workloads import format_table


def build():
    builder = SystemBuilder(seed=83, trace=bench_trace_enabled())
    for name in ("home", "remote"):
        builder.add_node(name, cpus=4)
        builder.add_volume(name, "$data", cpus=(0, 1))
    builder.define_file(
        FileSchema(
            name="rledger",
            organization=KEY_SEQUENCED,
            primary_key=("entry",),
            audited=True,
            partitions=(PartitionSpec("remote", "$data"),),
        )
    )
    return builder.build()


def run_episode(use_override):
    system = build()
    tmf_home = system.tmf["home"]
    tmf_remote = system.tmf["remote"]
    dp_remote = system.disc_processes[("remote", "$data")]
    observations = {}

    def committer(proc, transid):
        try:
            yield from tmf_home.end(proc, transid)
            observations["home_outcome"] = "committed"
        except TransactionAborted:
            observations["home_outcome"] = "aborted"

    def body(proc):
        transid = yield from tmf_home.begin(proc)
        yield from system.clients["home"].insert(
            proc, "rledger", {"entry": 1, "value": 9}, transid=transid
        )
        node_os = system.cluster.os("home")
        commit_proc = node_os.spawn(
            "$c", 1, lambda p: committer(p, transid), register=False
        )
        while not tmf_remote.records[transid].phase1_acked:
            yield system.env.timeout(1)
        system.cluster.network.partition(["home"], ["remote"])
        partition_at = system.env.now
        yield commit_proc.sim_process
        yield system.env.timeout(1000)
        observations["locks_during"] = dp_remote.locks.held_count()
        observations["remote_state_during"] = str(
            tmf_remote.broadcaster.current_state(transid)
        )
        if use_override:
            # Manual override: (1) operator reads the disposition at the
            # home node, (2) "telephone call", (3) forces it remotely.
            disposition = tmf_home.dispositions.get(transid, "aborted")

            def operator(p):
                yield from system.cluster.fs("remote").send(
                    p, "$TMP", TmpForceDisposition(transid, disposition)
                )

            op = system.cluster.os("remote").spawn("$op", 0, operator, register=False)
            yield op.sim_process
            observations["freed_by"] = "manual override (still partitioned)"
        else:
            system.cluster.network.heal()
            yield system.env.timeout(2500)
            observations["freed_by"] = "safe delivery after heal"
        observations["locks_after"] = dp_remote.locks.held_count()
        observations["stranded_ms"] = system.env.now - partition_at
        observations["remote_done"] = tmf_remote.records[transid].done
        if use_override:
            system.cluster.network.heal()

    proc = system.spawn("home", "$body", body, cpu=0)
    system.cluster.run(proc.sim_process)
    maybe_dump_report(
        system, f"e6_partition_{'override' if use_override else 'heal'}"
    )
    return observations


def test_e6_stranded_locks_and_release_paths(benchmark):
    def run():
        return [run_episode(False), run_episode(True)]

    heal, override = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"path": "wait for heal", **{k: v for k, v in heal.items()}},
        {"path": "manual override", **{k: v for k, v in override.items()}},
    ]
    print()
    print(format_table(rows, title="E6: in-doubt locks after a phase-1 ack"))
    for row in (heal, override):
        assert row["home_outcome"] == "committed"
        assert row["locks_during"] > 0, "locks must be stranded while cut off"
        assert row["remote_state_during"] == "ending"
        assert row["locks_after"] == 0
        assert row["remote_done"] == "committed"


def test_e6_unilateral_abort_window(benchmark):
    """Before its phase-1 ack, a participant may unilaterally abort —
    and then forces network-wide consensus by voting no."""

    def run():
        system = build()
        tmf_home = system.tmf["home"]
        tmf_remote = system.tmf["remote"]
        outcome = {}

        def body(proc):
            transid = yield from tmf_home.begin(proc)
            yield from system.clients["home"].insert(
                proc, "rledger", {"entry": 2, "value": 1}, transid=transid
            )
            system.cluster.network.partition(["home"], ["remote"])
            yield system.env.timeout(1500)  # remote sweep aborts unilaterally
            outcome["remote_done_during"] = tmf_remote.records[transid].done
            outcome["remote_locks"] = (
                system.disc_processes[("remote", "$data")].locks.held_count()
            )
            system.cluster.network.heal()
            try:
                yield from tmf_home.end(proc, transid)
                outcome["home"] = "committed"
            except TransactionAborted:
                outcome["home"] = "aborted"

        proc = system.spawn("home", "$b", body, cpu=0)
        system.cluster.run(proc.sim_process)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE6 unilateral-abort window: {outcome}")
    assert outcome["remote_done_during"] == "aborted"
    assert outcome["remote_locks"] == 0, "unilateral abort frees locks early"
    assert outcome["home"] == "aborted", "consensus forced to abort"
