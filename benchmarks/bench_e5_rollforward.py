"""E5 — ROLLFORWARD: recovery from total node failure.

Paper (§ROLLFORWARD): "NonStop systems allow optimization of normal
processing at the expense of restart time ...  TMF reconstructs any
files open at the time of a total node failure by using the after-images
from the audit trail to reapply the updates of committed transactions."

Reproduced: recovery correctness (state equals exactly the committed
work) and the paper's stated trade — rollforward time grows with the
amount of audit written since the archive.
"""

from _common import build_banking_system, drive_banking, maybe_dump_report, settle
from repro.apps.banking import check_consistency
from repro.core import Rollforward, dump_volume
from repro.workloads import format_table


def run_episode(post_archive_ms):
    system, terminals = build_banking_system(
        seed=73, cpus=4, accounts=48, terminals=6, keep_trace=False,
    )
    dp = system.disc_processes[("alpha", "$data")]
    drive_banking(system, terminals, duration=1500.0, accounts=48, seed=1)
    settle(system, 1000)
    archive = dump_volume(dp)
    result = drive_banking(system, terminals, duration=post_archive_ms,
                           accounts=48, seed=2)
    settle(system, 1000)
    before = check_consistency(system, "alpha")

    node = system.cluster.node("alpha")
    node.total_failure()
    node.restore_all_cpus()
    system.audit_processes["alpha"].cold_restart(2, 3)
    tmf = system.tmf["alpha"]
    tmf.tmp.restart(2, 3)
    tmf.backout_process.restart(2, 3)
    tmf.reset_after_total_failure()
    dp.cold_restart(0, 1)
    rollforward = Rollforward(tmf)
    rollforward.rebuild_dispositions()

    start = system.env.now
    holder = {}

    def recover(proc):
        stats = yield from rollforward.recover_volume(proc, dp, archive)
        holder["stats"] = stats

    proc = system.spawn("alpha", "$rf", recover, cpu=0)
    system.cluster.run(proc.sim_process)
    recovery_ms = system.env.now - start
    maybe_dump_report(system, f"e5_rollforward_{int(post_archive_ms)}ms")
    after = check_consistency(system, "alpha")
    return {
        "post_archive_load_ms": post_archive_ms,
        "audit_records": holder["stats"].audit_records_scanned,
        "reapplied": holder["stats"].records_reapplied,
        "recovery_ms": recovery_ms,
        "exact": after == before,
    }


def test_e5_rollforward_time_grows_with_audit(benchmark):
    def run():
        return [run_episode(1000.0), run_episode(3000.0), run_episode(6000.0)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="E5: rollforward vs post-archive audit volume"))
    for row in rows:
        assert row["exact"], "recovered state must equal pre-failure state"
    assert rows[2]["audit_records"] > rows[0]["audit_records"]
    assert rows[2]["recovery_ms"] > rows[0]["recovery_ms"]


def test_e5_normal_processing_not_charged_for_restart(benchmark):
    """The design trade stated by the paper: normal processing does NOT
    force data blocks (audit only); restart pays instead.  Measured: the
    data volume's physical writes during load are far fewer than the
    logical record updates it absorbed."""

    def run():
        system, terminals = build_banking_system(
            seed=79, cpus=4, accounts=48, terminals=6, keep_trace=False,
        )
        result = drive_banking(system, terminals, duration=4000.0, accounts=48)
        settle(system)
        dp = system.disc_processes[("alpha", "$data")]
        logical_updates = dp.state["audit_seq"]
        physical_writes = dp.store.counters.writes
        return result.committed, logical_updates, physical_writes

    committed, logical, physical = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE5: {committed} commits, {logical} logical updates, "
          f"{physical} physical data-block writes during normal processing")
    assert physical < logical / 2, (
        "write-back caching must defer most data writes (audit carries "
        "durability)"
    )
