"""E3 — commit protocols: abbreviated (single-node) vs distributed 2PC.

Paper (§Transaction State Change, §Distributed Commit Protocol): within
a node TMF uses an abbreviated two-phase commit with state broadcast to
every CPU; across nodes, only participants get TMP-to-TMP messages —
phase one critical-response, phase two safe-delivery.  The cost
therefore grows with the number of *participating nodes*, not with the
size of the network.

Reproduced: END-TRANSACTION latency and message counts for a transaction
touching 1, 2 and 3 nodes of a 5-node network.
"""

from _common import bench_trace_enabled, maybe_dump_report
from repro.core import TransactionAborted
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec
from repro.encompass import SystemBuilder
from repro.workloads import format_table

NODES = ("n1", "n2", "n3", "n4", "n5")


def build():
    builder = SystemBuilder(seed=53, trace=bench_trace_enabled())
    for name in NODES:
        builder.add_node(name, cpus=4)
        builder.add_volume(name, "$data", cpus=(0, 1))
    for name in NODES:
        builder.define_file(
            FileSchema(
                name=f"ledger.{name}",
                organization=KEY_SEQUENCED,
                primary_key=("entry",),
                audited=True,
                partitions=(PartitionSpec(name, "$data"),),
            )
        )
    return builder.build()


def run_commits(system, touch_nodes, count=10):
    """Transactions from n1 writing one record on each node in
    ``touch_nodes``; returns (mean END latency, messages, broadcasts)."""
    tmf = system.tmf["n1"]
    client = system.clients["n1"]
    tracer = system.tracer
    out = {}

    def body(proc):
        end_latency = 0.0
        tracer.counters["msg_network"] = 0
        broadcasts_before = sum(t.broadcaster.broadcasts for t in system.tmf.values())
        net_before = tracer.counters["msg_network"]
        for i in range(count):
            transid = yield from tmf.begin(proc)
            for node in touch_nodes:
                yield from client.insert(
                    proc, f"ledger.{node}",
                    {"entry": i + 1000 * len(touch_nodes), "value": i},
                    transid=transid,
                )
            start = system.env.now
            yield from tmf.end(proc, transid)
            end_latency += system.env.now - start
        yield system.env.timeout(1500)  # drain safe-delivery phase 2
        out["latency"] = end_latency / count
        out["network_msgs"] = (tracer.counters["msg_network"] - net_before) / count
        out["broadcasts"] = (
            sum(t.broadcaster.broadcasts for t in system.tmf.values())
            - broadcasts_before
        ) / count

    proc = system.spawn("n1", f"$run{len(touch_nodes)}", body, cpu=0)
    system.cluster.run(proc.sim_process)
    return out


def test_e3_cost_grows_with_participants_not_network(benchmark):
    def run():
        system = build()
        rows = []
        for touch in (["n1"], ["n1", "n2"], ["n1", "n2", "n3"]):
            out = run_commits(system, touch)
            rows.append({
                "participating_nodes": len(touch),
                "end_latency_ms": out["latency"],
                "network_msgs_per_tx": out["network_msgs"],
                "state_broadcasts_per_tx": out["broadcasts"],
            })
        maybe_dump_report(system, "e3_commit_protocols")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        rows, title="E3: commit cost vs participating nodes (5-node network)"
    ))
    # Single-node: the abbreviated protocol uses no network messages.
    assert rows[0]["network_msgs_per_tx"] == 0
    # Distributed: cost rises with participants...
    assert rows[1]["end_latency_ms"] > rows[0]["end_latency_ms"]
    assert rows[2]["network_msgs_per_tx"] > rows[1]["network_msgs_per_tx"]
    # ...and broadcasts stay proportional to participants (3 per node per
    # transaction), NOT to the 5-node network size.
    assert rows[0]["state_broadcasts_per_tx"] == 3
    assert 5.5 <= rows[1]["state_broadcasts_per_tx"] <= 6.5
    assert 8.5 <= rows[2]["state_broadcasts_per_tx"] <= 9.5


def test_e3_phase1_failure_aborts_everywhere(benchmark):
    """A participant inaccessible at phase-one time fails the commit."""

    def run():
        system = build()
        tmf = system.tmf["n1"]
        client = system.clients["n1"]
        outcome = {}

        def body(proc):
            transid = yield from tmf.begin(proc)
            yield from client.insert(
                proc, "ledger.n3", {"entry": 1, "value": 1}, transid=transid
            )
            system.cluster.network.partition(["n1"], ["n2", "n3", "n4", "n5"])
            try:
                yield from tmf.end(proc, transid)
                outcome["result"] = "committed"
            except TransactionAborted as exc:
                outcome["result"] = f"aborted: {exc.reason[:40]}"
            system.cluster.network.heal()
            yield system.env.timeout(2000)
            record = yield from client.read(proc, "ledger.n3", (1,))
            outcome["record_after"] = record

        proc = system.spawn("n1", "$doomed", body, cpu=1)
        system.cluster.run(proc.sim_process)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE3: phase-1 partition outcome: {outcome}")
    assert outcome["result"].startswith("aborted")
    assert outcome["record_after"] is None
