"""F2 — Figure 2: a typical ENCOMPASS configuration under load.

The paper's Figure 2 shows TCPs, application servers and DISCPROCESS
pairs spread over a node's CPUs.  Reproduced: the full configuration
processes a debit/credit workload, and throughput grows as the node is
expanded from 2 to 8 CPUs (with volumes and servers spread over them) —
"expandability" from the introduction, with everything active
("normally, all components are active in processing the workload").
"""

from _common import build_banking_system, drive_banking, maybe_dump_report
from repro.apps.banking import check_consistency
from repro.workloads import format_table


def run_config(cpus, volumes):
    system, terminals = build_banking_system(
        seed=17, cpus=cpus, volumes=volumes, accounts=512, terminals=16,
        branches=8, tellers=16, keep_trace=False, cache_capacity=16,
    )
    result = drive_banking(system, terminals, duration=5000.0, accounts=512,
                           think_time=5.0, branches=8, tellers=16)
    maybe_dump_report(system, f"f2_config_{cpus}cpu_{volumes}vol")
    report = check_consistency(system, "alpha")
    assert report["consistent"]
    return {
        "cpus": cpus,
        "volumes": volumes,
        "committed": result.committed,
        "tx_per_s": result.throughput,
        "mean_latency_ms": result.mean_latency,
    }


def test_f2_throughput_scales_with_cpus(benchmark):
    def run():
        return [run_config(2, 1), run_config(4, 2), run_config(8, 4)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="F2: configuration scaling (debit/credit)"))
    assert rows[0]["committed"] > 0
    # Shape: adding CPUs+volumes must not reduce capacity; the largest
    # configuration should beat the smallest.
    assert rows[-1]["tx_per_s"] >= rows[0]["tx_per_s"]


def test_f2_inventory_matches_figure(benchmark):
    """The built configuration contains the same component classes as
    Figure 2: TCP pair, server class instances, DISCPROCESS pairs."""

    def run():
        system, _terminals = build_banking_system(seed=17, cpus=4, keep_trace=False)
        return system

    system = benchmark.pedantic(run, rounds=1, iterations=1)
    tcp = system.tcps[("alpha", "$tcp1")]
    bank = system.server_classes[("alpha", "$bank")]
    dp = system.disc_processes[("alpha", "$data")]
    inventory = {
        "tcp_pair": (tcp.primary_cpu, tcp.backup_cpu),
        "server_instances": len(bank.live_instances()),
        "discprocess_pair": (dp.primary_cpu, dp.backup_cpu),
        "audit_pair": (
            system.audit_processes["alpha"].primary_cpu,
            system.audit_processes["alpha"].backup_cpu,
        ),
    }
    print(f"\nF2 inventory: {inventory}")
    assert inventory["server_instances"] >= 1
    assert None not in inventory["tcp_pair"]
    assert None not in inventory["discprocess_pair"]
