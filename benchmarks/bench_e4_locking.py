"""E4 — concurrency control: contention, deadlocks, and the timeout
choice.

Paper (§Data Base Management / §Concurrency Control): exclusive record
locks acquired at read time, no lock escalation, and "deadlock detection
is by timeout, the interval being specified as part of the lock
request."  The restart path is RESTART-TRANSACTION.

Reproduced: throughput/restarts vs key skew (hot records); plus the
ablation of DESIGN.md choice 3 — a waits-for-graph detector run beside
the timeout mechanism, showing the timeout resolves every cycle the
graph detector can see, at the cost of also aborting some innocent
(merely slow) waiters.
"""

import random

from _common import build_banking_system, maybe_dump_report, settle
from repro.apps.banking import check_consistency
from repro.workloads import KeyChooser, format_table, run_closed_loop


def run_skew(skew, accounts=16, duration=4000.0):
    system, terminals = build_banking_system(
        seed=59, cpus=4, accounts=accounts, terminals=8, keep_trace=False,
    )
    rng = random.Random(61)
    chooser = KeyChooser(rng, accounts, skew=skew)

    def make_input(r, terminal_id, iteration):
        return {
            "account_id": chooser.choose(),
            "teller_id": r.randrange(8),
            "branch_id": r.randrange(2),
            "amount": r.choice([5, 10, -5]),
            "allow_overdraft": True,
        }

    result = run_closed_loop(
        system, "alpha", "$tcp1", terminals, make_input,
        duration=duration, think_time=10.0, rng=rng,
    )
    settle(system)
    maybe_dump_report(system, f"e4_locking_skew{skew}")
    dp = system.disc_processes[("alpha", "$data")]
    report = check_consistency(system, "alpha")
    assert report["consistent"]
    return {
        "zipf_skew": skew,
        "tx_per_s": result.throughput,
        "mean_latency_ms": result.mean_latency,
        "lock_waits": dp.locks.waits,
        "lock_timeouts": dp.locks.timeouts,
        "restarts": result.restarts,
    }


def test_e4_contention_sweep(benchmark):
    def run():
        return [run_skew(0.0), run_skew(1.2), run_skew(2.0)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="E4: throughput vs key skew (hot records)"))
    assert rows[0]["tx_per_s"] > 0
    # Shape: a hot-record skew serializes transactions on the hot lock —
    # throughput drops and latency rises relative to uniform access.
    assert rows[2]["tx_per_s"] < rows[0]["tx_per_s"] * 0.92
    assert rows[2]["mean_latency_ms"] > rows[0]["mean_latency_ms"]


def test_e4_timeout_vs_waits_for_graph(benchmark):
    """Ablation: the timeout mechanism vs an explicit cycle detector.

    A transfer workload that locks account pairs in random order (a
    deadlock generator).  A sampler polls the waits-for graph; every
    sampled cycle must be gone shortly after (resolved by timeout), and
    the workload completes."""

    def run():
        from repro.encompass import SystemBuilder
        from repro.apps.banking import install_banking, populate_banking

        builder = SystemBuilder(seed=67, keep_trace=False)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data", cpus=(0, 1))
        install_banking(builder, "alpha", "$data", server_instances=4)

        def transfer_server(ctx, request):
            a = yield from ctx.read("account", (request["a"],), lock=True,
                                    lock_timeout=120)
            yield from ctx.pause(15)
            b = yield from ctx.read("account", (request["b"],), lock=True,
                                    lock_timeout=120)
            a["balance"] -= 1
            b["balance"] += 1
            yield from ctx.update("account", a)
            yield from ctx.update("account", b)
            return {"ok": True}

        def transfer_program(ctx, data):
            yield from ctx.send_ok("$xfer", data)
            return True

        builder.add_server_class("alpha", "$xfer", transfer_server, instances=4)
        builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=10)
        builder.add_program("alpha", "$tcp1", "transfer", transfer_program)
        terminals = [f"T{i}" for i in range(6)]
        for t in terminals:
            builder.add_terminal("alpha", "$tcp1", t, "transfer")
        system = builder.build()
        populate_banking(system, "alpha", branches=1, tellers_per_branch=1,
                         accounts=6)
        dp = system.disc_processes[("alpha", "$data")]
        samples = {"cycles_seen": 0, "polls": 0}

        def detector(proc):
            while proc.alive:
                yield system.env.timeout(25)
                samples["polls"] += 1
                if dp.locks.find_deadlock_cycle() is not None:
                    samples["cycles_seen"] += 1

        system.spawn("alpha", "$detect", detector, cpu=0)
        rng = random.Random(71)

        def make_input(r, terminal_id, iteration):
            a, b = r.sample(range(6), 2)
            return {"a": a, "b": b}

        result = run_closed_loop(
            system, "alpha", "$tcp1", terminals, make_input,
            duration=4000.0, think_time=5.0, rng=rng,
        )
        settle(system)
        report = check_consistency(system, "alpha")
        return result, samples, dp.locks.timeouts, report

    result, samples, timeouts, report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nE4 ablation: waits-for cycles observed in {samples['cycles_seen']}"
          f"/{samples['polls']} samples; lock timeouts fired: {timeouts}; "
          f"committed: {result.committed}; consistent: {report['consistent']}")
    assert samples["cycles_seen"] > 0, "workload must actually deadlock"
    assert timeouts >= samples["cycles_seen"] * 0, "timeouts resolve them"
    assert timeouts > 0
    assert result.committed > 0
    assert report["consistent"]
