"""E7 — the ENCOMPASS data-base manager's storage features (§Data Base
Management).

Micro-benchmarks of the structured-file layer itself (real wall time —
these are pure data structures), plus simulated sweeps for the cache and
the compression accounting:

1. key-sequenced insert / point read / range scan;
2. alternate-key maintenance cost;
3. cache hit ratio vs cache size (simulated, through the DISCPROCESS);
4. prefix-compression ratio on realistic key sets.
"""

import random

from repro.discprocess import (
    FileSchema,
    KEY_SEQUENCED,
    KeySequencedFile,
    MemoryBlockStore,
    PartitionSpec,
    StructuredFile,
)
from repro.discprocess.compress import (
    compress_keys,
    encoded_key_size,
    plain_key_size,
)
from repro.workloads import format_table

N = 5000


def test_e7_btree_insert(benchmark):
    def run():
        tree = KeySequencedFile(MemoryBlockStore(), "t", create=True)
        for i in range(N):
            tree.insert((i,), {"v": i})
        return tree

    tree = benchmark(run)
    assert tree.record_count == N


def test_e7_btree_point_reads(benchmark):
    tree = KeySequencedFile(MemoryBlockStore(), "t", create=True)
    keys = list(range(N))
    random.Random(5).shuffle(keys)
    for i in keys:
        tree.insert((i,), {"v": i})
    rng = random.Random(7)
    probe = [rng.randrange(N) for _ in range(1000)]

    def run():
        total = 0
        for key in probe:
            total += tree.read((key,))["v"]
        return total

    total = benchmark(run)
    assert total == sum(probe)


def test_e7_btree_range_scan(benchmark):
    tree = KeySequencedFile(MemoryBlockStore(), "t", create=True)
    for i in range(N):
        tree.insert((i,), i)

    def run():
        return tree.scan(low=(1000,), high=(2999,))

    rows = benchmark(run)
    assert len(rows) == 2000


def test_e7_alternate_key_maintenance(benchmark):
    schema = FileSchema(
        name="idx",
        organization=KEY_SEQUENCED,
        primary_key=("pk",),
        alternate_keys=("alt1", "alt2"),
        partitions=(PartitionSpec("alpha", "$d"),),
    )

    def run():
        f = StructuredFile(MemoryBlockStore(), schema, create=True)
        for i in range(1500):
            f.insert({"pk": i, "alt1": i % 37, "alt2": f"g{i % 11}"})
        return f

    f = benchmark(run)
    assert len(f.read_via_index("alt1", 5)) == len(
        [i for i in range(1500) if i % 37 == 5]
    )


def test_e7_cache_hit_ratio_vs_size(benchmark):
    """Bigger cache, better hit ratio, fewer physical reads (simulated
    through a full DISCPROCESS)."""
    from _common import build_banking_system, drive_banking, maybe_dump_report

    def run_size(capacity):
        system, terminals = build_banking_system(
            seed=89, cpus=4, accounts=256, terminals=6, keep_trace=False,
            cache_capacity=capacity,
        )
        drive_banking(system, terminals, duration=2500.0, accounts=256)
        maybe_dump_report(system, f"e7_cache_{capacity}_blocks")
        dp = system.disc_processes[("alpha", "$data")]
        return {
            "cache_blocks": capacity,
            "hit_ratio": dp.cache.stats.hit_ratio,
            "physical_reads": dp.store.counters.reads,
        }

    def run():
        return [run_size(8), run_size(32), run_size(256)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="E7: cache size sweep (debit/credit)"))
    assert rows[0]["hit_ratio"] < rows[2]["hit_ratio"]
    assert rows[0]["physical_reads"] > rows[2]["physical_reads"]


def test_e7_index_vs_full_scan_io(benchmark):
    """'Multi-key access to records' pays off: an alternate-key query
    reads orders of magnitude fewer blocks than the full scan the same
    query needs without its index (measured through the query engine)."""
    from repro.apps.order_entry import install_order_entry, populate_order_entry
    from repro.encompass import SystemBuilder, compile_query

    def run():
        builder = SystemBuilder(seed=119, keep_trace=False)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data", cpus=(0, 1), cache_capacity=8)
        install_order_entry(builder, "alpha", "$data")
        system = builder.build()
        # 400 customers over 80 regions: a region predicate selects 5
        # rows — the selective query an alternate key exists for.
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]

        def loader(proc):
            for start in range(0, 400, 50):
                transid = yield from tmf.begin(proc)
                for cid in range(start, start + 50):
                    yield from client.insert(
                        proc, "customer",
                        {"customer_id": cid, "region": f"r{cid % 80}",
                         "name": f"customer {cid}"},
                        transid=transid,
                    )
                yield from tmf.end(proc, transid)

        proc = system.spawn("alpha", "$ld", loader, cpu=0)
        system.cluster.run(proc.sim_process)
        dp = system.disc_processes[("alpha", "$data")]

        def measure(source):
            query = compile_query(source, system.dictionary)
            holder = {}

            def flush(proc):
                yield from system.clients["alpha"].flush_volume(proc, "$data")

            proc = system.spawn("alpha", "$fl", flush, cpu=2)
            system.cluster.run(proc.sim_process)
            dp.cache.clear()  # cold cache; all blocks safely on disc
            before = dp.store.counters.reads

            def body(proc):
                result = yield from query.execute(proc, system.clients["alpha"])
                holder["rows"] = len(result.rows)

            proc = system.spawn("alpha", "$q", body, cpu=2)
            system.cluster.run(proc.sim_process)
            return {
                "plan": query.plan,
                "rows": holder["rows"],
                "physical_reads": dp.store.counters.reads - before,
            }

        indexed = measure('FROM customer\nWHERE region = "r7"')
        unindexed = measure('FROM customer\nWHERE name = "customer 7"')
        return indexed, unindexed

    indexed, unindexed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE7: index lookup {indexed} vs full scan {unindexed}")
    assert indexed["plan"] == "index-lookup"
    assert unindexed["plan"] == "full-scan"
    assert indexed["physical_reads"] < unindexed["physical_reads"]


def test_e7_prefix_compression_ratio(benchmark):
    """Index compression on realistic sorted key sets."""

    def run():
        rows = []
        key_sets = {
            "account ids (acct-%08d)": [(f"acct-{i:08d}",) for i in range(2000)],
            "name-like keys": sorted(
                (f"{chr(65 + i % 23)}{'aeiou'[i % 5]}son-{i % 100:03d}",)
                for i in range(2000)
            ),
            "compound (branch, teller)": [
                (f"branch-{b:04d}", f"teller-{t:04d}")
                for b in range(50)
                for t in range(40)
            ],
        }
        for label, keys in key_sets.items():
            encoded = compress_keys(keys)
            plain = plain_key_size(keys)
            packed = encoded_key_size(encoded)
            rows.append({
                "key_set": label,
                "plain_bytes": plain,
                "compressed_bytes": packed,
                "ratio": plain / packed,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="E7: prefix key compression"))
    assert all(row["ratio"] > 1.5 for row in rows)
