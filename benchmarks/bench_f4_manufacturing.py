"""F4 — Figure 4: the manufacturing network's autonomy/consistency trade.

Reproduced quantitatively: suspense-file depth grows with partition
duration while the cut-off node keeps its own updates flowing (node
autonomy); after the network heals, copies converge, and convergence
time grows with the backlog.  The ablation (DESIGN.md choice 4) compares
against the synchronous all-copy design, which loses autonomy: global
updates fail during the partition.
"""

from _common import maybe_dump_report
from repro.apps.manufacturing import MANUFACTURING_NODES, build_manufacturing_system
from repro.workloads import format_table


def run_partition_episode(partition_ms, updates_during=4):
    app = build_manufacturing_system(seed=31, items_per_node=2,
                                     monitor_interval=150.0)
    system = app.system
    network = system.cluster.network
    others = [n for n in MANUFACTURING_NODES if n != "neufahrn"]

    def do_update(node, item, qty, name):
        def op(proc):
            reply = yield from app.update_item(proc, node, item, {"qty_on_hand": qty})
            return reply
        proc = system.spawn(node, name, op, cpu=0)
        return system.cluster.run(proc.sim_process)

    network.partition(["neufahrn"], others)
    start = system.env.now
    succeeded = 0
    for i in range(updates_during):
        # Neufahrn keeps updating records it masters (items 6, 7).
        reply = do_update("neufahrn", 6 + (i % 2), 100 + i, f"$u{i}")
        succeeded += bool(reply["ok"])
    # Let the partition last the prescribed time.
    idle = system.spawn("cupertino", "$hold",
                        lambda p: (yield system.env.timeout(
                            max(partition_ms - (system.env.now - start), 1))),
                        cpu=0)
    system.cluster.run(idle.sim_process)
    depth_during = _suspense_depth(app, "neufahrn")
    network.heal()
    heal_time = system.env.now
    # Poll for convergence.
    for _ in range(200):
        idle = system.spawn("cupertino", "$poll",
                            lambda p: (yield system.env.timeout(100)), cpu=0)
        system.cluster.run(idle.sim_process)
        if _suspense_depth(app, "neufahrn") == 0:
            break
    report = app.convergence_report()
    maybe_dump_report(system, f"f4_manufacturing_{int(partition_ms)}ms")
    return {
        "partition_ms": partition_ms,
        "updates_during": succeeded,
        "suspense_depth": depth_during,
        "converged": report["converged"],
        "convergence_ms": system.env.now - heal_time,
    }


def _suspense_depth(app, node):
    out = {}

    def reader(proc):
        rows = yield from app.system.clients[node].scan(proc, f"suspense.{node}")
        out["depth"] = len(rows)

    proc = app.system.spawn(node, "$d", reader, cpu=0)
    app.system.cluster.run(proc.sim_process)
    return out["depth"]


def test_f4_autonomy_and_convergence(benchmark):
    def run():
        return [run_partition_episode(800), run_partition_episode(2500, updates_during=8)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="F4: partition episodes (record-master design)"))
    for row in rows:
        assert row["updates_during"] > 0, "node autonomy violated"
        assert row["converged"], "copies must converge after heal"
    assert rows[1]["suspense_depth"] >= rows[0]["suspense_depth"]


def test_f4_ablation_synchronous_design_loses_autonomy(benchmark):
    """The paper's rejected design: update all copies in one TMF
    transaction.  Consistent, but 'no node can run a global update
    transaction at a time when any other node is unavailable'."""

    def run():
        app = build_manufacturing_system(seed=37, items_per_node=1,
                                         monitor_interval=150.0)
        system = app.system
        tmf = system.tmf["neufahrn"]
        client = system.clients["neufahrn"]

        def synchronous_update(proc):
            from repro.core import TransactionAborted
            from repro.discprocess import FileError, FileUnavailableError
            transid = yield from tmf.begin(proc)
            try:
                for node in MANUFACTURING_NODES:
                    record = yield from client.read(
                        proc, f"item_master.{node}", (3,), transid=transid,
                        lock=True,
                    )
                    record["qty_on_hand"] = 1
                    yield from client.update(
                        proc, f"item_master.{node}", record, transid=transid
                    )
                yield from tmf.end(proc, transid)
                return "committed"
            except (TransactionAborted, FileError, FileUnavailableError) as exc:
                yield from tmf.abort(proc, transid, str(exc))
                return "failed"

        # Works while the network is whole...
        proc = system.spawn("neufahrn", "$sync1", synchronous_update, cpu=0)
        whole = system.cluster.run(proc.sim_process)
        # ...but not during a partition, even for a record neufahrn masters.
        system.cluster.network.partition(
            ["neufahrn"], [n for n in MANUFACTURING_NODES if n != "neufahrn"]
        )
        proc = system.spawn("neufahrn", "$sync2", synchronous_update, cpu=1)
        partitioned = system.cluster.run(proc.sim_process)
        system.cluster.network.heal()
        return whole, partitioned

    whole, partitioned = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nF4 ablation (synchronous all-copy update): "
          f"whole-network={whole}, during-partition={partitioned}")
    assert whole == "committed"
    assert partitioned == "failed"
