"""E9 — the single-module failure sweep.

Paper (Introduction): "hardware redundancy is arranged so that the
failure of a single module does not disable any other module or disable
any inter-module communication.  Normally, all components are active in
processing the workload.  However, when a component fails, the
remaining system components automatically take over the workload."

Reproduced end-to-end (not just structurally, as F1): for EVERY
component class of a working node — each CPU, each bus, each I/O
controller, each disc drive — fail one instance in the middle of a
debit/credit load; the workload must keep committing and the banking
invariants must hold at the end.
"""

from _common import build_banking_system, drive_banking, maybe_dump_report, settle
from repro.apps.banking import check_consistency
from repro.workloads import format_table


def run_single_failure(component_picker, label):
    system, terminals = build_banking_system(
        seed=109, cpus=4, accounts=32, terminals=6, keep_trace=False,
    )
    node = system.cluster.node("alpha")
    component = component_picker(node)

    def chaos():
        yield system.env.timeout(1200)
        component.fail(reason="E9 sweep")
        yield system.env.timeout(900)
        component.restore()
        if getattr(component, "stale", False):
            for volume in node.volumes.values():
                if component in volume.drives:
                    volume.revive()

    # The injector is external to the node (a raw simulation process),
    # so failing any CPU cannot kill the injector itself.
    system.env.process(chaos(), name="chaos")
    result = drive_banking(system, terminals, duration=4000.0, accounts=32)
    settle(system)
    maybe_dump_report(system, f"e9_failure_{label.split()[0]}")
    report = check_consistency(system, "alpha")
    committed_after_failure = sum(
        1 for m in result.metrics if m.ok and m.end >= 1200
    )
    return {
        "failed_component": label,
        "committed_total": result.committed,
        "committed_after_failure": committed_after_failure,
        "consistent": report["consistent"],
    }


SWEEP = [
    (lambda node: node.cpus[0], "cpu0 (DISCPROCESS primary)"),
    (lambda node: node.cpus[1], "cpu1 (DISCPROCESS backup)"),
    (lambda node: node.cpus[2], "cpu2 (TCP/TMP/audit primary)"),
    (lambda node: node.cpus[3], "cpu3 (TCP/TMP/audit backup)"),
    (lambda node: node.buses.x, "interprocessor bus X"),
    (lambda node: node.buses.y, "interprocessor bus Y"),
    (lambda node: node.volumes["$data"].controllers[0], "data controller 0"),
    (lambda node: node.volumes["$data"].controllers[1], "data controller 1"),
    (lambda node: node.volumes["$data"].drives[0], "data drive 0 (mirror)"),
    (lambda node: node.volumes["$data"].drives[1], "data drive 1 (mirror)"),
    (lambda node: node.volumes["$audvol"].drives[0], "audit drive 0 (mirror)"),
    (lambda node: node.volumes["$audvol"].controllers[0], "audit controller 0"),
]


def test_e9_every_single_module_failure_is_survivable(benchmark):
    def run():
        return [run_single_failure(picker, label) for picker, label in SWEEP]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="E9: single-module failure sweep under load"))
    for row in rows:
        assert row["consistent"], row
        assert row["committed_after_failure"] > 0, (
            f"{row['failed_component']}: processing must continue"
        )
