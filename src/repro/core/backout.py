"""The BACKOUTPROCESS: undoing a transaction from its before-images.

"Transaction backout is performed by the BACKOUTPROCESS (a
process-pair), using the transaction's before-images recorded in the
audit trails."  (paper, §Audit Trails)

The process collects the transaction's audit records from the
AUDITPROCESSes named in the request and applies the inverse of each, in
reverse order, through the owning DISCPROCESS (which generates *new*
audit images for the undo actions, so even a backout is itself
recoverable).  Undo application is idempotent, so a retry of a backout
interrupted by a CPU failure is harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Tuple

from ..discprocess.ops import BackoutOp
from ..guardian import (
    ConcurrentPair,
    FileSystem,
    FileSystemError,
    Message,
    NodeOs,
    OsProcess,
)
from .audit import GetAudit
from .transid import Transid

__all__ = ["BackoutProcess", "BackoutTx"]


@dataclass(frozen=True)
class BackoutTx:
    """Back out ``transid`` on this node.

    ``audit_processes`` — the AUDITPROCESS names holding its images;
    ``volumes`` — the participating DISCPROCESS names (sanity check).
    """

    transid: Transid
    audit_processes: Tuple[str, ...]
    volumes: Tuple[str, ...]


class BackoutProcess(ConcurrentPair):
    """Applies before-images to reverse an aborting transaction."""

    def __init__(
        self,
        node_os: NodeOs,
        name: str,
        primary_cpu: int,
        backup_cpu: int,
        filesystem: FileSystem,
        tracer: Any = None,
    ):
        self.filesystem = filesystem
        super().__init__(node_os, name, primary_cpu, backup_cpu, tracer)
        self.backouts = 0
        self.records_undone = 0

    def serve_request(self, proc: OsProcess, message: Message) -> Generator:
        payload = message.payload
        if not isinstance(payload, BackoutTx):
            proc.reply(message, {"ok": False, "error": "bad_request"})
            return
        try:
            undone = yield from self._backout(proc, payload)
        except FileSystemError as exc:
            proc.reply(message, {"ok": False, "error": "backout_failed", "detail": str(exc)})
            return
        self.backouts += 1
        self.records_undone += undone
        self._trace(
            "transaction_backed_out",
            transid=str(payload.transid),
            records=undone,
        )
        proc.reply(message, {"ok": True, "undone": undone})

    def _backout(self, proc: OsProcess, payload: BackoutTx) -> Generator:
        records: List[Any] = []
        for audit_name in payload.audit_processes:
            reply = yield from self.filesystem.send(
                proc, audit_name, GetAudit(payload.transid), timeout=2000.0
            )
            if reply.get("ok"):
                records.extend(reply["records"])
        # Undo only forward images; 'backout' images are the undo's own
        # audit (replaying them would redo the damage).
        forward = [r for r in records if r.op != "backout"]
        # Reverse order per volume stream; global reverse by (volume, seq)
        # is safe because streams are independent per volume.
        forward.sort(key=lambda r: (r.volume, r.seq), reverse=True)
        undone = 0
        for record in forward:
            reply = yield from self.filesystem.send(
                proc, record.volume, BackoutOp(record), timeout=5000.0
            )
            if not reply.get("ok"):
                raise FileSystemError(
                    record.volume, RuntimeError(reply.get("error", "backout op failed"))
                )
            undone += 1
        return undone
