"""ROLLFORWARD: recovery from total node failure.

"TMF's approach to recovery from total node failure is based on
occasional archived copies of audited data base files, plus an archive
of all audit trails written since the data base files were archived.
These copies can be created during normal transaction processing.  TMF
reconstructs any files open at the time of a total node failure by using
the after-images from the audit trail to reapply the updates of
committed transactions.  ROLLFORWARD negotiates with other nodes of the
network about transactions which were in 'ending' state at the time of
the node failure."  (paper, §ROLLFORWARD)

The simulation's archive is an atomic logical snapshot (``dump_volume``)
taken during normal processing — a fuzzy dump is exact here because the
snapshot happens between events.  Recovery rebuilds a volume's files
from archive + after-images of committed transactions; a transaction
with audit beyond the archive but no local completion record is resolved
by (a) home-node rule — no commit record at home means it never
committed — or (b) negotiation: querying the home node's TMP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..discprocess.records import KEY_SEQUENCED, RELATIVE, FileSchema
from ..guardian import FileSystemError, OsProcess
from ..sim import fast_deepcopy
from .audit import AuditRecord, CompletionRecord
from .tmf import TmfNode
from .tmp import TmpQuery
from .transid import Transid

__all__ = [
    "VolumeArchive",
    "dump_volume",
    "purge_audit_trails",
    "Rollforward",
    "RecoveryStats",
]


@dataclass
class FileDump:
    schema: FileSchema
    # key-sequenced: {key: record}; relative/entry-sequenced: {number: record}
    content: Dict[Any, Any] = field(default_factory=dict)
    next_number: int = 0  # next record number / ESN at dump time


@dataclass
class VolumeArchive:
    """An online archive of one volume's audited files."""

    volume: str
    node: str
    taken_at_seq: int
    files: Dict[str, FileDump] = field(default_factory=dict)


@dataclass
class RecoveryStats:
    volume: str = ""
    audit_records_scanned: int = 0
    records_reapplied: int = 0
    transactions_committed: int = 0
    transactions_discarded: int = 0
    negotiated: int = 0


def dump_volume(disc_process: Any) -> VolumeArchive:
    """Take an online archive of every file on the volume.

    Runs during normal transaction processing; the snapshot is atomic in
    simulated time.  The audit-sequence watermark marks which audit
    records the archive already reflects.
    """
    archive = VolumeArchive(
        volume=disc_process.name,
        node=disc_process.node_name,
        taken_at_seq=disc_process.state["audit_seq"],
    )
    for name, structured in disc_process.files.items():
        dump = FileDump(schema=structured.schema)
        organization = structured.schema.organization
        if organization == KEY_SEQUENCED:
            for key, record in structured.scan():
                dump.content[key] = fast_deepcopy(record)
        elif organization == RELATIVE:
            for number, record in structured.scan_slots():
                dump.content[number] = fast_deepcopy(record)
            dump.next_number = structured.base.next_record_number
        else:
            for esn, record in structured.scan_entries():
                dump.content[esn] = fast_deepcopy(record)
            dump.next_number = structured.base.record_count
        archive.files[name] = dump
    return archive


def purge_audit_trails(tmf: TmfNode, archives: List[VolumeArchive]) -> int:
    """Purge trail files made redundant by the given archives.

    Every audited volume of the node must be covered by an archive;
    volumes without one keep their audit indefinitely (their images
    might still be needed).  Returns the number of files purged across
    the node's audit trails.
    """
    watermarks = {archive.volume: archive.taken_at_seq for archive in archives}
    purged = 0
    for audit_process in tmf.audit_objects.values():
        purged += audit_process.trail.purge(watermarks)
    if purged:
        tmf._trace("audit_purged", files=purged)
    return purged


class Rollforward:
    """The ROLLFORWARD utility for one node."""

    def __init__(self, tmf: TmfNode):
        self.tmf = tmf
        self.env = tmf.env

    # ------------------------------------------------------------------
    def rebuild_dispositions(self) -> Dict[Transid, str]:
        """Re-read the Monitor Audit Trail from disc after a failure."""
        dispositions: Dict[Transid, str] = {}
        for record in self.tmf.monitor_trail.scan_all():
            if isinstance(record, CompletionRecord):
                dispositions[record.transid] = record.disposition
        self.tmf.dispositions.update(dispositions)
        return dispositions

    def _resolve(self, proc: OsProcess, transid: Transid, stats: RecoveryStats) -> Generator:
        """Disposition of a transaction with no local completion record."""
        known = self.tmf.dispositions.get(transid)
        if known is not None:
            return known
        if transid.home_node == self.tmf.node_name:
            # Home-node rule: the commit point is the local Monitor Audit
            # Trail write; its absence proves the transaction never
            # committed.
            return "aborted"
        # Negotiate with the home node ("ROLLFORWARD negotiates with
        # other nodes of the network about transactions which were in
        # 'ending' state at the time of the node failure").
        stats.negotiated += 1
        try:
            reply = yield from self.tmf.filesystem.send(
                proc,
                f"\\{transid.home_node}.{self.tmf.tmp_name}",
                TmpQuery(transid),
                timeout=self.tmf.config.phase1_timeout,
            )
            disposition = reply.get("disposition", "unknown")
        except FileSystemError:
            disposition = "unknown"
        if disposition not in ("committed", "aborted"):
            # Home unreachable/forgot: a transaction that reached commit
            # would have a durable record at home, so treat as aborted.
            disposition = "aborted"
        self.tmf.dispositions[transid] = disposition
        return disposition

    # ------------------------------------------------------------------
    def recover_volume(
        self,
        proc: OsProcess,
        disc_process: Any,
        archive: VolumeArchive,
        audit_records: Optional[List[AuditRecord]] = None,
    ) -> Generator:
        """Rebuild a crashed volume: archive + committed after-images.

        ``audit_records`` defaults to everything durable on the audit
        trail of the volume's AUDITPROCESS (images of uncommitted
        transactions may be missing from the trail — they were never
        forced — which is fine: those transactions are discarded).
        """
        stats = RecoveryStats(volume=archive.volume)
        if audit_records is None:
            audit_records = []
            audit_name = disc_process.audit_process
            audit_object = self.tmf.audit_objects.get(audit_name)
            if audit_object is not None:
                audit_records = [
                    record
                    for record in audit_object.trail.scan_all()
                    if isinstance(record, AuditRecord)
                ]
        relevant = sorted(
            (
                record
                for record in audit_records
                if record.volume == archive.volume
                and record.seq >= archive.taken_at_seq
            ),
            key=lambda record: record.seq,
        )
        stats.audit_records_scanned = len(relevant)

        # Resolve each transaction's disposition once.
        dispositions: Dict[Transid, str] = {}
        for record in relevant:
            if record.transid not in dispositions:
                disposition = yield from self._resolve(proc, record.transid, stats)
                dispositions[record.transid] = disposition
                if disposition == "committed":
                    stats.transactions_committed += 1
                else:
                    stats.transactions_discarded += 1

        # Reapply after-images of committed transactions over the archive.
        content = {
            name: dict(dump.content) for name, dump in archive.files.items()
        }
        next_numbers = {
            name: dump.next_number for name, dump in archive.files.items()
        }
        max_seq = archive.taken_at_seq
        for record in relevant:
            max_seq = max(max_seq, record.seq + 1)
            if dispositions[record.transid] != "committed":
                continue
            file_content = content.setdefault(record.file, {})
            if record.after is None:
                file_content.pop(record.key, None)
                if record.op == "write_slot" or record.op == "append_entry":
                    file_content[record.key] = None
            else:
                file_content[record.key] = fast_deepcopy(record.after)
            if isinstance(record.key, int):
                next_numbers[record.file] = max(
                    next_numbers.get(record.file, 0), record.key + 1
                )
            stats.records_reapplied += 1

        # Install the reconstructed contents into the DISCPROCESS.
        write_count = disc_process.load_contents(
            {name: dump.schema for name, dump in archive.files.items()},
            content,
            next_numbers,
            audit_seq=max_seq,
        )
        # Physical reconstruction time: sequential writes of the volume.
        yield self.env.timeout(
            write_count * self.tmf.node_os.node.latencies.disc_write / 2
        )
        self.tmf._trace(
            "rollforward_complete",
            volume=archive.volume,
            reapplied=stats.records_reapplied,
            discarded=stats.transactions_discarded,
        )
        return stats
