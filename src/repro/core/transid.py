"""Transaction identifiers.

"Execution of BEGIN-TRANSACTION causes a unique transaction identifier,
or 'transid', to be generated.  The transid consists of a sequence
number, qualified by the number of the processor in which
BEGIN-TRANSACTION was called, qualified by the number of the network
node which originated the transaction, designated the 'home' node for
the transaction."  (paper, §Transaction Management)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim import register_immutable

__all__ = ["Transid", "TransidGenerator"]


@register_immutable
@dataclass(frozen=True, order=True)
class Transid:
    """A network-wide unique transaction identity."""

    home_node: str
    cpu: int
    sequence: int

    def __str__(self) -> str:
        return f"\\{self.home_node}.{self.cpu}.{self.sequence}"


class TransidGenerator:
    """Per-node transid factory: one sequence counter per CPU."""

    def __init__(self, node_name: str):
        self.node_name = node_name
        self._sequences: Dict[int, int] = {}

    def next(self, cpu_number: int) -> Transid:
        sequence = self._sequences.get(cpu_number, 0) + 1
        self._sequences[cpu_number] = sequence
        return Transid(self.node_name, cpu_number, sequence)
