"""Audit trails and the AUDITPROCESS.

"TMF maintains distributed audit trails of logical data base record
updates on mirrored disc volumes.  An audit trail is a numbered sequence
of disc files ...  Each DISCPROCESS ... automatically provides
'before-images' and 'after-images' of data base updates ... to an
AUDITPROCESS (of which several, each a process-pair, are configurable),
which writes to an audit trail. ... For transactions that span data
bases on multiple nodes of a network, all audit images for records
residing on a particular node are contained in audit trails at that
node."  (paper, §Audit Trails)

The :class:`AuditTrail` is the durable representation: a numbered
sequence of entry-sequenced files on a mirrored audit volume.  The
:class:`AuditProcess` pair buffers incoming images in (checkpointed)
memory and forces them to the trail during phase one of commit — and on
request returns a transaction's images to the BACKOUTPROCESS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from ..discprocess.blocks import VolumeBlockStore
from ..discprocess.entryseq import EntrySequencedFile
# The audit image carriers are defined at the layer that produces them
# (the DISCPROCESS) and re-exported here for the consumers above.
from ..discprocess.ops import AppendAudit, AuditRecord
from ..guardian import ConcurrentPair, Message, NodeOs, OsProcess
from ..hardware import MirroredVolume
from .transid import Transid

__all__ = [
    "AuditRecord",
    "CompletionRecord",
    "AuditTrail",
    "AuditProcess",
    "AppendAudit",
    "ForceAudit",
    "GetAudit",
]


@dataclass(frozen=True)
class CompletionRecord:
    """Monitor Audit Trail entry: a transaction's final disposition."""

    transid: Transid
    disposition: str           # committed | aborted


# ---------------------------------------------------------------------------
# Request payloads understood by the AUDITPROCESS (AppendAudit lives in
# discprocess.ops with its producer; the TMF-side requests live here)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ForceAudit:
    transid: Optional[Transid] = None


@dataclass(frozen=True)
class GetAudit:
    transid: Transid


class AuditTrail:
    """A numbered sequence of audit files on a mirrored volume."""

    def __init__(
        self,
        volume: MirroredVolume,
        prefix: str = "AA",
        records_per_file: int = 512,
        entries_per_block: int = 32,
    ):
        self.volume = volume
        self.prefix = prefix
        self.records_per_file = records_per_file
        self.entries_per_block = entries_per_block
        self.store = VolumeBlockStore(volume)
        self.file_names: List[str] = []
        self._current: Optional[EntrySequencedFile] = None
        self.total_records = 0

    def _file_name(self, number: int) -> str:
        return f"{self.prefix}{number:06d}"

    def _roll_if_needed(self) -> EntrySequencedFile:
        if (
            self._current is None
            or self._current.record_count >= self.records_per_file
        ):
            name = self._file_name(len(self.file_names) + 1)
            self.file_names.append(name)
            self._current = EntrySequencedFile(
                self.store,
                name,
                entries_per_block=self.entries_per_block,
                create=True,
            )
        return self._current

    def append(self, record: Any) -> Tuple[str, int]:
        """Durably append one record; returns (file, esn) position."""
        current = self._roll_if_needed()
        esn = current.append(record)
        self.total_records += 1
        return current.name, esn

    def append_many(self, records: Iterable[Any]) -> int:
        """Durably append records; returns the number of physical writes.

        Writes are coalesced per block (group commit): a batch touching
        one data block and the header costs two physical writes, not two
        per record.
        """
        records = list(records)
        if not records:
            return 0
        coalescer = _CoalescingStore(self.store)
        real_store, self.store = self.store, coalescer
        try:
            for record in records:
                self.append(record)
                # ``append`` may roll to a new trail file, whose
                # EntrySequencedFile was built against the coalescer;
                # rebind it to the real store afterwards.
        finally:
            self.store = real_store
            if self._current is not None:
                self._current.store = real_store
        return coalescer.flush()

    def scan_all(self) -> List[Any]:
        """Every durable record, oldest first (used by ROLLFORWARD)."""
        out: List[Any] = []
        for name in self.file_names:
            trail_file = EntrySequencedFile(
                self.store, name, entries_per_block=self.entries_per_block
            )
            out.extend(record for _esn, record in trail_file.scan())
        return out

    def purge(self, watermarks: Dict[str, int]) -> int:
        """Delete trail files fully covered by archives.

        "An audit trail is a numbered sequence of disc files whose ...
        creation and purging is managed by TMF."  A file may be purged
        when every image in it belongs to a volume with an archive whose
        watermark is beyond the image's sequence — i.e. the archive
        already reflects it, so ROLLFORWARD will never need it.  The
        active (latest) file is never purged.  Returns files purged.
        """
        purged = 0
        for name in list(self.file_names[:-1]):
            trail_file = EntrySequencedFile(
                self.store, name, entries_per_block=self.entries_per_block
            )
            records = [record for _esn, record in trail_file.scan()]
            covered = all(
                isinstance(record, AuditRecord)
                and record.volume in watermarks
                and record.seq < watermarks[record.volume]
                for record in records
            )
            if not covered:
                continue
            for key in list(self.store.blocks_of(name)):
                self.store.delete(*key)
            self.file_names.remove(name)
            self.total_records -= len(records)
            purged += 1
        return purged

    @staticmethod
    def discover_file_names(volume: MirroredVolume, prefix: str = "AA") -> List[str]:
        """Trail files present on a volume (restart after total failure)."""
        names = {
            key[0]
            for key in volume.block_ids()
            if isinstance(key[0], str) and key[0].startswith(prefix)
        }
        return sorted(names)

    def attach_existing(self, file_names: List[str]) -> None:
        """Adopt trail files already present on the volume (restart)."""
        self.file_names = list(file_names)
        self._current = None
        if self.file_names:
            self._current = EntrySequencedFile(
                self.store,
                self.file_names[-1],
                entries_per_block=self.entries_per_block,
            )
        self.total_records = sum(
            EntrySequencedFile(
                self.store, name, entries_per_block=self.entries_per_block
            ).record_count
            for name in self.file_names
        )


class _CoalescingStore:
    """Write-coalescing wrapper used inside one append batch."""

    def __init__(self, backing: VolumeBlockStore):
        self.backing = backing
        self._pending: Dict[Tuple[str, int], Any] = {}

    def get(self, file_name: str, block_number: int) -> Any:
        key = (file_name, block_number)
        if key in self._pending:
            return self._pending[key]
        return self.backing.get(file_name, block_number)

    def put(self, file_name: str, block_number: int, block: Any) -> None:
        self._pending[(file_name, block_number)] = block

    def flush(self) -> int:
        for (file_name, block_number), block in self._pending.items():
            self.backing.put(file_name, block_number, block)
        return len(self._pending)


class AuditProcess(ConcurrentPair):
    """The AUDITPROCESS: buffers audit images, forces them at phase one.

    Checkpointed state:

    * ``buffer``   — images received but not yet on the trail, keyed by
      arrival index (order preserved);
    * ``by_tx``    — per-transid image lists (buffered *and* durable),
      used to answer the BACKOUTPROCESS;
    * ``high_seq`` — per-volume highest audit sequence seen (suppresses
      duplicates re-forwarded after a DISCPROCESS takeover);
    * ``durable_high`` — per-volume highest sequence forced to the trail.
    """

    def __init__(
        self,
        node_os: NodeOs,
        name: str,
        primary_cpu: int,
        backup_cpu: int,
        trail: AuditTrail,
        tracer: Any = None,
    ):
        self.trail = trail
        super().__init__(node_os, name, primary_cpu, backup_cpu, tracer)
        self._apply_state_defaults()
        self.forces = 0
        self.forced_block_writes = 0
        # The audit volume's disc also serves one request at a time.
        self._disc_free_at = 0.0
        #: accumulated trail-disc service time (ms); the XRAY sampler
        #: derives audit-volume utilization from deltas of this.
        self.busy_ms = 0.0

    def state_defaults(self) -> Dict[str, Any]:
        return {
            "buffer": {},
            "by_tx": {},
            "high_seq": {},
            "durable_high": {},
            "next_index": 0,
        }

    # ------------------------------------------------------------------
    def serve_request(self, proc: OsProcess, message: Message) -> Generator:
        payload = message.payload
        if isinstance(payload, AppendAudit):
            yield from self._append(proc, message, payload)
        elif isinstance(payload, ForceAudit):
            yield from self._force(proc, message)
        elif isinstance(payload, GetAudit):
            records = self._records_for(payload.transid)
            proc.reply(message, {"ok": True, "records": tuple(records)})
        else:
            proc.reply(
                message, {"ok": False, "error": f"unknown request {payload!r}"}
            )

    def _append(self, proc: OsProcess, message: Message, payload: AppendAudit) -> Generator:
        high = self.state["high_seq"].get(payload.volume, -1)
        fresh = [r for r in payload.records if r.seq > high]
        if fresh:
            buffer_updates = {}
            tx_snapshot = {}
            for record in fresh:
                index = self.state["next_index"]
                self.state["next_index"] = index + 1
                buffer_updates[index] = record
                tx_key = str(record.transid)
                self.state["by_tx"].setdefault(tx_key, []).append(record)
                # Snapshot now: a concurrent commit's cleanup may drop the
                # by_tx entry while the checkpoint below is in flight.
                tx_snapshot[tx_key] = list(self.state["by_tx"][tx_key])
            # One physical checkpoint message carries all the tables.
            yield from self.checkpoint_multi(
                [
                    ("buffer", buffer_updates, ()),
                    ("high_seq", {payload.volume: max(r.seq for r in fresh)}, ()),
                    ("by_tx", tx_snapshot, ()),
                ],
                scalars={"next_index": self.state["next_index"]},
            )
        proc.reply(message, {"ok": True, "accepted": len(fresh)})

    def _force(self, proc: OsProcess, message: Message) -> Generator:
        """Write every buffered image to the trail (group commit)."""
        t0 = self.env.now
        batch_writes = 0
        buffer: Dict[int, AuditRecord] = self.state["buffer"]
        if buffer:
            indices = sorted(buffer)
            records = [buffer[i] for i in indices]
            block_writes = self.trail.append_many(records)
            self.forced_block_writes += block_writes
            batch_writes = block_writes
            # Physical write time: sequential trail writes; the mirrored
            # pair proceeds in parallel (one disc_write per two blocks),
            # and concurrent forces queue behind each other.
            cost = block_writes * self.node_os.node.latencies.disc_write / 2
            self.busy_ms += cost
            start = max(self.env.now, self._disc_free_at)
            self._disc_free_at = start + cost
            yield self.env.timeout(self._disc_free_at - self.env.now)
            durable_updates = {}
            for record in records:
                volume = record.volume
                durable_updates[volume] = max(
                    durable_updates.get(volume, -1), record.seq
                )
            # One multi-part checkpoint (buffer drain + durable marks)
            # instead of two charged messages.
            yield from self.checkpoint_multi(
                [
                    ("buffer", None, indices),
                    ("durable_high", durable_updates, ()),
                ]
            )
        else:
            # An empty force still costs one rotation to write the
            # commit-fence block.
            self.busy_ms += self.node_os.node.latencies.disc_write / 2
            yield self.env.timeout(self.node_os.node.latencies.disc_write / 2)
        self.forces += 1
        metrics = self.env.metrics
        if metrics is not None and metrics.enabled:
            metrics.inc("audit.forces")
            if batch_writes:
                metrics.inc("audit.block_writes", batch_writes)
            metrics.observe("audit.force_ms", self.env.now - t0)
            transid = getattr(message.payload, "transid", None)
            if transid is not None and self.env.now > t0:
                metrics.spans.record(
                    str(transid), "audit-force", "audit", t0, self.env.now
                )
        proc.reply(message, {"ok": True, "trail_records": self.trail.total_records})

    def _records_for(self, transid: Transid) -> List[AuditRecord]:
        return list(self.state["by_tx"].get(str(transid), []))

    # ------------------------------------------------------------------
    def cold_restart(self, primary_cpu: int, backup_cpu: Optional[int] = None) -> None:
        """Restart after both halves died: only the trail volume survives."""
        self.state = {}
        self.backup_state = {}
        self.trail.attach_existing(
            AuditTrail.discover_file_names(self.trail.volume, self.trail.prefix)
        )
        by_tx: Dict[str, List[AuditRecord]] = {}
        high_seq: Dict[str, int] = {}
        for record in self.trail.scan_all():
            if isinstance(record, AuditRecord):
                by_tx.setdefault(str(record.transid), []).append(record)
                high_seq[record.volume] = max(
                    high_seq.get(record.volume, -1), record.seq
                )
        self.backup_state = {
            "buffer": {},
            "by_tx": by_tx,
            "high_seq": high_seq,
            "durable_high": dict(high_seq),
            "next_index": 0,
        }
        self.restart(primary_cpu, backup_cpu)

    def forget_transaction(self, transid: Transid) -> None:
        """Drop the per-transid index once the transaction left the system."""
        self.state["by_tx"].pop(str(transid), None)
        self.backup_state.get("by_tx", {}).pop(str(transid), None)
