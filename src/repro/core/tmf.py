"""TMF: the Transaction Monitoring Facility of one node.

This is the paper's primary contribution, assembled: transids, the
Figure 3 state machine with node-wide broadcast, distributed audit
trails, transaction backout, the Monitor Audit Trail, and both commit
protocols —

* the **abbreviated two-phase commit** for transactions that stay within
  a node: phase one forces all the transaction's audit records to disc,
  the commit record written to the Monitor Audit Trail is the commit
  point, and phase two releases locks;
* the **distributed two-phase commit**: phase one is a critical-response
  wave down the transid-transmission tree (each node forces its local
  audit and transitively polls its own children); any participant can
  unilaterally abort until it acks phase one; after acking it must hold
  the transaction's locks until the disposition arrives (possibly after
  a partition heals, or by manual override); phase two and abort
  propagation are safe-delivery messages retried until received.

A :class:`TmfNode` exists per node; there is no network master — the
home node of each transaction coordinates that transaction only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..discprocess.ops import ForceBoxcar, QuiesceTransaction, ReleaseLocks
from ..guardian import (
    FileSystem,
    FileSystemError,
    NodeOs,
    OsProcess,
)
from ..sim import Event, Tracer
from .audit import AuditProcess, AuditTrail, CompletionRecord, ForceAudit
from .backout import BackoutProcess, BackoutTx
from .states import StateBroadcaster, TxState
from .tmp import (
    TmpAbort,
    TmpAbortRemote,
    TmpCommit,
    TmpPhase1,
    TmpPhase2,
    TmpProcess,
    TmpRemoteBegin,
)
from .transid import Transid, TransidGenerator

__all__ = ["TmfNode", "TmfConfig", "TransactionAborted", "TransactionRecord"]


class TransactionAborted(Exception):
    """END-TRANSACTION was rejected: the transaction has been backed out."""

    def __init__(self, transid: Transid, reason: str = ""):
        super().__init__(f"{transid} aborted: {reason}")
        self.transid = transid
        self.reason = reason


@dataclass
class TmfConfig:
    """Tunable protocol parameters."""

    phase1_timeout: float = 2000.0      # critical-response deadline (ms)
    force_timeout: float = 5000.0       # local audit force deadline
    safe_retry_interval: float = 200.0  # safe-delivery retry period
    sweep_interval: float = 250.0       # unilateral-abort sweep period
    done_retention: int = 10000         # completed-transaction records kept


@dataclass
class TransactionRecord:
    """Everything one node knows about one transaction."""

    transid: Transid
    home: bool
    parent: Optional[str] = None
    origin_cpu: int = 0
    local_volumes: Set[str] = field(default_factory=set)
    local_audit_processes: Set[str] = field(default_factory=set)
    children: Set[str] = field(default_factory=set)
    phase1_acked: bool = False
    done: Optional[str] = None          # committed | aborted
    abort_reason: str = ""
    settling: bool = False
    settled_event: Optional[Event] = None


class TmfNode:
    """The TMF instance of one node."""

    def __init__(
        self,
        node_os: NodeOs,
        filesystem: FileSystem,
        monitor_volume: Any,
        tmp_cpus: Tuple[int, int] = (0, 1),
        config: Optional[TmfConfig] = None,
        tracer: Optional[Tracer] = None,
        tmp_name: str = "$TMP",
        backout_name: str = "$BACKOUT",
    ):
        self.node_os = node_os
        self.env = node_os.env
        self.filesystem = filesystem
        self.config = config or TmfConfig()
        self.tracer = tracer
        self.node_name = node_os.node.name
        self.generator = TransidGenerator(self.node_name)
        self.broadcaster = StateBroadcaster(node_os.node, tracer)
        self.records: Dict[Transid, TransactionRecord] = {}
        self._done_order: List[Transid] = []
        # The Monitor Audit Trail: history of commit/abort records.
        self.monitor_trail = AuditTrail(monitor_volume, prefix="MM")
        self.dispositions: Dict[Transid, str] = {}
        # Registries for node-local housekeeping.
        self.audit_objects: Dict[str, AuditProcess] = {}
        self.disc_objects: Dict[str, Any] = {}
        # Safe-delivery queue and deferred automatic aborts/resolutions.
        self._safe_queue: List[Tuple[str, Any]] = []
        self._auto_aborts: List[Tuple[Transid, str]] = []
        self._interrupted: List[Transid] = []
        self.tmp_name = tmp_name
        self.backout_name = backout_name
        self.tmp = TmpProcess(
            node_os, tmp_name, tmp_cpus[0], tmp_cpus[1], self, tracer
        )
        self.backout_process = BackoutProcess(
            node_os, backout_name, tmp_cpus[0], tmp_cpus[1], filesystem, tracer
        )
        # Wire automatic transid export into the File System.
        filesystem.transid_exporter = self.export_transid
        for cpu in node_os.node.cpus:
            cpu.watch_failure(self._on_cpu_failure)
        # Statistics for the experiments.
        self.commits = 0
        self.aborts = 0
        self.phase1_sent = 0
        self.phase2_sent = 0
        self.remote_begins_sent = 0

    # ------------------------------------------------------------------
    # Registration (node-local calls from DISCPROCESS / config)
    # ------------------------------------------------------------------
    def register_participant(
        self, transid: Transid, volume: str, audit_process: Optional[str]
    ) -> None:
        record = self.records.get(transid)
        if record is None:
            # A transid arrived at a DISCPROCESS before the remote begin
            # completed — should not happen (the File System exports the
            # transid first); register defensively as a remote orphan.
            record = self._new_record(transid, home=False)
        record.local_volumes.add(volume)
        if audit_process is not None:
            record.local_audit_processes.add(audit_process)

    def mutation_allowed(self, transid: Transid) -> bool:
        """DISCPROCESS hook: may this transid still perform updates?

        Consults the broadcast state table — only *active* transactions
        may generate new data base work; anything in ending/aborting (or
        already gone) is refused, which fences off servers that have not
        yet learned their transaction was aborted.
        """
        return self.broadcaster.current_state(transid) == TxState.ACTIVE

    def register_audit_process(self, name: str, audit_process: AuditProcess) -> None:
        self.audit_objects[name] = audit_process

    def register_disc_process(self, name: str, disc_process: Any) -> None:
        self.disc_objects[name] = disc_process

    def _new_record(self, transid: Transid, home: bool, parent: Optional[str] = None,
                    origin_cpu: int = 0) -> TransactionRecord:
        record = TransactionRecord(
            transid=transid, home=home, parent=parent, origin_cpu=origin_cpu
        )
        self.records[transid] = record
        return record

    def _broadcast_timed(
        self, transid: Transid, new_state: TxState, span_name: str
    ) -> Generator:
        """Broadcast a state change, consume its bus time, span it."""
        t0 = self.env.now
        yield self.env.timeout(self.broadcaster.broadcast(transid, new_state))
        metrics = self.env.metrics
        if metrics is not None and metrics.enabled and self.env.now > t0:
            metrics.spans.record(str(transid), span_name, "bus", t0, self.env.now)

    # ------------------------------------------------------------------
    # Application entry points (generator helpers)
    # ------------------------------------------------------------------
    def begin(self, proc: OsProcess) -> Generator:
        """BEGIN-TRANSACTION: new transid, broadcast 'active' node-wide."""
        transid = self.generator.next(proc.cpu.number)
        self._new_record(transid, home=True, origin_cpu=proc.cpu.number)
        hub = self.env.trace
        if hub is not None:
            # Root (or re-root, on restart) the caller's trace at this
            # transid: a TCP unit's serve span becomes the trace's root.
            hub.adopt(transid)
        metrics = self.env.metrics
        if metrics is not None and metrics.enabled:
            metrics.tx_begin(str(transid), self.env.now)
        yield from self._broadcast_timed(transid, TxState.ACTIVE, "begin")
        self._trace("begin_transaction", transid=str(transid))
        return transid

    def end(self, proc: OsProcess, transid: Transid) -> Generator:
        """END-TRANSACTION: commit; raises :class:`TransactionAborted`."""
        try:
            reply = yield from self.filesystem.send(
                proc, self.tmp_name, TmpCommit(transid), timeout=60_000.0
            )
        except FileSystemError as exc:
            raise TransactionAborted(transid, f"TMP unavailable: {exc}") from exc
        if reply.get("disposition") != "committed":
            record = self.records.get(transid)
            reason = record.abort_reason if record else "aborted by system"
            raise TransactionAborted(transid, reason)

    def abort(self, proc: OsProcess, transid: Transid, reason: str = "user abort") -> Generator:
        """ABORT-TRANSACTION / RESTART-TRANSACTION: back out everywhere."""
        try:
            yield from self.filesystem.send(
                proc, self.tmp_name, TmpAbort(transid, reason), timeout=60_000.0
            )
        except FileSystemError:
            # TMP pair down: the abort will be queued when it returns.
            self._auto_aborts.append((transid, reason))

    def status(self, transid: Transid) -> Optional[TransactionRecord]:
        return self.records.get(transid)

    def disposition_of(self, transid: Transid) -> Dict[str, Any]:
        record = self.records.get(transid)
        disposition = self.dispositions.get(transid) or (record.done if record else None)
        state = self.broadcaster.current_state(transid)
        return {
            "disposition": disposition or "unknown",
            "state": str(state) if state else "gone",
        }

    # ------------------------------------------------------------------
    # Transid export (File System hook): remote transaction begin
    # ------------------------------------------------------------------
    def export_transid(self, proc: OsProcess, transid: Transid, dest_node: str) -> Generator:
        record = self.records.get(transid)
        if record is None:
            raise TransactionAborted(transid, "unknown transid at export")
        if dest_node in record.children or dest_node == self.node_name:
            return
        # Critical response: the remote TMP must accept before any
        # transmission of the transid to that node.
        try:
            reply = yield from self.filesystem.send(
                proc,
                f"\\{dest_node}.{self.tmp_name}",
                TmpRemoteBegin(transid, parent=self.node_name),
                timeout=self.config.phase1_timeout,
            )
        except FileSystemError as exc:
            raise TransactionAborted(
                transid, f"remote begin to {dest_node} failed: {exc}"
            ) from exc
        if not reply.get("ok"):
            raise TransactionAborted(transid, f"remote begin rejected by {dest_node}")
        record.children.add(dest_node)
        self.remote_begins_sent += 1
        self._trace("remote_begin", transid=str(transid), dest=dest_node)

    # ------------------------------------------------------------------
    # Protocol handlers (run inside TMP sub-handlers)
    # ------------------------------------------------------------------
    def do_commit(self, proc: OsProcess, transid: Transid) -> Generator:
        record = self.records.get(transid)
        if record is None:
            return "aborted"
        proceed = yield from self._settle_guard(record)
        if not proceed:
            return record.done
        if self.dispositions.get(transid) == "committed":
            # A previous coordinator wrote the commit record and then
            # died: the transaction IS committed; finish phase two.
            yield from self._commit_tail(proc, record)
            return "committed"
        state = self.broadcaster.current_state(transid)
        if state != TxState.ENDING:
            yield from self._broadcast_timed(
                transid, TxState.ENDING, "commit-broadcast"
            )
        ok = yield from self._phase1_here_and_below(proc, record)
        if not ok:
            yield from self._abort_core(proc, record, record.abort_reason or "phase one failed")
            return "aborted"
        # --- Commit point: the commit record reaches the Monitor Audit
        # Trail.  "A transaction commits at the time its commit record is
        # written to the Monitor Audit Trail."
        yield from self._write_completion(transid, "committed")
        self.commits += 1
        yield from self._commit_tail(proc, record)
        self._trace("commit", transid=str(transid), children=len(record.children))
        return "committed"

    def _commit_tail(self, proc: OsProcess, record: TransactionRecord) -> Generator:
        """Phase two on this node: ENDED broadcast, unlock, propagate."""
        transid = record.transid
        if self.broadcaster.current_state(transid) == TxState.ENDING:
            yield from self._broadcast_timed(
                transid, TxState.ENDED, "commit-broadcast"
            )
        yield from self._release_local(proc, record, committed=True)
        for child in sorted(record.children):
            self._queue_safe(child, TmpPhase2(transid))
            self.phase2_sent += 1
        self._finish_settle(record, "committed")
        self._cleanup(record)

    def do_abort(self, proc: OsProcess, transid: Transid, reason: str) -> Generator:
        record = self.records.get(transid)
        if record is None:
            return "aborted"
        proceed = yield from self._settle_guard(record)
        if not proceed:
            return record.done
        yield from self._abort_core(proc, record, reason)
        return "aborted"

    def do_remote_begin(self, transid: Transid, parent: str) -> Generator:
        record = self.records.get(transid)
        if record is None:
            record = self._new_record(transid, home=False, parent=parent)
            yield from self._broadcast_timed(transid, TxState.ACTIVE, "begin")
            self._trace("remote_begin_accepted", transid=str(transid), parent=parent)
        return True

    def do_phase1(self, proc: OsProcess, transid: Transid) -> Generator:
        record = self.records.get(transid)
        if record is None:
            return "no"
        while record.settling:
            yield from self._wait_settled(record)
        if record.done == "aborted":
            return "no"   # unilateral abort already happened: force consensus
        if record.done == "committed" or record.phase1_acked:
            return "yes"
        yield from self._broadcast_timed(transid, TxState.ENDING, "commit-broadcast")
        ok = yield from self._phase1_here_and_below(proc, record)
        if not ok:
            proceed = yield from self._settle_guard(record)
            if proceed:
                yield from self._abort_core(
                    proc, record, record.abort_reason or "phase one failed below"
                )
            return "no"
        record.phase1_acked = True
        self._trace("phase1_acked", transid=str(transid))
        return "yes"

    def do_phase2(self, proc: OsProcess, transid: Transid) -> Generator:
        record = self.records.get(transid)
        if record is None or record.done == "committed":
            return
        proceed = yield from self._settle_guard(record)
        if not proceed:
            return
        if self.dispositions.get(transid) != "committed":
            yield from self._write_completion(transid, "committed")
        yield from self._commit_tail(proc, record)
        self._trace("phase2_applied", transid=str(transid))

    def do_abort_remote(self, proc: OsProcess, transid: Transid, reason: str) -> Generator:
        record = self.records.get(transid)
        if record is None or record.done == "aborted":
            return
        proceed = yield from self._settle_guard(record)
        if not proceed:
            return
        yield from self._abort_core(proc, record, reason)

    def do_force_disposition(self, proc: OsProcess, transid: Transid, disposition: str) -> Generator:
        """Manual override for a transaction stranded by a partition.

        The operator has determined the disposition at the home node
        (steps 1–2 of the paper's manual procedure); this applies it.
        """
        record = self.records.get(transid)
        if record is None or record.done is not None:
            return
        self._trace("manual_override", transid=str(transid), disposition=disposition)
        if disposition == "committed":
            yield from self.do_phase2(proc, transid)
        else:
            yield from self.do_abort_remote(proc, transid, "manual override")

    # ------------------------------------------------------------------
    # Protocol internals
    # ------------------------------------------------------------------
    def _phase1_here_and_below(self, proc: OsProcess, record: TransactionRecord) -> Generator:
        """Force local audit, then critical-response phase 1 to children."""
        transid = record.transid
        # Drain each participating volume's audit boxcar first: images
        # still aboard (or on the wire) must reach the AUDITPROCESS
        # before the trail force below can cover them.  Node-local fast
        # path: a registered DISCPROCESS with a provably-empty boxcar is
        # skipped without a round-trip.
        for volume in sorted(record.local_volumes):
            disc = self.disc_objects.get(volume)
            if disc is not None and not disc.audit_drain_needed:
                continue
            try:
                reply = yield from self.filesystem.send(
                    proc, volume, ForceBoxcar(transid),
                    timeout=self.config.force_timeout,
                )
            except FileSystemError as exc:
                record.abort_reason = f"boxcar drain failed: {exc}"
                return False
            if not reply.get("ok"):
                record.abort_reason = "boxcar drain rejected"
                return False
        for audit_name in sorted(record.local_audit_processes):
            try:
                reply = yield from self.filesystem.send(
                    proc, audit_name, ForceAudit(transid),
                    timeout=self.config.force_timeout,
                )
            except FileSystemError as exc:
                record.abort_reason = f"audit force failed: {exc}"
                return False
            if not reply.get("ok"):
                record.abort_reason = "audit force rejected"
                return False
        for child in sorted(record.children):
            self.phase1_sent += 1
            try:
                reply = yield from self.filesystem.send(
                    proc,
                    f"\\{child}.{self.tmp_name}",
                    TmpPhase1(transid),
                    timeout=self.config.phase1_timeout,
                )
            except FileSystemError as exc:
                record.abort_reason = f"phase 1: {child} inaccessible ({exc})"
                return False
            if reply.get("vote") != "yes":
                record.abort_reason = f"phase 1: {child} voted no"
                return False
        return True

    def _abort_core(self, proc: OsProcess, record: TransactionRecord, reason: str) -> Generator:
        """ABORTING → backout → completion record → ABORTED → unlock."""
        transid = record.transid
        record.abort_reason = reason
        state = self.broadcaster.current_state(transid)
        if state in (TxState.ACTIVE, TxState.ENDING):
            yield from self._broadcast_timed(
                transid, TxState.ABORTING, "abort-broadcast"
            )
        # Quiesce: the ABORTING broadcast stops *new* operations of this
        # transid; wait out any already in flight so the backout sees
        # their audit images.
        for volume in sorted(record.local_volumes):
            try:
                yield from self.filesystem.send(
                    proc,
                    volume,
                    QuiesceTransaction(transid),
                    timeout=30_000.0,
                )
            except FileSystemError:
                continue
        if record.local_volumes:
            try:
                yield from self.filesystem.send(
                    proc,
                    self.backout_name,
                    BackoutTx(
                        transid,
                        tuple(sorted(record.local_audit_processes)),
                        tuple(sorted(record.local_volumes)),
                    ),
                    timeout=60_000.0,
                )
            except FileSystemError as exc:
                # Backout impossible (backout pair / volume down): the
                # affected volume is crashed and will need ROLLFORWARD;
                # the abort still completes for the rest of the system.
                self._trace("backout_failed", transid=str(transid), error=str(exc))
        if self.dispositions.get(transid) != "aborted":
            yield from self._write_completion(transid, "aborted")
        self.aborts += 1
        yield from self._broadcast_timed(transid, TxState.ABORTED, "abort-broadcast")
        yield from self._release_local(proc, record, committed=False)
        for child in sorted(record.children):
            self._queue_safe(child, TmpAbortRemote(transid, reason))
        self._finish_settle(record, "aborted")
        self._cleanup(record)
        self._trace("abort", transid=str(transid), reason=reason)

    def _write_completion(self, transid: Transid, disposition: str) -> Generator:
        """Force a completion record to the Monitor Audit Trail."""
        self.monitor_trail.append(CompletionRecord(transid, disposition))
        self.dispositions[transid] = disposition
        yield self.env.timeout(self.node_os.node.latencies.disc_write / 2)

    def _release_local(self, proc: OsProcess, record: TransactionRecord, committed: bool) -> Generator:
        for volume in sorted(record.local_volumes):
            try:
                yield from self.filesystem.send(
                    proc,
                    volume,
                    ReleaseLocks(record.transid, committed=committed),
                    timeout=5000.0,
                )
            except FileSystemError:
                # Volume pair down — its locks died with it; recovery
                # (ROLLFORWARD) rebuilds a lock-free volume.
                continue

    def _cleanup(self, record: TransactionRecord) -> None:
        for audit_name in record.local_audit_processes:
            audit_object = self.audit_objects.get(audit_name)
            if audit_object is not None:
                audit_object.forget_transaction(record.transid)
        self._done_order.append(record.transid)
        while len(self._done_order) > self.config.done_retention:
            old = self._done_order.pop(0)
            self.records.pop(old, None)

    # ------------------------------------------------------------------
    # Settling (one commit/abort decision per transaction)
    # ------------------------------------------------------------------
    def _settle_guard(self, record: TransactionRecord) -> Generator:
        while record.settling:
            yield from self._wait_settled(record)
        if record.done is not None:
            return False
        record.settling = True
        return True

    def _wait_settled(self, record: TransactionRecord) -> Generator:
        if record.settled_event is None or record.settled_event.processed:
            record.settled_event = Event(self.env)
        yield record.settled_event

    def _finish_settle(self, record: TransactionRecord, done: str) -> None:
        metrics = self.env.metrics
        if metrics is not None and metrics.enabled:
            # First settler (home node, normally) closes the span tree;
            # later settlers of a distributed transaction no-op.
            metrics.tx_end(str(record.transid), self.env.now, done)
        record.done = done
        record.settling = False
        event, record.settled_event = record.settled_event, None
        if event is not None and not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------
    # Total node failure
    # ------------------------------------------------------------------
    def reset_after_total_failure(self) -> None:
        """Discard all in-memory state (every CPU's copy is gone).

        Durable knowledge — the Monitor Audit Trail — is re-attached
        from its disc volume; dispositions are rebuilt from it by
        :meth:`repro.core.rollforward.Rollforward.rebuild_dispositions`.
        """
        self.records.clear()
        self.dispositions.clear()
        self._done_order.clear()
        self._safe_queue.clear()
        self._auto_aborts.clear()
        self.monitor_trail.attach_existing(
            AuditTrail.discover_file_names(
                self.monitor_trail.volume, self.monitor_trail.prefix
            )
        )

    # ------------------------------------------------------------------
    # Automatic aborts and the background pump
    # ------------------------------------------------------------------
    def _on_cpu_failure(self, cpu) -> None:
        """Queue automatic aborts for transactions begun in a failed CPU.

        (Failures of *server* CPUs surface as SEND errors at the
        requester, which aborts and restarts; §Transaction Management.)
        """
        for record in self.records.values():
            if (
                record.home
                and record.done is None
                and not record.settling
                and record.origin_cpu == cpu.number
            ):
                self._auto_aborts.append(
                    (record.transid, f"cpu {cpu.number} failed")
                )

    def _queue_safe(self, dest_node: str, payload: Any) -> None:
        self._safe_queue.append((dest_node, payload))

    def on_tmp_takeover(self) -> None:
        """The TMP primary died: adopt its in-progress decisions.

        Every transaction mid-commit/mid-abort at the moment of failure
        is released from ``settling`` and queued for resolution: if its
        commit record is durable it IS committed and phase two must be
        completed; otherwise it is aborted — "the backup ... carr[ies]
        through to completion any operation initiated by the primary".
        """
        for record in self.records.values():
            if record.settling and record.done is None:
                record.settling = False
                event, record.settled_event = record.settled_event, None
                if event is not None and not event.triggered:
                    event.succeed()
                self._interrupted.append(record.transid)

    def _resolve_interrupted(self, proc: OsProcess, transid: Transid) -> Generator:
        record = self.records.get(transid)
        if record is None or record.done is not None or record.settling:
            return
        if self.dispositions.get(transid) == "committed":
            proceed = yield from self._settle_guard(record)
            if proceed:
                yield from self._commit_tail(proc, record)
        else:
            yield from self.do_abort(
                proc, transid, "coordinator failed during commit/abort"
            )

    def pump(self, proc: OsProcess) -> Generator:
        """Background loop: safe-delivery retries, auto-aborts, sweep.

        Runs as a sim process owned by the current TMP primary; dies
        with its CPU and is restarted by the new primary.
        """
        while proc.alive:
            # 0. Decisions interrupted by a TMP primary failure.
            interrupted, self._interrupted = self._interrupted, []
            for transid in interrupted:
                yield from self._resolve_interrupted(proc, transid)
            # 1. Queued automatic aborts.
            aborts, self._auto_aborts = self._auto_aborts, []
            for transid, reason in aborts:
                record = self.records.get(transid)
                if record is not None and record.done is None:
                    yield from self.do_abort(proc, transid, reason)
            # 2. Safe-delivery retries ("the sending of safe-delivery
            #    messages — whenever transmission becomes possible — is
            #    guaranteed").
            queue, self._safe_queue = self._safe_queue, []
            for dest_node, payload in queue:
                try:
                    yield from self.filesystem.send(
                        proc,
                        f"\\{dest_node}.{self.tmp_name}",
                        payload,
                        timeout=self.config.phase1_timeout,
                    )
                except FileSystemError:
                    self._safe_queue.append((dest_node, payload))
            # 3. Unilateral-abort sweep: a non-home node that has not yet
            #    acked phase 1 aborts transactions whose parent became
            #    unreachable ("complete loss of communication with a
            #    network node which participated in the transaction").
            for record in list(self.records.values()):
                if (
                    not record.home
                    and record.done is None
                    and not record.settling
                    and not record.phase1_acked
                    and record.parent is not None
                    and not self.node_os.message_system.reachable(
                        self.node_name, record.parent
                    )
                ):
                    yield from self.do_abort(
                        proc,
                        record.transid,
                        f"lost communication with {record.parent}",
                    )
            yield self.env.timeout(self.config.safe_retry_interval)

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, node=self.node_name, **fields)
