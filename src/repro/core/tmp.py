"""The Transaction Monitor Process (TMP) and its network protocol.

"Coordination of distributed transactions is one of the functions of the
'Transaction Monitor Process' (TMP), a process-pair which is configured
for each network node that participates in the distributed data base."
(paper, §Distributed Transaction Processing)

Message classes (paper, §Distributed Commit Protocol):

* **critical response** — the destination TMP must be accessible and
  reply affirmatively for the state change to proceed:
  :class:`TmpRemoteBegin` (remote transaction begin) and
  :class:`TmpPhase1` (transaction state change to *ending*);
* **safe delivery** — delivery is guaranteed-eventual but not
  time-critical; the reply only acknowledges receipt:
  :class:`TmpPhase2` (state change to *ended*, i.e. lock release) and
  :class:`TmpAbortRemote` (state change to *aborting*).

The TMP itself is a thin, concurrent dispatcher; the protocol logic
lives in :class:`repro.core.tmf.TmfNode`, which owns the node's
transaction table (conceptually replicated in every CPU by broadcast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..guardian import ConcurrentPair, Message, NodeOs, OsProcess
from .transid import Transid

__all__ = [
    "TmpCommit",
    "TmpAbort",
    "TmpRemoteBegin",
    "TmpPhase1",
    "TmpPhase2",
    "TmpAbortRemote",
    "TmpQuery",
    "TmpForceDisposition",
    "TmpProcess",
]


@dataclass(frozen=True)
class TmpCommit:
    """Home-node request: run the commit protocol for ``transid``."""

    transid: Transid


@dataclass(frozen=True)
class TmpAbort:
    """Request: abort and back out ``transid`` (voluntary or automatic)."""

    transid: Transid
    reason: str = "user abort"


@dataclass(frozen=True)
class TmpRemoteBegin:
    """Critical response: broadcast ``transid`` active on this node."""

    transid: Transid
    parent: str


@dataclass(frozen=True)
class TmpPhase1:
    """Critical response: force audit, propagate, vote yes/no."""

    transid: Transid


@dataclass(frozen=True)
class TmpPhase2:
    """Safe delivery: the transaction committed — release its locks."""

    transid: Transid


@dataclass(frozen=True)
class TmpAbortRemote:
    """Safe delivery: the transaction aborted — back out and release."""

    transid: Transid
    reason: str = "remote abort"


@dataclass(frozen=True)
class TmpQuery:
    """Disposition query (ROLLFORWARD negotiation, manual override)."""

    transid: Transid


@dataclass(frozen=True)
class TmpForceDisposition:
    """Manual override: operator forces a stranded transaction's fate."""

    transid: Transid
    disposition: str  # committed | aborted


class TmpProcess(ConcurrentPair):
    """The per-node TMP pair: dispatches protocol requests to TMF."""

    def __init__(
        self,
        node_os: NodeOs,
        name: str,
        primary_cpu: int,
        backup_cpu: int,
        tmf: Any,
        tracer: Any = None,
    ):
        self.tmf = tmf
        super().__init__(node_os, name, primary_cpu, backup_cpu, tracer)

    def on_start(self, proc: OsProcess) -> None:
        # The background pump: safe-delivery retries, the unilateral-
        # abort sweep, and queued automatic aborts.  Restarted with each
        # new primary.
        self.env.process(self.tmf.pump(proc), name=f"{self.name}.pump")

    def on_takeover(self) -> None:
        super().on_takeover()
        self.tmf.on_tmp_takeover()

    def serve_request(self, proc: OsProcess, message: Message) -> Generator:
        payload = message.payload
        tmf = self.tmf
        if isinstance(payload, TmpCommit):
            disposition = yield from tmf.do_commit(proc, payload.transid)
            proc.reply(message, {"ok": True, "disposition": disposition})
        elif isinstance(payload, TmpAbort):
            disposition = yield from tmf.do_abort(proc, payload.transid, payload.reason)
            proc.reply(message, {"ok": True, "disposition": disposition})
        elif isinstance(payload, TmpRemoteBegin):
            accepted = yield from tmf.do_remote_begin(payload.transid, payload.parent)
            proc.reply(message, {"ok": accepted})
        elif isinstance(payload, TmpPhase1):
            vote = yield from tmf.do_phase1(proc, payload.transid)
            proc.reply(message, {"ok": True, "vote": vote})
        elif isinstance(payload, TmpPhase2):
            yield from tmf.do_phase2(proc, payload.transid)
            proc.reply(message, {"ok": True})
        elif isinstance(payload, TmpAbortRemote):
            yield from tmf.do_abort_remote(proc, payload.transid, payload.reason)
            proc.reply(message, {"ok": True})
        elif isinstance(payload, TmpQuery):
            proc.reply(message, {"ok": True, **tmf.disposition_of(payload.transid)})
        elif isinstance(payload, TmpForceDisposition):
            yield from tmf.do_force_disposition(
                proc, payload.transid, payload.disposition
            )
            proc.reply(message, {"ok": True})
        else:
            proc.reply(message, {"ok": False, "error": f"unknown request {payload!r}"})
