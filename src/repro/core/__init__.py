"""TMF — the Transaction Monitoring Facility (the paper's contribution).

Transids, the Figure 3 transaction state machine with node-wide
broadcast, distributed audit trails and AUDITPROCESSes, the
BACKOUTPROCESS, the TMP with critical-response / safe-delivery network
messaging, the abbreviated and distributed two-phase commit protocols,
the Monitor Audit Trail, and ROLLFORWARD.
"""

from .audit import (
    AppendAudit,
    AuditProcess,
    AuditRecord,
    AuditTrail,
    CompletionRecord,
    ForceAudit,
    GetAudit,
)
from .backout import BackoutProcess, BackoutTx
from .rollforward import (
    RecoveryStats,
    Rollforward,
    VolumeArchive,
    dump_volume,
    purge_audit_trails,
)
from .states import (
    IllegalTransition,
    LEGAL_TRANSITIONS,
    StateBroadcaster,
    TxState,
    legal_transitions_by_name,
)
from .tmf import TmfConfig, TmfNode, TransactionAborted, TransactionRecord
from .tmfcom import Tmfcom
from .tmp import (
    TmpAbort,
    TmpAbortRemote,
    TmpCommit,
    TmpForceDisposition,
    TmpPhase1,
    TmpPhase2,
    TmpProcess,
    TmpQuery,
    TmpRemoteBegin,
)
from .transid import Transid, TransidGenerator

__all__ = [
    "AppendAudit",
    "AuditProcess",
    "AuditRecord",
    "AuditTrail",
    "BackoutProcess",
    "BackoutTx",
    "CompletionRecord",
    "ForceAudit",
    "GetAudit",
    "IllegalTransition",
    "LEGAL_TRANSITIONS",
    "RecoveryStats",
    "Rollforward",
    "StateBroadcaster",
    "TmfConfig",
    "TmfNode",
    "Tmfcom",
    "TmpAbort",
    "TmpAbortRemote",
    "TmpCommit",
    "TmpForceDisposition",
    "TmpPhase1",
    "TmpPhase2",
    "TmpProcess",
    "TmpQuery",
    "TmpRemoteBegin",
    "TransactionAborted",
    "TransactionRecord",
    "Transid",
    "TransidGenerator",
    "TxState",
    "VolumeArchive",
    "dump_volume",
    "legal_transitions_by_name",
    "purge_audit_trails",
]
