"""TMFCOM — the operator's utility interface to TMF.

The paper's manual-override procedure references "a TMF utility on the
home node to determine the transaction's disposition" and "the TMF
utility on the non-home node to force the disposition"; operating TMF
also involves taking online archives, running ROLLFORWARD, and managing
audit trails.  :class:`Tmfcom` gathers those operator verbs over one
node's TMF instance, mirroring the command surface of the historical
TMFCOM program:

* ``STATUS TMF``        → :meth:`status`
* ``STATUS TRANSACTIONS`` → :meth:`transactions`
* ``INFO TRANSACTION``  → :meth:`disposition` / :meth:`trace`
* ``RESOLVE TRANSACTION`` (force) → :meth:`force_disposition`
* ``DUMP FILES``        → :meth:`dump_volume`
* ``RECOVER FILES``     → :meth:`recover_volume`
* ``DELETE AUDITDUMPS`` → :meth:`purge_audit`
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..guardian import FileSystemError, OsProcess
from .rollforward import (
    Rollforward,
    VolumeArchive,
    dump_volume,
    purge_audit_trails,
)
from .tmf import TmfNode
from .tmp import TmpForceDisposition, TmpQuery
from .transid import Transid

__all__ = ["Tmfcom"]


class Tmfcom:
    """Operator commands over one node's TMF."""

    def __init__(self, tmf: TmfNode, collector: Optional[Any] = None):
        self.tmf = tmf
        self.rollforward = Rollforward(tmf)
        # The TRACE collector, when the run is traced: INFO TRANSACTION
        # can then show the causal flight recording, not just the
        # disposition.  Optional — TMFCOM predates tracing.
        self.collector = collector

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """STATUS TMF: counters and component health."""
        tmf = self.tmf
        return {
            "node": tmf.node_name,
            "commits": tmf.commits,
            "aborts": tmf.aborts,
            "active_transactions": len(self.transactions(state="active")),
            "tmp_available": tmf.tmp.available,
            "backout_available": tmf.backout_process.available,
            "audit_processes": {
                name: {
                    "available": audit.available,
                    "trail_files": len(audit.trail.file_names),
                    "trail_records": audit.trail.total_records,
                    "buffered": len(audit.state.get("buffer", {})),
                }
                for name, audit in tmf.audit_objects.items()
            },
            "safe_delivery_backlog": len(tmf._safe_queue),
        }

    def transactions(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """STATUS TRANSACTIONS: every transaction this node knows about."""
        rows = []
        for transid, record in sorted(self.tmf.records.items()):
            current = self.tmf.broadcaster.current_state(transid)
            current_name = str(current) if current is not None else (
                record.done or "gone"
            )
            if state is not None and current_name != state:
                continue
            rows.append({
                "transid": str(transid),
                "state": current_name,
                "home": record.home,
                "parent": record.parent,
                "children": sorted(record.children),
                "volumes": sorted(record.local_volumes),
                "phase1_acked": record.phase1_acked,
            })
        return rows

    def disposition(self, transid: Transid) -> Dict[str, Any]:
        """INFO TRANSACTION on this node (step 1 of the manual override)."""
        return {"transid": str(transid), **self.tmf.disposition_of(transid)}

    def trace(self, transid: Any) -> str:
        """INFO TRANSACTION, TRACE: the transaction's flight recording.

        Delegates to the run's trace collector; the screen is the
        :meth:`repro.trace.TransactionTrace.render` tree of serve/rpc
        spans with interleaved domain records.
        """
        if self.collector is None:
            return f"TRANSACTION {transid} — tracing not enabled on this run"
        if not self.collector.has_trace(transid):
            return f"TRANSACTION {transid} — no trace recorded"
        return self.collector.trace_of(transid).render()

    # ------------------------------------------------------------------
    # Resolution (generator helpers: run from an operator process)
    # ------------------------------------------------------------------
    def query_remote_disposition(self, proc: OsProcess, transid: Transid) -> Generator:
        """Ask the transaction's home node for the disposition."""
        if transid.home_node == self.tmf.node_name:
            return self.disposition(transid)
        try:
            reply = yield from self.tmf.filesystem.send(
                proc,
                f"\\{transid.home_node}.{self.tmf.tmp_name}",
                TmpQuery(transid),
                timeout=self.tmf.config.phase1_timeout,
            )
        except FileSystemError as exc:
            return {"transid": str(transid), "disposition": "unknown",
                    "error": str(exc)}
        return {"transid": str(transid), **{k: v for k, v in reply.items()
                                            if k != "ok"}}

    def force_disposition(self, proc: OsProcess, transid: Transid,
                          disposition: str) -> Generator:
        """RESOLVE TRANSACTION: force a stranded transaction's outcome.

        Step 3 of the paper's manual procedure — the operator has
        determined ``disposition`` at the home node out of band.
        """
        if disposition not in ("committed", "aborted"):
            raise ValueError(f"disposition must be committed/aborted, got {disposition!r}")
        yield from self.tmf.filesystem.send(
            proc, self.tmf.tmp_name, TmpForceDisposition(transid, disposition),
            timeout=30_000.0,
        )
        return self.disposition(transid)

    # ------------------------------------------------------------------
    # Archives and recovery
    # ------------------------------------------------------------------
    def dump_volume(self, volume_name: str) -> VolumeArchive:
        """DUMP FILES: online archive of one audited volume."""
        disc_process = self.tmf.disc_objects.get(volume_name)
        if disc_process is None:
            raise KeyError(f"no DISCPROCESS registered for {volume_name}")
        return dump_volume(disc_process)

    def recover_volume(self, proc: OsProcess, archive: VolumeArchive) -> Generator:
        """RECOVER FILES: ROLLFORWARD one volume from an archive."""
        disc_process = self.tmf.disc_objects.get(archive.volume)
        if disc_process is None:
            raise KeyError(f"no DISCPROCESS registered for {archive.volume}")
        self.rollforward.rebuild_dispositions()
        stats = yield from self.rollforward.recover_volume(
            proc, disc_process, archive
        )
        return stats

    def purge_audit(self, archives: List[VolumeArchive]) -> int:
        """DELETE AUDITDUMPS: reclaim trail files covered by archives."""
        return purge_audit_trails(self.tmf, archives)

    # ------------------------------------------------------------------
    def render_status(self) -> str:
        """A console-style status report."""
        status = self.status()
        lines = [
            f"TMF STATUS — node \\{status['node']}",
            f"  commits: {status['commits']}   aborts: {status['aborts']}   "
            f"active: {status['active_transactions']}",
            f"  TMP: {'up' if status['tmp_available'] else 'DOWN'}   "
            f"BACKOUT: {'up' if status['backout_available'] else 'DOWN'}",
        ]
        for name, info in status["audit_processes"].items():
            lines.append(
                f"  {name}: {'up' if info['available'] else 'DOWN'}, "
                f"{info['trail_files']} trail files, "
                f"{info['trail_records']} records durable, "
                f"{info['buffered']} buffered"
            )
        if status["safe_delivery_backlog"]:
            lines.append(
                f"  safe-delivery backlog: {status['safe_delivery_backlog']}"
            )
        return "\n".join(lines)
