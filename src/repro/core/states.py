"""The transaction state machine of Figure 3, and its broadcast tables.

States and legal transitions (paper, §Transaction State Change):

* **active** — after BEGIN-TRANSACTION; may go to *ending* or *aborting*;
* **ending** — END-TRANSACTION called, audit being forced (phase one);
  may go to *ended* or *aborting*;
* **ended** — commit record written to the Monitor Audit Trail; terminal
  (locks released during this state, then the transid leaves the system);
* **aborting** — the decision to back out has been taken; only *aborted*
  may follow;
* **aborted** — backout complete; terminal.

"All transaction state changes are broadcast, via the interprocessor
bus, to all processors within a single node ... regardless of which
processors actually participated."  The :class:`StateBroadcaster` keeps
a per-CPU state table per the paper, enforces legal transitions, and
counts broadcasts (the F3/E3 experiments read those counters).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..hardware import Node
from ..sim import Tracer
from .transid import Transid

__all__ = [
    "TxState",
    "LEGAL_TRANSITIONS",
    "legal_transitions_by_name",
    "IllegalTransition",
    "StateBroadcaster",
]


class TxState(Enum):
    ACTIVE = "active"
    ENDING = "ending"
    ENDED = "ended"
    ABORTING = "aborting"
    ABORTED = "aborted"

    def __str__(self) -> str:
        return self.value


LEGAL_TRANSITIONS: Dict[Optional[TxState], Tuple[TxState, ...]] = {
    None: (TxState.ACTIVE,),
    TxState.ACTIVE: (TxState.ENDING, TxState.ABORTING),
    TxState.ENDING: (TxState.ENDED, TxState.ABORTING),
    TxState.ENDED: (),
    TxState.ABORTING: (TxState.ABORTED,),
    TxState.ABORTED: (),
}


def legal_transitions_by_name() -> Dict[Optional[str], Tuple[str, ...]]:
    """Figure 3's edges keyed by state *names* (``"active"`` etc.).

    The form consumed by layers that must not import this module — the
    TRACE watchdog receives it by injection from the system builder, so
    the one transition table stays here.
    """
    return {
        (str(current) if current is not None else None): tuple(
            str(state) for state in targets
        )
        for current, targets in LEGAL_TRANSITIONS.items()
    }


class IllegalTransition(RuntimeError):
    """A state change not present in Figure 3 was attempted."""

    def __init__(self, transid: Transid, current: Optional[TxState], new: TxState):
        super().__init__(f"{transid}: illegal transition {current} -> {new}")
        self.transid = transid
        self.current = current
        self.new = new


class StateBroadcaster:
    """Per-node transaction state tables, one per CPU, kept by broadcast.

    The table of a failed CPU is discarded (its memory is gone); a
    restored CPU is re-seeded from a surviving CPU's table at its next
    broadcast.  As long as one CPU survives, the node retains every
    transaction's state without any disc access — the property that lets
    TMF avoid crash-restart for single-module failures.
    """

    def __init__(self, node: Node, tracer: Optional[Tracer] = None):
        self.node = node
        self.env = node.env
        self.tracer = tracer
        self.tables: Dict[int, Dict[Transid, TxState]] = {
            cpu.number: {} for cpu in node.cpus
        }
        self.broadcasts = 0
        for cpu in node.cpus:
            cpu.watch_failure(self._on_cpu_failure)

    def _on_cpu_failure(self, cpu) -> None:
        self.tables[cpu.number] = {}

    # ------------------------------------------------------------------
    def current_state(self, transid: Transid) -> Optional[TxState]:
        """The transid's state per the surviving CPUs (None if unknown)."""
        for cpu in self.node.cpus:
            if cpu.up:
                state = self.tables[cpu.number].get(transid)
                if state is not None:
                    return state
        return None

    def broadcast(self, transid: Transid, new_state: TxState) -> float:
        """Record ``new_state`` in every live CPU's table.

        Returns the bus time the caller should consume (one broadcast);
        raises :class:`IllegalTransition` for an edge not in Figure 3.
        Terminal states are removed from the tables after recording —
        "once the 'ended' state has completed, the transid leaves the
        system" — but the transition itself is validated and traced.
        """
        current = self.current_state(transid)
        if new_state not in LEGAL_TRANSITIONS[current]:
            raise IllegalTransition(transid, current, new_state)
        live = self.node.alive_cpus()
        for cpu in live:
            table = self.tables[cpu.number]
            if not table and current is not None:
                # Freshly restored CPU: re-seed from a survivor.
                source = self._survivor_table(exclude=cpu.number)
                if source is not None:
                    table.update(source)
            table[transid] = new_state
        self.broadcasts += 1
        # The broadcast rides the interprocessor bus pair.
        self.node.buses.record_transfer(self.node.latencies.bus_broadcast)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now,
                "state_broadcast",
                node=self.node.name,
                transid=str(transid),
                state=str(new_state),
                cpus=len(live),
            )
        if new_state in (TxState.ENDED, TxState.ABORTED):
            for table in self.tables.values():
                table.pop(transid, None)
        return self.node.latencies.bus_broadcast

    def _survivor_table(self, exclude: int) -> Optional[Dict[Transid, TxState]]:
        for cpu in self.node.cpus:
            if cpu.up and cpu.number != exclude and self.tables[cpu.number]:
                return self.tables[cpu.number]
        return None

    def live_transids(self) -> List[Transid]:
        seen: Dict[Transid, TxState] = {}
        for cpu in self.node.cpus:
            if cpu.up:
                seen.update(self.tables[cpu.number])
        return sorted(seen)
