"""CLI of the GUARDRAIL static-analysis suite.

Exit codes (CI-friendly):

* ``0`` — no finding at/above the failure severity;
* ``1`` — at least one finding at/above the failure severity;
* ``2`` — usage or I/O error (bad rule name, missing baseline file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .base import Severity, all_rules
from .baseline import Baseline
from .engine import findings_to_json, render_findings, run_lint

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "GUARDRAIL: AST-based checks for determinism, layering, "
            "Figure-3 transitions, probe coverage, and exception hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="report format (json output is byte-deterministic)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--severity",
        default="warning",
        help="minimum severity to report (info|warning|error)",
    )
    parser.add_argument(
        "--fail-on",
        default="error",
        help="exit non-zero when a finding reaches this severity",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON file; matching findings are not reported",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _split(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.name:20s} [{cls.default_severity}] {cls.description}")
        return 0

    try:
        report_at = Severity.parse(args.severity)
        fail_at = Severity.parse(args.fail_on)
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline and not args.write_baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(
                f"repro.lint: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return 2
        baseline = Baseline.load(baseline_path)

    try:
        result = run_lint(
            args.paths,
            select=_split(args.select),
            ignore=_split(args.ignore) or (),
            baseline=baseline,
        )
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.baseline:
            print("repro.lint: --write-baseline requires --baseline", file=sys.stderr)
            return 2
        Baseline.from_findings(result.findings).save(Path(args.baseline))
        print(
            f"repro.lint: wrote {len(result.findings)} finding(s) "
            f"to {args.baseline}"
        )
        return 0

    if args.format == "json":
        print(findings_to_json(result, threshold=report_at))
    else:
        print(render_findings(result, threshold=report_at))
    return 1 if result.count_at_least(fail_at) else 0


if __name__ == "__main__":
    sys.exit(main())
