"""Core types of the GUARDRAIL framework: findings, rules, module info.

A :class:`Rule` inspects one parsed module at a time and yields
:class:`Finding` objects.  Rules register themselves into
:data:`REGISTRY` via the :func:`register` decorator; the engine
instantiates every registered rule per run (rules may keep per-run
state, e.g. the probe-coverage call-graph).
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Type

__all__ = [
    "Severity",
    "Finding",
    "ModuleInfo",
    "Rule",
    "REGISTRY",
    "register",
    "all_rules",
    "suppressed_lines",
]


class Severity(enum.IntEnum):
    """Ordered severities; the CLI threshold compares against these."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: the stripped source line, used for baseline matching (immune to
    #: pure line-number drift from edits elsewhere in the file).
    code: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code": self.code,
        }


@dataclass
class ModuleInfo:
    """One parsed source module plus the context rules need."""

    path: Path
    display_path: str
    tree: ast.Module
    lines: List[str]
    #: dotted package parts starting at ``repro`` (e.g. ``("repro",
    #: "guardian")``); empty when the file is outside a repro tree.
    package: Tuple[str, ...] = ()
    #: local name -> dotted origin ("dt" -> "datetime.datetime"),
    #: built lazily from the module's imports.
    _aliases: Optional[Dict[str, str]] = field(default=None, repr=False)
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def repro_package(self) -> Optional[str]:
        """The top-level repro sub-package ("guardian", "sim", ...)."""
        if len(self.package) >= 2 and self.package[0] == "repro":
            return self.package[1]
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # ------------------------------------------------------------------
    # Import aliases
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> Dict[str, str]:
        if self._aliases is None:
            self._aliases = self._build_aliases()
        return self._aliases

    def _build_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_import_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{base}.{alias.name}"
        return aliases

    def resolve_import_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted module an ``from X import ...`` refers to."""
        if node.level == 0:
            return node.module
        if not self.package:
            return None
        # ``level=1`` is the module's own package; each extra level
        # climbs one package up.
        anchor = self.package[: len(self.package) - (node.level - 1)]
        if not anchor:
            return None
        base = ".".join(anchor)
        return f"{base}.{node.module}" if node.module else base

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of an expression, or None if not import-rooted.

        ``datetime.now`` with ``from datetime import datetime`` resolves
        to ``"datetime.datetime.now"``; a call on a local variable
        resolves to None.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------
    # Parent links (for guard-context walks)
    # ------------------------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            table: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents


class Rule:
    """Base class of every GUARDRAIL rule.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`check`.  One instance is created per run, so per-run caches
    (cross-module tables) are safe instance state.
    """

    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finalize(self) -> Iterator[Finding]:
        """Findings resolvable only after every module was scanned.

        Cross-module rules (e.g. probe-coverage's call-graph fixpoint)
        record sites during :meth:`check` and emit here.
        """
        return iter(())

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            severity=severity if severity is not None else self.default_severity,
            path=module.display_path,
            line=line,
            col=col,
            message=message,
            code=module.line_text(line),
        )


REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, in deterministic (name) order."""
    from . import rules  # noqa: F401 - imported for registration side effect

    return [REGISTRY[name] for name in sorted(REGISTRY)]


_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def suppressed_lines(lines: List[str]) -> Dict[int, frozenset]:
    """Per-line suppression sets from ``# repro: allow[rule,...]`` marks.

    A mark suppresses the named rules on its own line *and* the line
    below, so it can ride the offending line or sit just above it.
    """
    table: Dict[int, frozenset] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        names = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if not names:
            continue
        for target in (number, number + 1):
            table[target] = table.get(target, frozenset()) | names
    return table
