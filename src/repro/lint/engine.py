"""The GUARDRAIL engine: walk paths, parse, run rules, render findings.

The engine is deliberately import-light and deterministic: files are
visited in sorted order, findings are sorted by (path, line, col, rule),
and the JSON form is byte-stable for identical inputs — the same
property the simulation's own reports guarantee.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .base import (
    Finding,
    ModuleInfo,
    Rule,
    Severity,
    all_rules,
    suppressed_lines,
)
from .baseline import Baseline

__all__ = ["LintResult", "run_lint", "render_findings", "findings_to_json"]

#: directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: Tuple[str, ...] = ()
    suppressed: int = 0
    baselined: int = 0

    def worst(self) -> Optional[Severity]:
        return max((f.severity for f in self.findings), default=None)

    def count_at_least(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity >= severity)


def _iter_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                yield candidate


def _package_of(path: Path) -> Tuple[str, ...]:
    """Dotted package parts from the last ``repro`` path component on.

    ``src/repro/guardian/pair.py`` -> ``("repro", "guardian")``;
    a file outside any repro tree gets an empty package (rules that
    depend on layout skip it).
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index:-1])
    return ()


def load_module(path: Path, display_path: Optional[str] = None) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=path,
        display_path=display_path or path.as_posix(),
        tree=tree,
        lines=source.splitlines(),
        package=_package_of(path),
    )


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Sequence[str] = (),
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``paths`` with every registered rule (minus select/ignore)."""
    rule_classes = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {cls.name for cls in rule_classes}
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rule_classes = [cls for cls in rule_classes if cls.name in wanted]
    if ignore:
        unknown = set(ignore) - {cls.name for cls in all_rules()}
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rule_classes = [cls for cls in rule_classes if cls.name not in set(ignore)]
    rules: List[Rule] = [cls() for cls in rule_classes]

    result = LintResult(rules_run=tuple(rule.name for rule in rules))
    raw: List[Finding] = []
    # Suppression tables by display path, kept for finalize()-stage
    # findings whose module was scanned earlier.
    suppression_tables: Dict[str, Dict[int, frozenset]] = {}
    for file_path in _iter_files([Path(p) for p in paths]):
        result.files_scanned += 1
        try:
            module = load_module(file_path)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    rule="parse",
                    severity=Severity.ERROR,
                    path=file_path.as_posix(),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        file_findings = [f for rule in rules for f in rule.check(module)]
        suppressions = suppressed_lines(module.lines)
        suppression_tables[module.display_path] = suppressions
        for finding in file_findings:
            allowed = suppressions.get(finding.line, frozenset())
            if finding.rule in allowed:
                result.suppressed += 1
            else:
                raw.append(finding)
    for rule in rules:
        for finding in rule.finalize():
            table = suppression_tables.get(finding.path, {})
            if finding.rule in table.get(finding.line, frozenset()):
                result.suppressed += 1
            else:
                raw.append(finding)
    if baseline is not None:
        kept = baseline.filter(raw)
        result.baselined = len(raw) - len(kept)
        raw = kept
    result.findings = sorted(raw, key=Finding.sort_key)
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_findings(result: LintResult, threshold: Severity = Severity.WARNING) -> str:
    """Human-readable report of findings at/above ``threshold``."""
    shown = [f for f in result.findings if f.severity >= threshold]
    lines = [
        f"{f.path}:{f.line}:{f.col}: [{f.rule}] {f.severity}: {f.message}"
        for f in shown
    ]
    by_severity: Dict[str, int] = {}
    for finding in shown:
        key = str(finding.severity)
        by_severity[key] = by_severity.get(key, 0) + 1
    if shown:
        breakdown = ", ".join(
            f"{count} {name}" for name, count in sorted(by_severity.items())
        )
        lines.append(
            f"repro.lint: {len(shown)} finding(s) ({breakdown}) "
            f"in {result.files_scanned} file(s)"
        )
    else:
        extras = []
        if result.suppressed:
            extras.append(f"{result.suppressed} suppressed")
        if result.baselined:
            extras.append(f"{result.baselined} baselined")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"repro.lint: clean — {result.files_scanned} file(s), "
            f"{len(result.rules_run)} rule(s){suffix}"
        )
    return "\n".join(lines)


def findings_to_json(result: LintResult, threshold: Severity = Severity.WARNING) -> str:
    """Deterministic JSON report (stable ordering, sorted keys)."""
    shown = [f for f in result.findings if f.severity >= threshold]
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "rules": list(result.rules_run),
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [f.to_dict() for f in shown],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
