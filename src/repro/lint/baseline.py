"""Baseline files: adopt GUARDRAIL on a codebase with known findings.

A baseline records existing findings so CI fails only on *new* ones.
Entries match on ``(rule, path, stripped source line)`` rather than line
numbers, so edits elsewhere in a file do not churn the baseline; a
count per entry tolerates duplicates of the same code line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from .base import Finding

__all__ = ["Baseline"]


class Baseline:
    """A multiset of known findings keyed by (rule, path, code)."""

    VERSION = 1

    def __init__(self, counts: Dict[Tuple[str, str, str], int] = None):
        self.counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = (finding.rule, finding.path, finding.code)
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != cls.VERSION:
            raise ValueError(f"unsupported baseline version in {path}")
        baseline = cls()
        for entry in data.get("entries", ()):
            key = (entry["rule"], entry["path"], entry["code"])
            baseline.counts[key] = baseline.counts.get(key, 0) + int(
                entry.get("count", 1)
            )
        return baseline

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": file, "code": code, "count": count}
            for (rule, file, code), count in sorted(self.counts.items())
        ]
        payload = {"version": self.VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------
    def filter(self, findings: List[Finding]) -> List[Finding]:
        """Findings not absorbed by the baseline (in stable order).

        Each baseline entry absorbs up to ``count`` matching findings,
        taken in (path, line) order so the result is deterministic.
        """
        budget = dict(self.counts)
        fresh: List[Finding] = []
        for finding in sorted(findings, key=Finding.sort_key):
            key = (finding.rule, finding.path, finding.code)
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
            else:
                fresh.append(finding)
        return fresh
