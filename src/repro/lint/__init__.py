"""GUARDRAIL: repo-specific static analysis for the reproduction.

The simulation's correctness rests on invariants that runtime checks can
only sample: bit-determinism (no wall-clock or ambient entropy), the
paper's layering (hardware -> GUARDIAN -> DISCPROCESS/TMF -> ENCOMPASS),
Figure 3's transaction state graph, probe coverage on every guardian
send path, and exception hygiene in recovery code.  ``repro.lint``
enforces them *at rest*: an AST pass over the source that fails CI on
any code path that could violate them, before a seed ever executes.

Usage::

    python -m repro.lint [paths] [--format json] [--baseline FILE]

Findings are suppressed per line with ``# repro: allow[rule]`` (same
line or the line above).  See README "Static analysis" for the rule
table.
"""

from .base import (
    Finding,
    ModuleInfo,
    REGISTRY,
    Rule,
    Severity,
    all_rules,
    register,
)
from .baseline import Baseline
from .engine import LintResult, findings_to_json, render_findings, run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "REGISTRY",
    "Rule",
    "Severity",
    "all_rules",
    "findings_to_json",
    "register",
    "render_findings",
    "run_lint",
]
