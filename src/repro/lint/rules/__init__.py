"""GUARDRAIL rule modules.  Importing this package registers every rule."""

from . import determinism, exceptions, figure3, layering, probes  # noqa: F401

__all__ = ["determinism", "exceptions", "figure3", "layering", "probes"]
