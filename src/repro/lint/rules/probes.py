"""Rule ``probe-coverage``: guardian send paths must carry XRAY/TRACE probes.

PRs 1-2 established the null-object probe convention: observability
rides the environment (``env.metrics`` / ``env.trace``), every probe
site is a single attribute check, and an unmeasured run pays nothing.
The convention only works if every send/rpc path actually *has* a probe
— a new message path added without one is invisible to both the XRAY
report and the causal tracer, and nothing at runtime notices.

A function in ``repro/guardian/`` is a **send path** if it constructs a
``Message``, calls ``record_transfer`` (bus/transit accounting), or
calls ``accept`` (delivery into an inbox).  Every send path must be
*probe-covered*: its body reads ``<...>.env.metrics`` or
``<...>.env.trace``, or it calls — by name, to fixpoint across the
scanned files — a function that is.  Delegation is the norm
(``reply`` probes via ``_transit_latency``), so coverage propagates
through the static call graph rather than demanding a probe per
function.

BOXCAR extended the convention into ``repro/discprocess/``: the audit
boxcar forwards off the operation's critical path, so an unprobed flush
is *doubly* invisible — no caller ever waits on it.  A DISCPROCESS
function is therefore a send path too when it constructs an
``AppendAudit`` (ships audit cargo to the AUDITPROCESS) or is a boxcar
coroutine (a generator whose name contains ``boxcar`` — the flush
machinery).  The same coverage rule applies; pure policy helpers such
as ``resolve_boxcar`` are plain functions and stay out of scope.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..base import Finding, ModuleInfo, Rule, register

__all__ = ["ProbeCoverageRule"]

#: attribute names whose read constitutes a probe.
_PROBE_ATTRS = frozenset({"metrics", "trace"})

#: call targets that make a guardian function a send path.
_SEND_MARKERS = frozenset({"record_transfer", "accept"})

#: constructed types that make a discprocess function a send path —
#: the ops that ship audit cargo off-node.
_AUDIT_SHIP_TYPES = frozenset({"AppendAudit"})

#: names too generic to carry coverage credit across the call graph —
#: container/IO methods and simulation plumbing collide with unrelated
#: definitions and would launder coverage through e.g. ``list.append``.
_GENERIC_NAMES = frozenset(
    {
        "add", "append", "appendleft", "clear", "close", "copy", "count",
        "deepcopy", "discard", "emit", "extend", "format", "get", "index",
        "insert", "items", "join", "keys", "kill", "len", "max", "min",
        "next", "open", "pop", "popleft", "print", "process", "put",
        "read", "remove", "run", "setdefault", "sort", "sorted", "split",
        "start", "strip", "succeed", "timeout", "update", "values",
        "write",
    }
)


def _called_names(func: ast.AST) -> Set[str]:
    """Credit-bearing simple/attr names of everything ``func`` calls."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name and name not in _GENERIC_NAMES and not name.startswith("__"):
                names.add(name)
    return names


def _constructs(func: ast.AST, targets: frozenset) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if name in targets:
                return True
    return False


_MESSAGE_TYPES = frozenset({"Message"})


def _is_coroutine(func: ast.AST) -> bool:
    """True when the body yields — i.e. it runs on simulated time."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _has_direct_probe(func: ast.AST) -> bool:
    """True when the body reads ``<...>.env.metrics`` or ``<...>.env.trace``."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _PROBE_ATTRS
            and isinstance(node.value, (ast.Name, ast.Attribute))
        ):
            base = node.value
            base_name = base.id if isinstance(base, ast.Name) else base.attr
            if base_name == "env":
                return True
    return False


@register
class ProbeCoverageRule(Rule):
    name = "probe-coverage"
    description = (
        "every guardian send/rpc path (Message construction, transit "
        "accounting, inbox delivery) and every discprocess boxcar/audit-"
        "shipping path must reach an env.metrics/env.trace probe, "
        "directly or through its callees"
    )

    def __init__(self) -> None:
        # (display_path, qualname, node) of functions that must be
        # covered, plus the cross-module name tables for the fixpoint.
        self._required: List[Tuple[ModuleInfo, str, ast.AST]] = []
        self._covered_names: Set[str] = set()
        self._calls_by_name: Dict[str, Set[str]] = {}

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        functions = self._functions(module)
        for qualname, func in functions:
            name = func.name
            if _has_direct_probe(func):
                self._covered_names.add(name)
            called = _called_names(func)
            self._calls_by_name.setdefault(name, set()).update(called)
            if module.repro_package == "guardian":
                if _constructs(func, _MESSAGE_TYPES) or (called & _SEND_MARKERS):
                    self._required.append((module, qualname, func))
            elif module.repro_package == "discprocess":
                # BOXCAR probe sites: audit shipped to the AUDITPROCESS,
                # and the flush coroutines that decide when it departs.
                if _constructs(func, _AUDIT_SHIP_TYPES) or (
                    "boxcar" in name and _is_coroutine(func)
                ):
                    self._required.append((module, qualname, func))
        return
        yield  # pragma: no cover - all findings deferred to finalize()

    # ------------------------------------------------------------------
    def finalize(self) -> Iterator[Finding]:
        """Resolve coverage once every module's call edges are known.

        Deferred because credit flows across files: a send path in
        ``filesystem.py`` may be covered by a probe in ``message.py``
        scanned later in the same run.
        """
        covered = self._fixpoint()
        for module, qualname, func in self._required:
            if func.name in covered:
                continue
            yield self.finding(
                module,
                func,
                f"send path {qualname}() has no env.metrics/env.trace "
                f"probe on any static call path — add the single-"
                f"attribute-check probe of the PR 1-2 convention",
            )
        self._required = []

    def _fixpoint(self) -> Set[str]:
        covered = set(self._covered_names)
        changed = True
        while changed:
            changed = False
            for name, callees in self._calls_by_name.items():
                if name not in covered and callees & covered:
                    covered.add(name)
                    changed = True
        return covered

    # ------------------------------------------------------------------
    @staticmethod
    def _functions(module: ModuleInfo) -> List[Tuple[str, ast.AST]]:
        found: List[Tuple[str, ast.AST]] = []

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    found.append((qualname, child))
                    visit(child, f"{qualname}.")
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.")
                else:
                    visit(child, prefix)

        visit(module.tree, "")
        return found
