"""Rule ``exception-hygiene``: no bare excepts, justified broad catches.

A swallowed exception in this codebase does not crash a request — it
silently corrupts an experiment: a takeover that "worked" because the
error vanished, an audit record that never failed.  Hence:

* ``except:`` (bare) is always a finding — it even catches
  ``GeneratorExit``, which the simulator uses to unwind killed
  processes, so a bare except can hang a CPU failure;
* ``except Exception`` / ``except BaseException`` requires a written
  justification — a comment on the handler line, the line above, or the
  first body line, with actual words beyond a bare ``noqa`` code;
* in the pair-takeover / recovery modules (``guardian/pair.py``,
  ``core/backout.py``, ``core/rollforward.py``, ``core/tmf.py``) a
  broad handler whose body only ``pass``/``continue``s is flagged even
  when commented: recovery code may degrade, never ignore.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from ..base import Finding, ModuleInfo, Rule, register

__all__ = ["ExceptionHygieneRule"]

_BROAD = frozenset({"Exception", "BaseException"})

#: recovery-path modules audited hardest (path suffixes).
_RECOVERY_SUFFIXES = (
    "guardian/pair.py",
    "core/backout.py",
    "core/rollforward.py",
    "core/tmf.py",
)

_COMMENT_RE = re.compile(r"#(.*)$")
_NOQA_RE = re.compile(r"noqa(:\s*[A-Z]+[0-9]*(\s*,\s*[A-Z]+[0-9]*)*)?", re.IGNORECASE)


def _justification(lines: List[str], candidates: List[int]) -> bool:
    """True if any candidate line carries a comment with real words."""
    for lineno in candidates:
        if not (1 <= lineno <= len(lines)):
            continue
        match = _COMMENT_RE.search(lines[lineno - 1])
        if not match:
            continue
        text = _NOQA_RE.sub("", match.group(1))
        if re.search(r"[A-Za-z]{3}", text):
            return True
    return False


@register
class ExceptionHygieneRule(Rule):
    name = "exception-hygiene"
    description = (
        "no bare except; except Exception needs a justification comment "
        "(and may not swallow silently in pair-takeover/recovery modules)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        recovery = module.display_path.endswith(_RECOVERY_SUFFIXES)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except catches everything including GeneratorExit "
                    "— name the exception types",
                )
                continue
            if not self._is_broad(node.type):
                continue
            justified = _justification(
                module.lines,
                [node.lineno, node.lineno - 1, node.body[0].lineno],
            )
            if not justified:
                yield self.finding(
                    module,
                    node,
                    "broad `except Exception` without a justification "
                    "comment — narrow the types or say why breadth is "
                    "deliberate",
                )
            elif recovery and self._swallows(node):
                yield self.finding(
                    module,
                    node,
                    "recovery-path handler swallows a broad exception "
                    "silently — record, retrace, or re-raise it",
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _is_broad(annotation: ast.AST) -> bool:
        def broad_name(node: ast.AST) -> bool:
            return isinstance(node, ast.Name) and node.id in _BROAD

        if broad_name(annotation):
            return True
        if isinstance(annotation, ast.Tuple):
            return any(broad_name(element) for element in annotation.elts)
        return False

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in handler.body
        )
