"""Rule ``figure3``: only edges of Figure 3's state graph can be written.

The paper's transaction state machine (active -> ending -> ended,
active/ending -> aborting -> aborted) is defined once, in
``core/states.py`` as ``LEGAL_TRANSITIONS``; the runtime broadcaster
raises on any other edge.  This rule moves that check to rest:

* every ``TxState.X`` attribute must name a real member (a typo like
  ``TxState.PREPARED`` is a finding, not a runtime AttributeError);
* every transition site — a ``broadcast(transid, TxState.X)`` /
  ``_broadcast_timed(transid, TxState.X, ...)`` call, or an assignment
  of a ``TxState`` literal into a table/attribute — whose *from*-state
  is statically known from an enclosing positive guard
  (``state == TxState.Y`` or ``state in (TxState.Y, ...)``) must be an
  edge of ``LEGAL_TRANSITIONS``;
* any literal transition table outside ``core/states.py`` (a dict of
  ``TxState`` to ``TxState`` collections) must be a subgraph of
  ``LEGAL_TRANSITIONS``.

Sites with no statically known from-state are left to the runtime
broadcaster and the PR 2 watchdog — the rule never guesses.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..base import Finding, ModuleInfo, Rule, register

__all__ = ["Figure3Rule"]

_TRANSITION_CALLS = frozenset({"broadcast", "_broadcast_timed"})


def _state_tables() -> Tuple[Set[str], dict]:
    """(member names, legal edges by name) from the live Figure 3 tables.

    Imported lazily so the lint framework stays importable without the
    full stack; the linter always checks against the tables the runtime
    actually enforces.
    """
    from ...core.states import LEGAL_TRANSITIONS, TxState

    members = {state.name for state in TxState}
    edges = {
        (source.name if source is not None else None): {
            target.name for target in targets
        }
        for source, targets in LEGAL_TRANSITIONS.items()
    }
    return members, edges


@register
class Figure3Rule(Rule):
    name = "figure3"
    description = (
        "TxState references must be real members and every statically "
        "guarded transition must be an edge of Figure 3 (LEGAL_TRANSITIONS)"
    )

    def __init__(self) -> None:
        self._members, self._edges = _state_tables()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.display_path.endswith("core/states.py"):
            return  # the definition site itself
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                finding = self._check_member(module, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Call):
                yield from self._check_transition_call(module, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_assignment(module, node)
            elif isinstance(node, ast.Dict):
                yield from self._check_table_literal(module, node)

    # ------------------------------------------------------------------
    # TxState.X extraction
    # ------------------------------------------------------------------
    @staticmethod
    def _is_txstate(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == "TxState"

    def _member_of(self, node: ast.AST) -> Optional[str]:
        """``"X"`` when ``node`` is exactly ``TxState.X``, else None."""
        if isinstance(node, ast.Attribute) and self._is_txstate(node.value):
            return node.attr
        return None

    def _check_member(self, module: ModuleInfo, node: ast.Attribute) -> Optional[Finding]:
        member = self._member_of(node)
        if member is None or not member.isupper():
            return None
        if member not in self._members:
            known = ", ".join(sorted(self._members))
            return self.finding(
                module,
                node,
                f"TxState.{member} is not a Figure-3 state (known: {known})",
            )
        return None

    # ------------------------------------------------------------------
    # Guard context
    # ------------------------------------------------------------------
    def _guard_states(self, module: ModuleInfo, node: ast.AST) -> Optional[Set[str]]:
        """From-states established by the nearest positive ``if`` guard.

        Walks ancestors until a function boundary; returns the state set
        of the first enclosing ``if`` whose test pins the current state
        via ``== TxState.Y`` or ``in (TxState.Y, ...)`` *and* whose body
        (not ``orelse``) contains the site.  None = statically unknown.
        """
        parents = module.parents
        child = node
        while True:
            parent = parents.get(child)
            if parent is None or isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                return None
            if isinstance(parent, ast.If) and self._contains(parent.body, child):
                states = self._states_from_test(parent.test)
                if states:
                    return states
            child = parent

    @staticmethod
    def _contains(body: List[ast.stmt], node: ast.AST) -> bool:
        return any(node is stmt or node in ast.walk(stmt) for stmt in body)

    def _states_from_test(self, test: ast.AST) -> Optional[Set[str]]:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        op = test.ops[0]
        comparator = test.comparators[0]
        if isinstance(op, ast.Eq):
            member = self._member_of(comparator)
            if member is None:
                member = self._member_of(test.left)
            return {member} if member in self._members else None
        if isinstance(op, ast.In) and isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            members = [self._member_of(element) for element in comparator.elts]
            if members and all(m in self._members for m in members):
                return set(members)
        return None

    def _check_edge_set(
        self, module: ModuleInfo, node: ast.AST, target: str
    ) -> Iterator[Finding]:
        sources = self._guard_states(module, node)
        if sources is None or target not in self._members:
            return
        for source in sorted(sources):
            if target not in self._edges.get(source, set()):
                yield self.finding(
                    module,
                    node,
                    f"transition {source} -> {target} is not an edge of "
                    f"Figure 3 (LEGAL_TRANSITIONS)",
                )

    # ------------------------------------------------------------------
    # Sites
    # ------------------------------------------------------------------
    def _check_transition_call(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in _TRANSITION_CALLS:
            return
        for arg in node.args:
            target = self._member_of(arg)
            if target is not None and target in self._members:
                yield from self._check_edge_set(module, node, target)

    def _check_assignment(self, module: ModuleInfo, node: ast.Assign) -> Iterator[Finding]:
        target_state = self._member_of(node.value)
        if target_state is None or target_state not in self._members:
            return
        # Only stored transitions count: table[tid] = TxState.X or
        # obj.state = TxState.X.  Plain locals are bookkeeping, not
        # transitions.
        if any(isinstance(t, (ast.Subscript, ast.Attribute)) for t in node.targets):
            yield from self._check_edge_set(module, node, target_state)

    def _check_table_literal(self, module: ModuleInfo, node: ast.Dict) -> Iterator[Finding]:
        for key, value in zip(node.keys, node.values):
            if key is None:
                continue  # ** expansion
            source = self._member_of(key)
            if source is None and not (
                isinstance(key, ast.Constant) and key.value is None
            ):
                continue
            if not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                continue
            targets = [self._member_of(element) for element in value.elts]
            if not targets or any(t is None for t in targets):
                continue
            legal = self._edges.get(source, set())
            for target in targets:
                if target in self._members and target not in legal:
                    yield self.finding(
                        module,
                        key,
                        f"literal transition table declares "
                        f"{source or 'None'} -> {target}, not an edge of "
                        f"Figure 3",
                    )
