"""Rule ``determinism``: ban ambient time, entropy, and id() ordering.

The simulation is bit-deterministic: identical seeds must yield
identical event schedules, reports, and timelines across processes and
machines.  Three API families break that silently:

* **wall clock** — ``time.time()``, ``datetime.now()`` and friends leak
  host time into simulated state (the only clock is ``env.now``);
* **ambient entropy** — module-level ``random.*`` calls, ``os.urandom``,
  ``uuid.uuid4``, ``secrets.*`` and unseeded ``random.Random()`` draw
  from interpreter- or OS-global state instead of the named, seeded
  streams of :mod:`repro.sim.rng`;
* **id() ordering** — sorting by ``id`` keys iteration to the
  allocator, which varies run to run.

Explicitly seeded ``random.Random(seed)`` instances stay legal: the
seed pins the sequence.  ``sim/rng.py`` (the stream factory itself) is
exempt from the id-ordering clause by charter.  Tooling packages
(``lint``, ``bench``) are exempt from the wall-clock clause only: the
bench harness reads the host clock on purpose — to report advisory
wall-clock medians — and never feeds it into simulated state.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import Finding, ModuleInfo, Rule, register
from .layering import TOOLING_PACKAGES

__all__ = ["DeterminismRule"]

#: dotted call targets that read the host clock.
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: dotted call targets that draw ambient (OS / interpreter) entropy.
ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
        "random.SystemRandom",
    }
)

#: callables whose ``key=`` argument orders data.
_ORDERING_CALLS = frozenset({"sorted", "sort", "min", "max"})


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no wall-clock reads, ambient entropy, module-level random.* calls, "
        "or id()-keyed ordering (seeded random.Random stays legal)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        id_exempt = module.display_path.endswith("sim/rng.py")
        wall_exempt = module.repro_package in TOOLING_PACKAGES
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve(node.func)
            if target is not None:
                finding = self._check_target(module, node, target, wall_exempt)
                if finding is not None:
                    yield finding
            if not id_exempt:
                yield from self._check_id_ordering(module, node)

    # ------------------------------------------------------------------
    def _check_target(
        self, module: ModuleInfo, node: ast.Call, target: str, wall_exempt: bool
    ) -> Optional[Finding]:
        if target in WALL_CLOCK:
            if wall_exempt:
                return None
            return self.finding(
                module,
                node,
                f"wall-clock read {target}() — simulated time is env.now",
            )
        if target in ENTROPY:
            return self.finding(
                module,
                node,
                f"ambient entropy {target}() — draw from a named "
                f"sim.rng stream instead",
            )
        if target == "random.Random":
            if not node.args and not node.keywords:
                return self.finding(
                    module,
                    node,
                    "unseeded random.Random() seeds from the OS — pass an "
                    "explicit seed or use a sim.rng stream",
                )
            return None
        if target.startswith("random.") and target.count(".") == 1:
            return self.finding(
                module,
                node,
                f"module-level {target}() uses the interpreter-global "
                f"generator — use a named sim.rng stream",
            )
        return None

    # ------------------------------------------------------------------
    def _check_id_ordering(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in _ORDERING_CALLS:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            if self._keys_by_id(keyword.value):
                yield self.finding(
                    module,
                    node,
                    "ordering keyed by id() follows allocator addresses, "
                    "which vary run to run — key by a stable field",
                )

    @staticmethod
    def _keys_by_id(value: ast.AST) -> bool:
        if isinstance(value, ast.Name) and value.id == "id":
            return True
        if isinstance(value, ast.Lambda):
            for sub in ast.walk(value.body):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    return True
        return False
