"""Rule ``layering``: enforce the paper's import DAG at rest.

The stack must keep Figure 1/2's shape::

    sim -> hardware -> guardian -> discprocess -> core (TMF)
        -> encompass -> apps / workloads

A module may import repro packages at its own tier or below, never
above.  The measurement subsystems (``measure``, ``trace``) sit outside
the stack: runtime code reaches them only through the null-object
probes ``env.metrics`` / ``env.trace`` — a direct import is legal only
in the composition roots that *install* those probes (and the one
Histogram convergence point from PR 1).  ``repro.lint`` and
``repro.bench`` are tooling: nothing imports them, and they import the
stack freely.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..base import Finding, ModuleInfo, Rule, register

__all__ = ["LayeringRule"]

#: tier of each stacked package; higher may import lower, never the
#: reverse.  core sits above discprocess (TMF drives disc operations);
#: apps and workloads share the top tier.
RANKS = {
    "sim": 0,
    "hardware": 1,
    "guardian": 2,
    "discprocess": 3,
    "core": 4,
    "encompass": 5,
    "apps": 6,
    "workloads": 6,
}

#: packages reachable only via the env.metrics / env.trace probes.
PROBE_PACKAGES = frozenset({"measure", "trace"})

#: tool packages: they import the stack freely, nothing imports them.
TOOLING_PACKAGES = frozenset({"lint", "bench"})

#: modules allowed to import measure/trace directly: the two
#: composition roots that install the probes onto the environment
#: (cluster, config), plus the documented convergence points — the
#: Histogram of PR 1 (drivers) and the shared table renderer (sweep).
PROBE_IMPORT_ALLOWLIST = frozenset(
    {
        ("repro", "guardian", "cluster"),
        ("repro", "encompass", "config"),
        ("repro", "workloads", "drivers"),
        ("repro", "workloads", "sweep"),
    }
)


@register
class LayeringRule(Rule):
    name = "layering"
    description = (
        "imports must follow sim -> hardware -> guardian -> discprocess -> "
        "core -> encompass -> apps/workloads; measure/trace only via the "
        "env probe convention"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        own = module.repro_package
        if own is None or own in TOOLING_PACKAGES:
            return
        module_id = self._module_id(module)
        for node in ast.walk(module.tree):
            targets = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                resolved = module.resolve_import_from(node)
                if resolved is not None:
                    targets = [resolved]
            for dotted in targets:
                finding = self._check_edge(module, node, own, module_id, dotted)
                if finding is not None:
                    yield finding

    # ------------------------------------------------------------------
    @staticmethod
    def _module_id(module: ModuleInfo) -> Tuple[str, ...]:
        stem = module.path.stem
        if stem == "__init__":
            return module.package
        return module.package + (stem,)

    def _check_edge(
        self,
        module: ModuleInfo,
        node: ast.AST,
        own: str,
        module_id: Tuple[str, ...],
        dotted: str,
    ) -> Optional[Finding]:
        parts = dotted.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None
        target = parts[1]
        if target == own:
            return None
        if target in TOOLING_PACKAGES:
            return self.finding(
                module,
                node,
                f"repro.{target} is tooling — runtime code must not import it",
            )
        if target in PROBE_PACKAGES:
            if own in PROBE_PACKAGES or module_id in PROBE_IMPORT_ALLOWLIST:
                return None
            return self.finding(
                module,
                node,
                f"direct import of repro.{target} from {own} — reach it "
                f"through the env.{'metrics' if target == 'measure' else 'trace'} "
                f"null-object probe",
            )
        own_rank = RANKS.get(own)
        target_rank = RANKS.get(target)
        if target_rank is None:
            return self.finding(
                module, node, f"import of unknown repro package {dotted!r}"
            )
        if own_rank is None:
            # measure/trace themselves: leaves of the stack, may only
            # import sim.
            if own in PROBE_PACKAGES and target_rank <= RANKS["sim"]:
                return None
            return self.finding(
                module,
                node,
                f"repro.{own} must stay import-free of the stack "
                f"(imports repro.{target})",
            )
        if target_rank > own_rank:
            return self.finding(
                module,
                node,
                f"upward import: {own} (tier {own_rank}) imports "
                f"{target} (tier {target_rank}) — the DAG flows "
                f"sim -> hardware -> guardian -> discprocess -> core -> "
                f"encompass -> apps/workloads",
            )
        return None
