"""Application server classes and Pathway-style control.

"The ENCOMPASS user provides a set of application program modules, known
as application 'server' programs, which access and update data base
files ...  The structure of an application server program is simple and
single-threaded: (1) read the transaction request message; (2) perform
the data base function requested; (3) reply.  A server must be 'context
free' in the sense that it retains no memory from the servicing of one
request to the next."  (paper, §Transaction Flow and Application Control)

A :class:`ServerClass` manages N identical single-threaded server
processes; requesters address the class and are routed round-robin over
live instances.  :class:`PathwayMonitor` implements the paper's
"dynamic creation and deletion of application server processes to
ensure good response time" — it grows the class when inboxes back up
and shrinks it when they idle.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from ..discprocess import FileClient, LockTimeoutError
from ..guardian import Message, NodeOs, OsProcess
from ..sim import Tracer

__all__ = ["ServerContext", "ServerClass", "PathwayMonitor"]

# A server handler: generator function (ctx, payload) -> reply payload.
ServerHandler = Callable[["ServerContext", Any], Generator]


class ServerContext:
    """What a (context-free) server handler may use for one request.

    Data base operations are bound to the request's transid, so the
    server never manipulates transaction identity explicitly — exactly
    the paper's "the terminal's current transid becomes the current
    process transid for the application process".
    """

    def __init__(self, proc: OsProcess, client: FileClient, message: Message):
        self._proc = proc
        self._client = client
        self._message = message
        self.transid = message.transid

    # -- data base verbs (transid attached automatically) ---------------
    def read(self, file_name: str, key: Any, lock: bool = False, lock_timeout: float = 400.0) -> Generator:
        record = yield from self._client.read(
            self._proc, file_name, key, transid=self.transid, lock=lock,
            lock_timeout=lock_timeout,
        )
        return record

    def insert(self, file_name: str, record: Any) -> Generator:
        key = yield from self._client.insert(
            self._proc, file_name, record, transid=self.transid
        )
        return key

    def update(self, file_name: str, record: Any) -> Generator:
        yield from self._client.update(
            self._proc, file_name, record, transid=self.transid
        )

    def delete(self, file_name: str, key: Any) -> Generator:
        record = yield from self._client.delete(
            self._proc, file_name, key, transid=self.transid
        )
        return record

    def scan(self, file_name: str, low: Any = None, high: Any = None, limit: Optional[int] = None) -> Generator:
        rows = yield from self._client.scan(
            self._proc, file_name, low, high, limit, transid=self.transid
        )
        return rows

    def read_via_index(self, file_name: str, field: str, value: Any) -> Generator:
        records = yield from self._client.read_via_index(
            self._proc, file_name, field, value, transid=self.transid
        )
        return records

    def append_entry(self, file_name: str, record: Any) -> Generator:
        esn = yield from self._client.append_entry(
            self._proc, file_name, record, transid=self.transid
        )
        return esn

    def read_slot(self, file_name: str, record_number: int, lock: bool = False) -> Generator:
        record = yield from self._client.read_slot(
            self._proc, file_name, record_number, transid=self.transid, lock=lock
        )
        return record

    def write_slot(self, file_name: str, record_number: int, record: Any) -> Generator:
        old = yield from self._client.write_slot(
            self._proc, file_name, record_number, record, transid=self.transid
        )
        return old

    def send(self, destination: str, payload: Any, timeout: float = 5000.0) -> Generator:
        """Server-to-server request (carries the transid onward)."""
        reply = yield from self._client.filesystem.send(
            self._proc, destination, payload, transid=self.transid, timeout=timeout
        )
        return reply

    def pause(self, delay: float) -> Generator:
        yield self._proc.env.timeout(delay)


class ServerClass:
    """A named class of identical, single-threaded application servers."""

    def __init__(
        self,
        node_os: NodeOs,
        name: str,
        handler: ServerHandler,
        client: FileClient,
        instances: int = 1,
        cpus: Optional[List[int]] = None,
        max_instances: int = 16,
        tracer: Optional[Tracer] = None,
    ):
        if not name.startswith("$"):
            raise ValueError("server class names start with '$'")
        self.node_os = node_os
        self.env = node_os.env
        self.name = name
        self.handler = handler
        self.client = client
        self.cpus = cpus
        self.max_instances = max_instances
        self.tracer = tracer
        self._instances: List[OsProcess] = []
        self._rr = itertools.count()
        self.requests_served = 0
        for _ in range(instances):
            self.add_instance()

    # ------------------------------------------------------------------
    def _pick_cpu(self) -> int:
        if self.cpus:
            alive = [n for n in self.cpus if self.node_os.node.cpus[n].up]
            if alive:
                return alive[len(self._instances) % len(alive)]
        cpu = self.node_os.pick_cpu()
        if cpu is None:
            raise RuntimeError(f"{self.name}: no CPU available")
        return cpu

    def add_instance(self) -> OsProcess:
        """Dynamic server-process creation (Pathway)."""
        if len(self.live_instances()) >= self.max_instances:
            raise RuntimeError(f"{self.name}: at max_instances")
        number = len(self._instances) + 1
        instance_name = f"{self.name}-{number}"
        proc = self.node_os.spawn(instance_name, self._pick_cpu(), self._serve)
        self._instances.append(proc)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "server_created", server_class=self.name,
                instance=instance_name,
            )
        return proc

    def remove_instance(self) -> bool:
        """Dynamic server-process deletion (idle shrink)."""
        live = self.live_instances()
        if len(live) <= 1:
            return False
        victim = live[-1]
        victim.kill("pathway shrink")
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "server_deleted", server_class=self.name,
                instance=victim.name,
            )
        return True

    def live_instances(self) -> List[OsProcess]:
        self._instances = [p for p in self._instances if p.alive]
        return list(self._instances)

    def pick_instance(self) -> Optional[str]:
        """Round-robin routing over live instances."""
        live = self.live_instances()
        if not live:
            return None
        return live[next(self._rr) % len(live)].name

    def queue_depth(self) -> int:
        return sum(len(p.inbox) for p in self.live_instances())

    # ------------------------------------------------------------------
    def _serve(self, proc: OsProcess) -> Generator:
        """The single-threaded server loop: read, perform, reply."""
        while True:
            message = yield from proc.receive()
            context = ServerContext(proc, self.client, message)
            handle_start = self.env.now
            # Causal tracing: one serve span per request, on the server
            # instance's own track (single-threaded, so the loop process
            # holds at most one active context at a time).
            hub = self.env.trace
            trace_ctx = None
            if hub is not None:
                trace_ctx = hub.serve_begin(
                    message, node=self.node_os.node.name,
                    proc_name=proc.name, cpu=proc.cpu.number,
                )
            try:
                reply = yield from self.handler(context, message.payload)
            except LockTimeoutError:
                # "In case the timeout occurs, [the server] would recover
                # from a possible deadlock by replying to the SEND with an
                # error result indicating that the Screen COBOL program
                # should call RESTART-TRANSACTION."
                proc.reply(message, {"ok": False, "error": "lock_timeout"})
                continue
            # Deliberately broad: the handler is user code (the Screen
            # COBOL program's server half), and whatever it raises must
            # become a server_error reply — the server class survives and
            # the requester decides whether to restart the transaction.
            except Exception as exc:  # noqa: BLE001 - surfaced to requester
                proc.reply(message, {"ok": False, "error": "server_error",
                                     "detail": f"{type(exc).__name__}: {exc}"})
                continue
            finally:
                if hub is not None:
                    hub.serve_end(trace_ctx)
            self.requests_served += 1
            metrics = self.env.metrics
            if metrics is not None and metrics.enabled:
                metrics.inc("server.requests")
                metrics.observe("server.handle_ms", self.env.now - handle_start)
            proc.reply(message, reply if reply is not None else {"ok": True})


class PathwayMonitor:
    """Grows/shrinks server classes to track load (application control)."""

    def __init__(
        self,
        node_os: NodeOs,
        server_classes: List[ServerClass],
        interval: float = 100.0,
        grow_threshold: int = 3,
        shrink_threshold: int = 0,
        tracer: Optional[Tracer] = None,
    ):
        self.node_os = node_os
        self.env = node_os.env
        self.server_classes = server_classes
        self.interval = interval
        self.grow_threshold = grow_threshold
        self.shrink_threshold = shrink_threshold
        self.tracer = tracer
        self.grows = 0
        self.shrinks = 0
        self._idle_rounds: Dict[str, int] = {}
        self.process = self.env.process(self._monitor(), name="pathway-monitor")

    def _monitor(self) -> Generator:
        while True:
            yield self.env.timeout(self.interval)
            for server_class in self.server_classes:
                depth = server_class.queue_depth()
                live = len(server_class.live_instances())
                if depth >= self.grow_threshold * max(live, 1):
                    try:
                        server_class.add_instance()
                        self.grows += 1
                    except RuntimeError:
                        pass
                    self._idle_rounds[server_class.name] = 0
                elif depth <= self.shrink_threshold and live > 1:
                    idle = self._idle_rounds.get(server_class.name, 0) + 1
                    self._idle_rounds[server_class.name] = idle
                    if idle >= 10:  # sustained idleness before shrinking
                        if server_class.remove_instance():
                            self.shrinks += 1
                        self._idle_rounds[server_class.name] = 0
                else:
                    self._idle_rounds[server_class.name] = 0
