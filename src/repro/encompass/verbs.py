"""The Screen COBOL transaction verbs, as a Python API.

The ENCOMPASS user's interface to TMF is the verb set
BEGIN-TRANSACTION / END-TRANSACTION / ABORT-TRANSACTION /
RESTART-TRANSACTION plus SEND (paper, §Transaction Management).  Screen
programs in this reproduction are Python generator functions
``program(ctx, input_data)`` running under a TCP; ``ctx`` provides the
verbs:

* the TCP brackets each program unit in BEGIN-TRANSACTION /
  END-TRANSACTION automatically (the ``run_transaction`` loop), with
  automatic backout and restart-at-BEGIN on failure, up to the
  configurable transaction restart limit;
* ``ctx.send(server, payload)`` — the SEND verb; the terminal's current
  transid is appended automatically by the File System;
* ``ctx.abort_transaction(reason)`` — voluntary backout, no restart;
* ``ctx.restart_transaction(reason)`` — backout then re-run from
  BEGIN-TRANSACTION (the deadlock-timeout response);
* ``ctx.transaction_id`` — the TRANSACTIONID special register.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

__all__ = [
    "AbortTransaction",
    "RestartTransaction",
    "TooManyRestarts",
    "ScreenContext",
]


class AbortTransaction(Exception):
    """ABORT-TRANSACTION: back out, do not restart."""

    def __init__(self, reason: str = "abort-transaction"):
        super().__init__(reason)
        self.reason = reason


class RestartTransaction(Exception):
    """RESTART-TRANSACTION: back out and re-run from BEGIN-TRANSACTION."""

    def __init__(self, reason: str = "restart-transaction"):
        super().__init__(reason)
        self.reason = reason


class TooManyRestarts(Exception):
    """The transaction restart limit was exceeded."""

    def __init__(self, terminal: str, attempts: int):
        super().__init__(f"terminal {terminal}: {attempts} restarts exhausted")
        self.terminal = terminal
        self.attempts = attempts


class ScreenContext:
    """The verb surface a screen program sees (one terminal, one unit)."""

    def __init__(self, tcp: Any, proc: Any, terminal_id: str):
        self._tcp = tcp
        self._proc = proc
        self.terminal_id = terminal_id
        self.transaction_id = None   # the TRANSACTIONID special register
        self.attempt = 0             # restart count of the current unit
        self.display_lines: List[str] = []

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def send(self, server: str, payload: Any, timeout: Optional[float] = None) -> Generator:
        """SEND a request message to an application server.

        ``server`` may be a server-class name (round-robin over its
        instances) or a plain process name, local or ``\\NODE.$NAME``.
        The terminal's current transid is appended automatically.
        """
        destination = self._tcp.resolve_server(server)
        reply = yield from self._tcp.filesystem.send(
            self._proc,
            destination,
            payload,
            transid=self.transaction_id,
            timeout=timeout if timeout is not None else self._tcp.send_timeout,
        )
        return reply

    def send_ok(self, server: str, payload: Any, timeout: Optional[float] = None) -> Generator:
        """SEND and enforce success: a ``lock_timeout`` error reply runs
        RESTART-TRANSACTION (the paper's deadlock recovery pattern); any
        other error reply aborts the transaction."""
        reply = yield from self.send(server, payload, timeout)
        if isinstance(reply, dict) and not reply.get("ok", True):
            if reply.get("error") == "lock_timeout":
                self.restart_transaction("server reported lock timeout")
            self.abort_transaction(
                f"server error: {reply.get('error')} {reply.get('detail', '')}"
            )
        return reply

    def abort_transaction(self, reason: str = "abort-transaction") -> None:
        raise AbortTransaction(reason)

    def restart_transaction(self, reason: str = "restart-transaction") -> None:
        raise RestartTransaction(reason)

    def display(self, text: str) -> None:
        """Write a line to the terminal screen (collected in the reply)."""
        self.display_lines.append(text)

    def pause(self, delay: float) -> Generator:
        """Think-time / deliberate delay inside the unit."""
        yield self._tcp.env.timeout(delay)
