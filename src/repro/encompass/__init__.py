"""The ENCOMPASS application layer.

Terminal Control Processes interpreting screen programs with the
BEGIN/END/ABORT/RESTART-TRANSACTION verb set, context-free application
server classes with Pathway-style dynamic control, and the declarative
:class:`SystemBuilder` that assembles complete configurations (Figure 2).
"""

from .config import EncompassSystem, SystemBuilder
from .enform import EnformError, Query, QueryResult, compile_query
from .scobol import ScobolError, ScobolProgram, compile_program
from .server import PathwayMonitor, ServerClass, ServerContext
from .tcp import ScreenField, TerminalControlProcess, TerminalInput
from .verbs import (
    AbortTransaction,
    RestartTransaction,
    ScreenContext,
    TooManyRestarts,
)

__all__ = [
    "AbortTransaction",
    "EncompassSystem",
    "EnformError",
    "Query",
    "QueryResult",
    "compile_query",
    "PathwayMonitor",
    "RestartTransaction",
    "ScobolError",
    "ScobolProgram",
    "ScreenContext",
    "ScreenField",
    "compile_program",
    "ServerClass",
    "ServerContext",
    "SystemBuilder",
    "TerminalControlProcess",
    "TerminalInput",
    "TooManyRestarts",
]
