"""Declarative system configuration: assemble a full ENCOMPASS cluster.

:class:`SystemBuilder` wires together everything the lower layers
provide — nodes, mirrored volumes, DISCPROCESS/AUDITPROCESS pairs, TMF,
server classes, TCPs, terminals — into an :class:`EncompassSystem`
ready to process transactions, the programmatic equivalent of Figure 2's
"typical ENCOMPASS configuration".

Typical use (see ``examples/quickstart.py``)::

    builder = SystemBuilder(seed=7)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    builder.define_file(FileSchema(...))
    builder.add_server_class("alpha", "$bank", handler, instances=2)
    tcp = builder.add_tcp("alpha", "$tcp1", cpus=(2, 3))
    builder.add_program("alpha", "$tcp1", "debit-credit", program_fn)
    builder.add_terminal("alpha", "$tcp1", "T1", "debit-credit")
    system = builder.build()
    reply = system.drive("alpha", "$tcp1", "T1", {"amount": 10})
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..core import (
    AuditProcess,
    AuditTrail,
    Tmfcom,
    TmfConfig,
    TmfNode,
    legal_transitions_by_name,
)
from ..discprocess import DataDictionary, DiscProcess, FileClient, FileSchema
from ..discprocess.boxcar import resolve_boxcar
from ..guardian import Cluster, NodeOs
from ..hardware import Latencies
from ..measure import NULL_REGISTRY, MetricsRegistry, Sampler
from ..measure.report import build_report, render_report, to_json, write_report
from ..trace import TraceCollector, Watchdog, WatchdogConfig
from ..trace.export import timeline_json as _timeline_json
from ..trace.export import write_timeline as _write_timeline
from .server import PathwayMonitor, ServerClass, ServerHandler
from .tcp import TerminalControlProcess, TerminalInput
from .verbs import ScreenContext

__all__ = ["SystemBuilder", "EncompassSystem"]


class EncompassSystem:
    """A fully-wired simulated ENCOMPASS cluster."""

    def __init__(self, cluster: Cluster, dictionary: DataDictionary):
        self.cluster = cluster
        self.dictionary = dictionary
        self.tmf: Dict[str, TmfNode] = {}
        self.clients: Dict[str, FileClient] = {}
        self.audit_processes: Dict[str, AuditProcess] = {}
        self.disc_processes: Dict[Tuple[str, str], DiscProcess] = {}
        self.server_classes: Dict[Tuple[str, str], ServerClass] = {}
        self.tcps: Dict[Tuple[str, str], TerminalControlProcess] = {}
        self.pathway_monitors: Dict[str, PathwayMonitor] = {}
        self.sampler: Optional[Sampler] = None
        self.trace_collector: Optional[TraceCollector] = None
        self.watchdog: Optional[Watchdog] = None
        self._driver_seq = 0

    # ------------------------------------------------------------------
    @property
    def env(self):
        return self.cluster.env

    @property
    def tracer(self):
        return self.cluster.tracer

    @property
    def metrics(self):
        """The XRAY registry (the no-op null registry when unmeasured)."""
        return self.cluster.metrics if self.cluster.metrics is not None else NULL_REGISTRY

    def node_os(self, node: str) -> NodeOs:
        return self.cluster.os(node)

    def client(self, node: str) -> FileClient:
        return self.clients[node]

    def run(self, until: Any = None) -> Any:
        return self.cluster.run(until)

    # ------------------------------------------------------------------
    # Terminal driving
    # ------------------------------------------------------------------
    def terminal_request(
        self,
        proc: Any,
        node: str,
        tcp_name: str,
        terminal_id: str,
        data: Any,
        timeout: float = 120_000.0,
    ) -> Generator:
        """Send one input screen to a terminal's TCP; returns the reply.

        (Generator helper for use inside simulation processes.)
        """
        fs = self.cluster.fs(node)
        reply = yield from fs.send(
            proc, tcp_name, TerminalInput(terminal_id, data), timeout=timeout
        )
        return reply

    def drive(
        self,
        node: str,
        tcp_name: str,
        terminal_id: str,
        data: Any,
        cpu: Optional[int] = None,
    ) -> Any:
        """Run one terminal interaction to completion (blocking helper)."""
        node_os = self.cluster.os(node)
        self._driver_seq += 1

        def body(proc):
            reply = yield from self.terminal_request(
                proc, node, tcp_name, terminal_id, data
            )
            return reply

        chosen_cpu = cpu if cpu is not None else node_os.alive_cpu_numbers()[0]
        proc = node_os.spawn(
            f"$drv{self._driver_seq}", chosen_cpu, body, register=False
        )
        return self.cluster.run(proc.sim_process)

    def spawn(self, node: str, name: str, body: Callable, cpu: int = 0):
        """Spawn an unregistered utility process on a node."""
        return self.cluster.os(node).spawn(name, cpu, body, register=False)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def transaction_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            node: {"commits": tmf.commits, "aborts": tmf.aborts}
            for node, tmf in self.tmf.items()
        }

    # ------------------------------------------------------------------
    # XRAY (measurement subsystem)
    # ------------------------------------------------------------------
    def xray_report(self) -> Dict[str, Any]:
        """The structured XRAY run report (works for unmeasured runs too,
        with the metric sections empty)."""
        return build_report(self)

    def xray_json(self) -> str:
        """The run report as canonical (deterministic) JSON."""
        return to_json(self.xray_report())

    def xray_screen(self) -> str:
        """The human-readable XRAY screen."""
        return render_report(self.xray_report())

    def write_xray(self, path: Any) -> Dict[str, Any]:
        """Write the JSON run report to ``path``; returns the report."""
        return write_report(self, path)

    # ------------------------------------------------------------------
    # TRACE (causal tracing subsystem)
    # ------------------------------------------------------------------
    def _require_collector(self) -> TraceCollector:
        if self.trace_collector is None:
            raise RuntimeError(
                "tracing is disabled; build with SystemBuilder(trace=True)"
            )
        return self.trace_collector

    def trace_of(self, transid: Any):
        """The assembled causal trace tree of one transaction."""
        return self._require_collector().trace_of(transid)

    def timeline_json(self, transids: Optional[List[Any]] = None) -> str:
        """The Chrome ``trace_event`` timeline as canonical JSON."""
        return _timeline_json(self._require_collector(), transids)

    def write_timeline(self, path: Any,
                       transids: Optional[List[Any]] = None) -> str:
        """Write the Chrome ``trace_event`` timeline to ``path``."""
        return _write_timeline(self._require_collector(), path, transids)

    def trace_screen(self, transid: Any) -> str:
        """The transaction flight-recorder screen (plain text)."""
        return self.trace_of(transid).render()

    def tmfcom(self, node: str) -> Tmfcom:
        """A TMFCOM console over ``node``'s TMF, trace-aware when the
        run is traced (``INFO TRANSACTION, TRACE``)."""
        return Tmfcom(self.tmf[node], collector=self.trace_collector)


class SystemBuilder:
    """Builds an :class:`EncompassSystem` step by declarative step."""

    def __init__(
        self,
        seed: int = 0,
        latencies: Optional[Latencies] = None,
        keep_trace: bool = True,
        tmf_config: Optional[TmfConfig] = None,
        auto_connect: bool = True,
        measure: bool = False,
        sample_interval: float = 100.0,
        trace: bool = False,
        watchdog: Any = None,
        boxcar: Any = True,
    ):
        # ``boxcar`` accepts True (default policy), False (legacy
        # synchronous per-operation audit forwarding) or a
        # :class:`~repro.discprocess.BoxcarPolicy`; applied to every
        # volume added through :meth:`add_volume`.
        self.boxcar = resolve_boxcar(boxcar)
        metrics = MetricsRegistry() if measure else None
        self.cluster = Cluster(
            seed=seed, latencies=latencies, keep_trace=keep_trace,
            metrics=metrics, trace=trace,
        )
        self.dictionary = DataDictionary()
        self.system = EncompassSystem(self.cluster, self.dictionary)
        if trace:
            # Subscribe before any construction emits, so the collector
            # sees the whole record stream from time zero.
            self.system.trace_collector = TraceCollector(
                self.cluster.tracer, self.cluster.trace_hub
            )
        # ``watchdog`` accepts True (default thresholds) or a
        # :class:`WatchdogConfig`; installed in :meth:`build`.
        self.watchdog_config: Optional[WatchdogConfig] = None
        if watchdog:
            self.watchdog_config = (
                watchdog if isinstance(watchdog, WatchdogConfig)
                else WatchdogConfig()
            )
        self.tmf_config = tmf_config
        self.auto_connect = auto_connect
        self.sample_interval = sample_interval
        self._built = False

    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        cpus: int = 4,
        tmf_cpus: Optional[Tuple[int, int]] = None,
        audit_volume_name: str = "$audvol",
        audit_process_name: str = "$aud",
    ) -> NodeOs:
        """A node with its audit volume, AUDITPROCESS and TMF instance."""
        node_os = self.cluster.add_node(name, cpu_count=cpus)
        if tmf_cpus is None:
            tmf_cpus = (cpus - 2, cpus - 1) if cpus >= 2 else (0, 1)
        audit_volume = node_os.node.add_volume(audit_volume_name, *tmf_cpus)
        trail = AuditTrail(audit_volume)
        audit_process = AuditProcess(
            node_os, audit_process_name, tmf_cpus[0], tmf_cpus[1], trail,
            self.cluster.tracer,
        )
        tmf = TmfNode(
            node_os,
            self.cluster.fs(name),
            monitor_volume=audit_volume,
            tmp_cpus=tmf_cpus,
            config=self.tmf_config,
            tracer=self.cluster.tracer,
        )
        tmf.register_audit_process(audit_process_name, audit_process)
        self.system.tmf[name] = tmf
        self.system.audit_processes[name] = audit_process
        self.system.clients[name] = FileClient(self.cluster.fs(name), self.dictionary)
        return node_os

    def add_audit_process(
        self,
        node: str,
        name: str,
        cpus: Tuple[int, int],
        volume_name: Optional[str] = None,
    ) -> AuditProcess:
        """An additional AUDITPROCESS pair with its own trail volume.

        "All audited discs on a given controller share an AUDITPROCESS
        and an audit trail.  Multiple controllers may be configured to
        use the same or different AUDITPROCESSes and audit trails."
        Pass the returned process's name as ``audit_process_name`` to
        :meth:`add_volume` to attach data volumes to it.
        """
        node_os = self.cluster.os(node)
        volume = node_os.node.add_volume(volume_name or f"{name}vol", *cpus)
        trail = AuditTrail(volume)
        audit_process = AuditProcess(
            node_os, name, cpus[0], cpus[1], trail, self.cluster.tracer
        )
        self.system.tmf[node].register_audit_process(name, audit_process)
        self.system.audit_processes[f"{node}:{name}"] = audit_process
        return audit_process

    def add_volume(
        self,
        node: str,
        name: str,
        cpus: Tuple[int, int] = (0, 1),
        audited: bool = True,
        cache_capacity: int = 256,
        audit_process_name: str = "$aud",
    ) -> DiscProcess:
        node_os = self.cluster.os(node)
        volume = node_os.node.add_volume(name, *cpus)
        disc_process = DiscProcess(
            node_os,
            name,
            cpus[0],
            cpus[1],
            volume,
            self.cluster.fs(node),
            audit_process=audit_process_name if audited else None,
            tmf_registry=self.system.tmf[node],
            cache_capacity=cache_capacity,
            tracer=self.cluster.tracer,
            boxcar=self.boxcar,
        )
        self.system.tmf[node].register_disc_process(name, disc_process)
        self.system.disc_processes[(node, name)] = disc_process
        return disc_process

    def define_file(self, schema: FileSchema) -> FileSchema:
        return self.dictionary.define(schema)

    def add_server_class(
        self,
        node: str,
        name: str,
        handler: ServerHandler,
        instances: int = 1,
        cpus: Optional[List[int]] = None,
        max_instances: int = 16,
    ) -> ServerClass:
        server_class = ServerClass(
            self.cluster.os(node),
            name,
            handler,
            self.system.clients[node],
            instances=instances,
            cpus=cpus,
            max_instances=max_instances,
            tracer=self.cluster.tracer,
        )
        self.system.server_classes[(node, name)] = server_class
        for (tcp_node, _), tcp in self.system.tcps.items():
            if tcp_node == node:
                tcp.add_server_class(server_class)
        return server_class

    def add_pathway_monitor(self, node: str, interval: float = 100.0) -> PathwayMonitor:
        classes = [
            sc for (sc_node, _), sc in self.system.server_classes.items()
            if sc_node == node
        ]
        monitor = PathwayMonitor(
            self.cluster.os(node), classes, interval=interval,
            tracer=self.cluster.tracer,
        )
        self.system.pathway_monitors[node] = monitor
        return monitor

    def add_tcp(
        self,
        node: str,
        name: str,
        cpus: Tuple[int, int] = (0, 1),
        restart_limit: int = 5,
    ) -> TerminalControlProcess:
        tcp = TerminalControlProcess(
            self.cluster.os(node),
            name,
            cpus[0],
            cpus[1],
            self.cluster.fs(node),
            self.system.tmf[node],
            restart_limit=restart_limit,
            tracer=self.cluster.tracer,
        )
        for (sc_node, _), server_class in self.system.server_classes.items():
            if sc_node == node:
                tcp.add_server_class(server_class)
        self.system.tcps[(node, name)] = tcp
        return tcp

    def add_program(
        self, node: str, tcp_name: str, program_name: str,
        program: Callable[[ScreenContext, Any], Generator],
        screen: Optional[Tuple] = None,
    ) -> None:
        self.system.tcps[(node, tcp_name)].add_program(
            program_name, program, screen=screen
        )

    def add_terminal(
        self, node: str, tcp_name: str, terminal_id: str, program_name: str
    ) -> None:
        self.system.tcps[(node, tcp_name)].add_terminal(terminal_id, program_name)

    def connect(self, a: str, b: str, latency: Optional[float] = None) -> None:
        self.cluster.network.connect(a, b, latency)

    # ------------------------------------------------------------------
    def build(self) -> EncompassSystem:
        """Connect the network, run DDL, return the live system."""
        if self._built:
            raise RuntimeError("build() already called")
        self._built = True
        if self.auto_connect and not self.cluster.network.lines:
            if len(self.cluster.oses) > 1:
                self.cluster.connect_all()
        ddl_node = self.cluster.node_names[0]
        client = self.system.clients[ddl_node]
        dictionary = self.dictionary

        def ddl(proc):
            for file_name in dictionary.files():
                yield from client.create_file(proc, dictionary.schema(file_name))
            return True

        node_os = self.cluster.os(ddl_node)
        proc = node_os.spawn("$ddl", 0, ddl, register=False)
        self.cluster.run(proc.sim_process)
        if self.cluster.metrics is not None:
            # Utilization sampling only on measured runs: the sampler is
            # read-only with respect to simulated state, so the event
            # history replays identically, but its events would still
            # keep a run-to-exhaustion env.run() alive longer.
            self.system.sampler = Sampler(
                self.system, interval=self.sample_interval
            )
            self.system.sampler.install()
        if self.watchdog_config is not None:
            # The watchdog is read-only like the sampler: installed only
            # when asked for, it replays the same event outcomes while
            # adding its own periodic check events.
            self.system.watchdog = Watchdog(
                self.system, self.watchdog_config,
                legal_transitions=legal_transitions_by_name(),
            )
            self.system.watchdog.install()
        return self.system
