"""The Terminal Control Process (TCP).

"A TCP controls up to 32 terminals ... The user's Screen COBOL program
is interpreted by the TCP to perform screen sequencing, data mapping,
and field validation for a single terminal ... TCP's are configured as
process-pairs.  As a result ... the terminal user has continuous access
to the executing Screen COBOL program despite module failure."
(paper, §Terminal Management)

Here a *screen program* is a Python generator function
``program(ctx, input_data)`` (see :mod:`repro.encompass.verbs`), and one
terminal input runs one *logical transaction unit*:

* the TCP brackets the unit in BEGIN-TRANSACTION / END-TRANSACTION;
* any failure except an explicit ABORT-TRANSACTION backs the unit out
  and re-runs it from BEGIN-TRANSACTION, up to the configurable
  *transaction restart limit* — with the input screen data already
  checkpointed, so the restart "may not require re-entering the input
  screen(s)";
* a TCP primary failure kills in-flight units; TMF automatically backs
  out their transactions (BEGIN ran in the failed CPU), and the File
  System's retry re-runs the unit at the new primary, where completed
  units answer from the checkpointed reply instead of re-executing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..core import TmfNode, TransactionAborted
from ..guardian import (
    ConcurrentPair,
    FileSystem,
    FileSystemError,
    Message,
    NodeOs,
    OsProcess,
)
from ..sim import Tracer
from .server import ServerClass
from .verbs import (
    AbortTransaction,
    RestartTransaction,
    ScreenContext,
)

__all__ = ["ScreenField", "TerminalInput", "TerminalControlProcess"]

ScreenProgram = Callable[[ScreenContext, Any], Generator]


@dataclass(frozen=True)
class TerminalInput:
    """One filled-in input screen arriving from a terminal."""

    terminal_id: str
    data: Any


@dataclass(frozen=True)
class ScreenField:
    """One validated field of an input screen.

    The TCP performs "screen formatting, data validation ... and field
    validation for a single terminal" (§Terminal Management): an input
    failing validation is rejected at the TCP, before any transaction
    begins or any server is bothered.
    """

    name: str
    kind: str = "str"                  # str | int
    required: bool = True
    minimum: Optional[int] = None      # for int fields
    maximum: Optional[int] = None
    choices: Optional[Tuple[Any, ...]] = None
    max_length: Optional[int] = None   # for str fields

    def validate(self, data: Dict[str, Any]) -> Optional[str]:
        """None if valid, else a field-error message."""
        if self.name not in data or data[self.name] is None:
            return f"{self.name}: required" if self.required else None
        value = data[self.name]
        if self.kind == "int":
            if not isinstance(value, int) or isinstance(value, bool):
                return f"{self.name}: must be numeric"
            if self.minimum is not None and value < self.minimum:
                return f"{self.name}: below minimum {self.minimum}"
            if self.maximum is not None and value > self.maximum:
                return f"{self.name}: above maximum {self.maximum}"
        elif self.kind == "str":
            if not isinstance(value, str):
                return f"{self.name}: must be text"
            if self.max_length is not None and len(value) > self.max_length:
                return f"{self.name}: longer than {self.max_length}"
        if self.choices is not None and value not in self.choices:
            return f"{self.name}: not one of {self.choices}"
        return None


class TerminalControlProcess(ConcurrentPair):
    """A fault-tolerant TCP pair running screen programs."""

    MAX_TERMINALS = 32

    def __init__(
        self,
        node_os: NodeOs,
        name: str,
        primary_cpu: int,
        backup_cpu: int,
        filesystem: FileSystem,
        tmf: TmfNode,
        programs: Optional[Dict[str, ScreenProgram]] = None,
        server_classes: Optional[Dict[str, ServerClass]] = None,
        restart_limit: int = 5,
        restart_delay: float = 20.0,
        send_timeout: float = 30_000.0,
        tracer: Optional[Tracer] = None,
    ):
        self.filesystem = filesystem
        self.tmf = tmf
        self.programs: Dict[str, ScreenProgram] = dict(programs or {})
        self.screens: Dict[str, Tuple[ScreenField, ...]] = {}
        self.server_classes: Dict[str, ServerClass] = dict(server_classes or {})
        self.terminals: Dict[str, str] = {}
        self.restart_limit = restart_limit
        self.restart_delay = restart_delay
        self.send_timeout = send_timeout
        self.units_committed = 0
        self.units_aborted = 0
        self.restarts_total = 0
        super().__init__(node_os, name, primary_cpu, backup_cpu, tracer)
        self._apply_state_defaults()
        self._completed_order: List[int] = []

    def state_defaults(self) -> Dict[str, Any]:
        return {"completed": {}, "inputs": {}, "pending_commit": {}}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_program(
        self,
        name: str,
        program: ScreenProgram,
        screen: Optional[Tuple[ScreenField, ...]] = None,
    ) -> None:
        self.programs[name] = program
        if screen is not None:
            self.screens[name] = tuple(screen)

    def add_server_class(self, server_class: ServerClass) -> None:
        self.server_classes[server_class.name] = server_class

    def add_terminal(self, terminal_id: str, program_name: str) -> None:
        """Attach a terminal running ``program_name``."""
        if len(self.terminals) >= self.MAX_TERMINALS:
            raise RuntimeError(f"{self.name}: a TCP controls up to 32 terminals")
        if program_name not in self.programs:
            raise KeyError(f"{self.name}: unknown screen program {program_name!r}")
        self.terminals[terminal_id] = program_name

    def resolve_server(self, server: str) -> str:
        """Class name -> a live instance; plain names pass through."""
        server_class = self.server_classes.get(server)
        if server_class is None:
            return server
        instance = server_class.pick_instance()
        if instance is None:
            return server  # no live instance: the send will surface it
        return instance

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def serve_request(self, proc: OsProcess, message: Message) -> Generator:
        payload = message.payload
        if not isinstance(payload, TerminalInput):
            proc.reply(message, {"ok": False, "error": "bad_request"})
            return
        recorded = self.state["completed"].get(message.msg_id)
        if recorded is not None:
            # The unit already committed before the old primary died; do
            # not run the transaction twice.
            proc.reply(message, recorded)
            return
        if payload.terminal_id not in self.terminals:
            proc.reply(message, {"ok": False, "error": "unknown_terminal"})
            return
        # Field validation happens at the TCP, before BEGIN-TRANSACTION.
        screen = self.screens.get(self.terminals[payload.terminal_id])
        if screen is not None:
            errors = [
                error
                for field in screen
                for error in [field.validate(payload.data or {})]
                if error is not None
            ]
            if errors:
                proc.reply(
                    message,
                    {"ok": False, "error": "field_errors", "fields": errors},
                )
                return
        # A retried unit whose predecessor died between END-TRANSACTION
        # and the completed-reply checkpoint: resolve the in-doubt
        # transid with the TMP before deciding to re-run.
        pending = self.state["pending_commit"].get(message.msg_id)
        if pending is not None:
            resolved = yield from self._resolve_pending(proc, message, pending)
            if resolved is not None:
                proc.reply(message, resolved)
                return
        # Checkpoint the input screen data: a takeover restart of this
        # unit will not require re-entering the screen.
        yield from self.checkpoint_update(
            "inputs", updates={message.msg_id: payload}
        )
        unit_start = self.env.now
        result = yield from self._run_unit(proc, message, payload)
        metrics = self.env.metrics
        if metrics is not None and metrics.enabled:
            metrics.observe("unit.latency_ms", self.env.now - unit_start)
            outcome = "committed" if result.get("ok") else "aborted"
            metrics.inc(f"unit.{outcome}")
            restarts = result.get("attempts", 1) - 1
            if restarts > 0:
                metrics.inc("unit.restarts", restarts)
        yield from self.checkpoint_update(
            "completed", updates={message.msg_id: result}
        )
        yield from self.checkpoint_update(
            "inputs", removals=[message.msg_id], _charge=False
        )
        yield from self.checkpoint_update(
            "pending_commit", removals=[message.msg_id], _charge=False
        )
        self._remember(message.msg_id)
        proc.reply(message, result)

    def _resolve_pending(self, proc: OsProcess, message: Message, pending: Any) -> Generator:
        """Settle an in-doubt unit left by a dead primary.

        Asks the TMP to abort the old transid: the reply carries the
        authoritative disposition — ``committed`` means the old unit's
        END-TRANSACTION had already completed its commit point, so the
        checkpointed reply is returned and the unit must NOT re-run.
        """
        from repro.core import TmpAbort

        old_transid, ready_reply = pending
        try:
            reply = yield from self.filesystem.send(
                proc,
                self.tmf.tmp_name,
                TmpAbort(old_transid, "TCP takeover: resolving in-doubt unit"),
                timeout=60_000.0,
            )
        except FileSystemError:
            return None  # cannot resolve; re-run (transid will settle first)
        if reply.get("disposition") == "committed":
            yield from self.checkpoint_update(
                "completed", updates={message.msg_id: ready_reply}
            )
            yield from self.checkpoint_update(
                "pending_commit", removals=[message.msg_id], _charge=False
            )
            self._remember(message.msg_id)
            return ready_reply
        yield from self.checkpoint_update(
            "pending_commit", removals=[message.msg_id]
        )
        return None

    def _run_unit(self, proc: OsProcess, message: Message, payload: TerminalInput) -> Generator:
        """Run one logical transaction with automatic backout/restart."""
        program = self.programs[self.terminals[payload.terminal_id]]
        last_error = ""
        attempts = 0
        for attempt in range(self.restart_limit + 1):
            attempts = attempt + 1
            context = ScreenContext(self, proc, payload.terminal_id)
            context.attempt = attempt
            transid = yield from self.tmf.begin(proc)
            context.transaction_id = transid
            try:
                result = yield from program(context, payload.data)
                reply = {
                    "ok": True,
                    "result": result,
                    "display": context.display_lines,
                    "attempts": attempts,
                    "transid": str(transid),
                }
                # Intent-to-commit checkpoint: if this primary dies after
                # the commit point but before recording completion, the
                # new primary resolves via the transid instead of
                # re-running the unit.
                yield from self.checkpoint_update(
                    "pending_commit", updates={message.msg_id: (transid, reply)}
                )
                yield from self.tmf.end(proc, transid)
                self.units_committed += 1
                return reply
            except AbortTransaction as exc:
                # Voluntary abort: back out, no automatic restart.
                yield from self.tmf.abort(proc, transid, exc.reason)
                self.units_aborted += 1
                return {
                    "ok": False,
                    "error": "aborted",
                    "reason": exc.reason,
                    "display": context.display_lines,
                    "attempts": attempts,
                }
            except RestartTransaction as exc:
                yield from self.tmf.abort(proc, transid, exc.reason)
                last_error = exc.reason
            except TransactionAborted as exc:
                # END-TRANSACTION rejected: the system aborted it
                # (network partition, server CPU failure, ...).
                last_error = exc.reason
            except FileSystemError as exc:
                yield from self.tmf.abort(proc, transid, str(exc))
                last_error = str(exc)
            self.restarts_total += 1
            self._trace(
                "transaction_restarted",
                terminal=payload.terminal_id,
                attempt=attempt,
                reason=last_error,
            )
            yield self.env.timeout(self._backoff(payload.terminal_id, attempt))
        self.units_aborted += 1
        return {
            "ok": False,
            "error": "restart_limit",
            "reason": last_error,
            "attempts": attempts,
        }

    def _backoff(self, terminal_id: str, attempt: int) -> float:
        """Deterministic, terminal-staggered restart delay.

        Symmetric restarts are what turn one deadlock into an endless
        livelock; each terminal backs off a different amount.
        """
        stagger = (zlib.crc32(terminal_id.encode()) % 97) / 97.0
        return self.restart_delay * (attempt + 1) * (0.5 + stagger)

    def _remember(self, msg_id: int) -> None:
        self._completed_order.append(msg_id)
        while len(self._completed_order) > 1024:
            old = self._completed_order.pop(0)
            self.state["completed"].pop(old, None)
            self.backup_state.get("completed", {}).pop(old, None)

    @property
    def pending_inputs(self) -> int:
        return len(self.state["inputs"])
