"""A non-procedural relational query/report language (ENFORM's role).

The ENCOMPASS data-base management component includes "a relational
data base manager, and a high-level non-procedural relational
query/report language" (paper, §Data Base Management).  This module
provides that last piece for the reproduction: a small declarative
language compiled to an access plan and executed through the record
interface (browse access — queries take no locks, per the paper's
treatment of reads).

Language (one clause per line, order free except FROM first):

    FROM <file>
    SELECT <field> [, <field> ...] | *
    WHERE <field> <op> <literal> [AND <field> <op> <literal> ...]
    ORDER BY <field> [DESC]
    TOTAL <field> [, <field> ...]        -- sum aggregates
    COUNT                                 -- row count aggregate
    FIRST <n>                             -- limit

Operators: = <> < <= > >=.  Literals: integers or "strings".

The compiler is an honest little optimizer: an equality on an alternate
key uses the index; a conjunction constraining a prefix of the primary
key becomes a B-tree range scan; anything else is a full scan.  The
chosen plan is reported in the result so callers (and tests) can see
which access path ran.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..discprocess import FileClient, KEY_SEQUENCED
from ..discprocess.records import FileSchema

__all__ = ["EnformError", "Query", "QueryResult", "compile_query"]


class EnformError(Exception):
    """Parse or execution error in a query."""


_OPERATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_CONDITION = re.compile(
    r"""^\s*([A-Za-z_]\w*)\s*(<=|>=|<>|=|<|>)\s*
        ("(?:[^"\\]|\\.)*"|-?\d+)\s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class Condition:
    field: str
    operator: str
    value: Any

    def matches(self, record: Dict[str, Any]) -> bool:
        if self.field not in record:
            return False
        try:
            return _OPERATORS[self.operator](record[self.field], self.value)
        except TypeError:
            return False


@dataclass
class Query:
    """A compiled query: clauses plus the chosen access plan."""

    file: str
    select: Optional[List[str]]           # None = *
    conditions: List[Condition]
    order_by: Optional[str]
    order_desc: bool
    totals: List[str]
    count: bool
    first: Optional[int]
    plan: str = "full-scan"
    plan_detail: str = ""
    plan_args: Tuple[Any, ...] = ()

    # ------------------------------------------------------------------
    def execute(self, proc: Any, client: FileClient) -> Generator:
        """Run the query; returns a :class:`QueryResult`.

        (Generator helper — ``result = yield from query.execute(...)``.)
        """
        schema = client.dictionary.schema(self.file)
        rows = yield from self._fetch(proc, client, schema)
        rows = [record for record in rows
                if all(condition.matches(record) for condition in self.conditions)]
        if self.order_by is not None:
            missing = [r for r in rows if self.order_by not in r]
            if missing:
                raise EnformError(f"ORDER BY field {self.order_by!r} absent")
            rows.sort(key=lambda r: r[self.order_by], reverse=self.order_desc)
        if self.first is not None:
            rows = rows[: self.first]
        totals = {}
        for name in self.totals:
            try:
                totals[name] = sum(record[name] for record in rows)
            except (KeyError, TypeError) as exc:
                raise EnformError(f"TOTAL {name}: {exc}") from exc
        projected = rows
        if self.select is not None:
            projected = []
            for record in rows:
                try:
                    projected.append({name: record[name] for name in self.select})
                except KeyError as exc:
                    raise EnformError(f"SELECT field {exc} absent") from exc
        return QueryResult(
            rows=projected,
            totals=totals,
            count=len(rows) if self.count else None,
            plan=self.plan,
            plan_detail=self.plan_detail,
        )

    def _fetch(self, proc: Any, client: FileClient, schema: FileSchema) -> Generator:
        """Run the access plan chosen at compile time."""
        if self.plan == "index-lookup":
            field_name, value = self.plan_args
            records = yield from client.read_via_index(
                proc, self.file, field_name, value
            )
            return records
        if self.plan == "key-range":
            low, high = self.plan_args
            rows = yield from client.scan(proc, self.file, low=low, high=high)
            return [record for _key, record in rows]
        if schema.organization == KEY_SEQUENCED:
            rows = yield from client.scan(proc, self.file)
            return [record for _key, record in rows]
        if schema.organization == "entry-sequenced":
            rows = yield from client.scan_entries(proc, self.file)
            return [record for _esn, record in rows]
        raise EnformError(
            f"{self.file}: relative files are not reportable (no key order)"
        )


@dataclass
class QueryResult:
    rows: List[Dict[str, Any]]
    totals: Dict[str, Any]
    count: Optional[int]
    plan: str
    plan_detail: str

    def render(self) -> str:
        """A fixed-width report (the 'report' half of query/report)."""
        lines: List[str] = []
        if self.rows:
            headers = list(self.rows[0].keys())
            widths = [
                max(len(h), *(len(str(r.get(h, ""))) for r in self.rows))
                for h in headers
            ]
            lines.append("  ".join(h.upper().ljust(w) for h, w in zip(headers, widths)))
            lines.append("  ".join("-" * w for w in widths))
            for record in self.rows:
                lines.append(
                    "  ".join(str(record.get(h, "")).ljust(w)
                              for h, w in zip(headers, widths))
                )
        for name, value in self.totals.items():
            lines.append(f"TOTAL {name.upper()}: {value}")
        if self.count is not None:
            lines.append(f"COUNT: {self.count}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
def _parse_literal(text: str) -> Any:
    if text.startswith('"'):
        return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    return int(text)


def compile_query(source: str, dictionary: Any) -> Query:
    """Parse and plan a query against the data dictionary."""
    clauses: Dict[str, str] = {}
    for raw_line in source.strip().splitlines():
        line = raw_line.strip().rstrip(";")
        if not line or line.startswith("--"):
            continue
        upper = line.upper()
        for keyword in ("FROM", "SELECT", "WHERE", "ORDER BY", "TOTAL",
                        "COUNT", "FIRST"):
            if upper.startswith(keyword):
                if keyword in clauses:
                    raise EnformError(f"duplicate {keyword} clause")
                clauses[keyword] = line[len(keyword):].strip()
                break
        else:
            raise EnformError(f"unknown clause: {line!r}")
    if "FROM" not in clauses:
        raise EnformError("a query needs a FROM clause")
    file_name = clauses["FROM"]
    schema = dictionary.schema(file_name)

    select: Optional[List[str]] = None
    if "SELECT" in clauses and clauses["SELECT"] != "*":
        select = [part.strip() for part in clauses["SELECT"].split(",")]
        if not all(select):
            raise EnformError("empty field in SELECT")

    conditions: List[Condition] = []
    if "WHERE" in clauses:
        for part in re.split(r"\bAND\b", clauses["WHERE"], flags=re.IGNORECASE):
            match = _CONDITION.match(part)
            if match is None:
                raise EnformError(f"bad condition: {part.strip()!r}")
            field_name, operator, literal = match.groups()
            conditions.append(
                Condition(field_name, operator, _parse_literal(literal))
            )

    order_by: Optional[str] = None
    order_desc = False
    if "ORDER BY" in clauses:
        parts = clauses["ORDER BY"].split()
        order_by = parts[0]
        order_desc = len(parts) > 1 and parts[1].upper() == "DESC"

    totals = []
    if "TOTAL" in clauses:
        totals = [part.strip() for part in clauses["TOTAL"].split(",")]
    count = "COUNT" in clauses
    first = int(clauses["FIRST"]) if "FIRST" in clauses else None

    query = Query(
        file=file_name,
        select=select,
        conditions=conditions,
        order_by=order_by,
        order_desc=order_desc,
        totals=totals,
        count=count,
        first=first,
    )
    _plan(query, schema)
    return query


def _plan(query: Query, schema: FileSchema) -> None:
    """Choose the access path: index, primary-key range, or full scan."""
    query.plan = "full-scan"
    query.plan_detail = f"scan {schema.name}"
    query.plan_args = ()
    if schema.organization != KEY_SEQUENCED:
        return
    # 1. Equality on an alternate key -> index lookup.
    for condition in query.conditions:
        if condition.operator == "=" and condition.field in schema.alternate_keys:
            query.plan = "index-lookup"
            query.plan_detail = f"alternate key {condition.field}"
            query.plan_args = (condition.field, condition.value)
            return
    # 2. Conditions constraining the first primary-key field -> range.
    if len(schema.primary_key) >= 1:
        key_field = schema.primary_key[0]
        low = high = None
        for condition in query.conditions:
            if condition.field != key_field:
                continue
            if condition.operator == "=":
                low = high = condition.value
                break
            if condition.operator in (">", ">="):
                bound = condition.value if condition.operator == ">=" else condition.value
                low = bound if low is None else max(low, bound)
            if condition.operator in ("<", "<="):
                bound = condition.value
                high = bound if high is None else min(high, bound)
        if low is not None or high is not None:
            query.plan = "key-range"
            query.plan_detail = f"primary key {key_field} in [{low}, {high}]"
            query.plan_args = (
                (low,) if low is not None else None,
                (high,) if high is not None else None,
            )
