"""A miniature Screen-COBOL-like language for requester programs.

The paper's application interface is Screen COBOL: "a COBOL-like
language with extensions for screen handling", interpreted by the TCP,
whose transaction verbs are BEGIN-TRANSACTION / END-TRANSACTION /
ABORT-TRANSACTION / RESTART-TRANSACTION and SEND.  This module provides
a small textual language in that spirit so requesters can be written as
data rather than Python — and compiles a program to the generator form
the TCP runs.

Grammar (line-oriented; ``*`` starts a comment):

    PROGRAM <name>.
    MOVE <expr> TO <var>.
    ADD <expr> TO <var>.
    SUBTRACT <expr> FROM <var>.
    SEND <expr> TO <server-expr>.            * reply lands in REPLY
    IF <expr> <op> <expr> THEN ... [ELSE ...] END-IF.
    WHILE <expr> <op> <expr> DO ... END-WHILE.
    DISPLAY <expr> [<expr> ...].
    ABORT-TRANSACTION [<expr>].
    RESTART-TRANSACTION [<expr>].
    RETURN <expr>.

The TCP supplies BEGIN/END-TRANSACTION around the whole program (one
input screen = one logical transaction), exactly as it does for Python
screen programs.

Expressions: integer/string literals, variable names, dotted paths into
dict values (``INPUT.amount``, ``REPLY.balance``), and ``{...}`` record
constructors with expression values.  Comparison operators: ``=``,
``<>``, ``<``, ``<=``, ``>``, ``>=``.

Predefined variables: ``INPUT`` (the terminal input record), ``REPLY``
(last SEND reply), ``TRANSACTIONID`` (the special register),
``ATTEMPT`` (restart count of this unit).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Generator, List, Tuple

from .verbs import ScreenContext

__all__ = ["ScobolError", "ScobolProgram", "compile_program"]


class ScobolError(Exception):
    """A parse or runtime error in a Screen-COBOL-like program."""


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
_TOKEN = re.compile(
    r"""
    \s*(
        "(?:[^"\\]|\\.)*"     |   # string literal
        \{ | \} | : | ,       |   # record constructor punctuation
        <> | <= | >= | [=<>]  |   # comparison operators
        -?\d+                 |   # integer
        [A-Za-z][\w.\-]*          # identifier / dotted path
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    out, position = [], 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise ScobolError(f"cannot tokenize: {text[position:]!r}")
        out.append(match.group(1))
        position = match.end()
    return out


class _Expr:
    """A parsed expression: literal, variable path, or record."""

    def __init__(self, kind: str, value: Any):
        self.kind = kind   # lit | path | record
        self.value = value

    def evaluate(self, variables: Dict[str, Any]) -> Any:
        if self.kind == "lit":
            return self.value
        if self.kind == "path":
            parts = self.value.split(".")
            current: Any = variables
            for index, part in enumerate(parts):
                if index == 0:
                    if part not in variables:
                        raise ScobolError(f"undefined variable {part!r}")
                    current = variables[part]
                elif isinstance(current, dict):
                    if part not in current:
                        raise ScobolError(f"no field {part!r} in {parts[0]}")
                    current = current[part]
                else:
                    raise ScobolError(f"{'.'.join(parts[:index])} is not a record")
            return current
        # record constructor
        return {
            name: expr.evaluate(variables) for name, expr in self.value
        }


def _parse_expr(tokens: List[str], position: int) -> Tuple[_Expr, int]:
    token = tokens[position]
    if token.startswith('"'):
        text = token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        return _Expr("lit", text), position + 1
    if re.fullmatch(r"-?\d+", token):
        return _Expr("lit", int(token)), position + 1
    if token == "{":
        fields: List[Tuple[str, _Expr]] = []
        position += 1
        while tokens[position] != "}":
            name = tokens[position]
            if tokens[position + 1] != ":":
                raise ScobolError(f"expected ':' after field {name!r}")
            value, position = _parse_expr(tokens, position + 2)
            fields.append((name, value))
            if tokens[position] == ",":
                position += 1
        return _Expr("record", fields), position + 1
    if re.fullmatch(r"[A-Za-z][\w.\-]*", token):
        return _Expr("path", token), position + 1
    raise ScobolError(f"unexpected token {token!r} in expression")


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class _Statement:
    def __init__(self, op: str, **fields: Any):
        self.op = op
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.op} {self.fields}>"


def _split_statements(source: str) -> List[str]:
    """One statement per line; drop comments/blanks.

    Simple statements end with '.'; block headers (IF ... THEN,
    WHILE ... DO, ELSE) may omit it, COBOL-sentence style.
    """
    statements: List[str] = []
    buffer = ""
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("*"):
            continue
        buffer = f"{buffer} {line}".strip() if buffer else line
        upper = buffer.upper()
        if buffer.endswith("."):
            statements.append(buffer[:-1].strip())
            buffer = ""
        elif upper.endswith("THEN") or upper.endswith("DO") or upper == "ELSE":
            statements.append(buffer)
            buffer = ""
        # otherwise: continuation — accumulate until a terminator
    if buffer:
        raise ScobolError(f"statement must end with '.': {buffer!r}")
    return statements


def _parse_block(lines: List[str], index: int, terminators: Tuple[str, ...]) -> Tuple[List[_Statement], int]:
    block: List[_Statement] = []
    while index < len(lines):
        line = lines[index]
        upper = line.upper()
        if upper in terminators or upper.split()[0] in terminators:
            return block, index
        statement, index = _parse_statement(lines, index)
        block.append(statement)
    if terminators != ("<eof>",):
        raise ScobolError(f"missing {' / '.join(terminators)}")
    return block, index


def _parse_statement(lines: List[str], index: int) -> Tuple[_Statement, int]:
    line = lines[index]
    tokens = _tokenize(line)
    head = tokens[0].upper()

    if head == "MOVE":
        expr, position = _parse_expr(tokens, 1)
        if tokens[position].upper() != "TO":
            raise ScobolError(f"MOVE: expected TO in {line!r}")
        return _Statement("move", expr=expr, target=tokens[position + 1]), index + 1
    if head == "ADD":
        expr, position = _parse_expr(tokens, 1)
        if tokens[position].upper() != "TO":
            raise ScobolError(f"ADD: expected TO in {line!r}")
        return _Statement("add", expr=expr, target=tokens[position + 1]), index + 1
    if head == "SUBTRACT":
        expr, position = _parse_expr(tokens, 1)
        if tokens[position].upper() != "FROM":
            raise ScobolError(f"SUBTRACT: expected FROM in {line!r}")
        return _Statement("sub", expr=expr, target=tokens[position + 1]), index + 1
    if head == "SEND":
        expr, position = _parse_expr(tokens, 1)
        if tokens[position].upper() != "TO":
            raise ScobolError(f"SEND: expected TO in {line!r}")
        server, position = _parse_expr(tokens, position + 1)
        return _Statement("send", payload=expr, server=server), index + 1
    if head == "DISPLAY":
        exprs = []
        position = 1
        while position < len(tokens):
            expr, position = _parse_expr(tokens, position)
            exprs.append(expr)
        return _Statement("display", exprs=exprs), index + 1
    if head == "ABORT-TRANSACTION":
        reason = None
        if len(tokens) > 1:
            reason, _ = _parse_expr(tokens, 1)
        return _Statement("abort", reason=reason), index + 1
    if head == "RESTART-TRANSACTION":
        reason = None
        if len(tokens) > 1:
            reason, _ = _parse_expr(tokens, 1)
        return _Statement("restart", reason=reason), index + 1
    if head == "RETURN":
        expr, _ = _parse_expr(tokens, 1)
        return _Statement("return", expr=expr), index + 1
    if head == "IF":
        left, position = _parse_expr(tokens, 1)
        comparator = tokens[position]
        if comparator not in _COMPARATORS:
            raise ScobolError(f"IF: bad comparator {comparator!r}")
        right, position = _parse_expr(tokens, position + 1)
        if position < len(tokens) and tokens[position].upper() == "THEN":
            position += 1
        if position != len(tokens):
            raise ScobolError(f"IF: trailing tokens in {line!r}")
        then_block, index = _parse_block(lines, index + 1, ("ELSE", "END-IF"))
        else_block: List[_Statement] = []
        if lines[index].upper() == "ELSE":
            else_block, index = _parse_block(lines, index + 1, ("END-IF",))
        return _Statement(
            "if", left=left, comparator=comparator, right=right,
            then_block=then_block, else_block=else_block,
        ), index + 1
    if head == "WHILE":
        left, position = _parse_expr(tokens, 1)
        comparator = tokens[position]
        if comparator not in _COMPARATORS:
            raise ScobolError(f"WHILE: bad comparator {comparator!r}")
        right, position = _parse_expr(tokens, position + 1)
        if position < len(tokens) and tokens[position].upper() == "DO":
            position += 1
        body, index = _parse_block(lines, index + 1, ("END-WHILE",))
        return _Statement(
            "while", left=left, comparator=comparator, right=right, body=body
        ), index + 1
    raise ScobolError(f"unknown statement {line!r}")


# ---------------------------------------------------------------------------
# The compiled program
# ---------------------------------------------------------------------------
class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class ScobolProgram:
    """A compiled program, callable as a TCP screen program."""

    MAX_STEPS = 100_000  # runaway-loop guard

    def __init__(self, name: str, statements: List[_Statement], source: str):
        self.name = name
        self.statements = statements
        self.source = source

    def __call__(self, ctx: ScreenContext, data: Any) -> Generator:
        variables: Dict[str, Any] = {
            "INPUT": data,
            "REPLY": {},
            "TRANSACTIONID": str(ctx.transaction_id),
            "ATTEMPT": ctx.attempt,
        }
        self._steps = 0
        try:
            result = yield from self._run_block(ctx, self.statements, variables)
        except _Return as ret:
            return ret.value
        return result

    def _run_block(self, ctx: ScreenContext, block: List[_Statement], variables: Dict[str, Any]) -> Generator:
        result = None
        for statement in block:
            self._steps += 1
            if self._steps > self.MAX_STEPS:
                raise ScobolError(f"{self.name}: step limit exceeded")
            op = statement.op
            fields = statement.fields
            if op == "move":
                variables[fields["target"]] = fields["expr"].evaluate(variables)
            elif op == "add":
                target = fields["target"]
                variables[target] = variables.get(target, 0) + fields["expr"].evaluate(variables)
            elif op == "sub":
                target = fields["target"]
                variables[target] = variables.get(target, 0) - fields["expr"].evaluate(variables)
            elif op == "send":
                payload = fields["payload"].evaluate(variables)
                server = fields["server"].evaluate(variables)
                reply = yield from ctx.send_ok(server, payload)
                variables["REPLY"] = reply
            elif op == "display":
                ctx.display(" ".join(
                    str(expr.evaluate(variables)) for expr in fields["exprs"]
                ))
            elif op == "abort":
                reason = fields["reason"]
                ctx.abort_transaction(
                    str(reason.evaluate(variables)) if reason else "abort-transaction"
                )
            elif op == "restart":
                reason = fields["reason"]
                ctx.restart_transaction(
                    str(reason.evaluate(variables)) if reason else "restart-transaction"
                )
            elif op == "return":
                raise _Return(fields["expr"].evaluate(variables))
            elif op == "if":
                comparator = _COMPARATORS[fields["comparator"]]
                if comparator(
                    fields["left"].evaluate(variables),
                    fields["right"].evaluate(variables),
                ):
                    result = yield from self._run_block(ctx, fields["then_block"], variables)
                else:
                    result = yield from self._run_block(ctx, fields["else_block"], variables)
            elif op == "while":
                comparator = _COMPARATORS[fields["comparator"]]
                while comparator(
                    fields["left"].evaluate(variables),
                    fields["right"].evaluate(variables),
                ):
                    self._steps += 1
                    if self._steps > self.MAX_STEPS:
                        raise ScobolError(f"{self.name}: step limit exceeded")
                    result = yield from self._run_block(ctx, fields["body"], variables)
            else:  # pragma: no cover - parser guarantees coverage
                raise ScobolError(f"unknown op {op}")
        return result


def compile_program(source: str) -> ScobolProgram:
    """Compile source text to a TCP-runnable :class:`ScobolProgram`."""
    lines = _split_statements(source)
    if not lines or not lines[0].upper().startswith("PROGRAM"):
        raise ScobolError("source must start with 'PROGRAM <name>.'")
    name = lines[0].split(None, 1)[1] if len(lines[0].split()) > 1 else "anonymous"
    statements, index = _parse_block(lines[1:], 0, ("<eof>",))
    return ScobolProgram(name, statements, source)
