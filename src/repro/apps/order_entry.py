"""An order-entry application (multi-file, secondary-index workload).

Exercises the data-base-manager features of §Data Base Management that
banking does not: multi-record inserts per transaction, alternate-key
access ("multi-key access to records with automatic maintenance of the
indices during file update"), compound primary keys, and range scans.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..discprocess import (
    ENTRY_SEQUENCED,
    FileSchema,
    KEY_SEQUENCED,
    PartitionSpec,
)
from ..encompass import ServerContext, SystemBuilder

__all__ = [
    "order_entry_schemas",
    "order_server",
    "install_order_entry",
    "populate_order_entry",
]


def order_entry_schemas(partition: PartitionSpec) -> List[FileSchema]:
    loc = (partition,)
    return [
        FileSchema(
            name="customer",
            organization=KEY_SEQUENCED,
            primary_key=("customer_id",),
            alternate_keys=("region",),
            audited=True,
            partitions=loc,
        ),
        FileSchema(
            name="item",
            organization=KEY_SEQUENCED,
            primary_key=("item_id",),
            audited=True,
            partitions=loc,
        ),
        FileSchema(
            name="order",
            organization=KEY_SEQUENCED,
            primary_key=("order_id",),
            alternate_keys=("customer_id", "status"),
            audited=True,
            partitions=loc,
        ),
        FileSchema(
            name="order_line",
            organization=KEY_SEQUENCED,
            primary_key=("order_id", "line_number"),
            audited=True,
            partitions=loc,
        ),
        FileSchema(
            name="order_log",
            organization=ENTRY_SEQUENCED,
            audited=True,
            partitions=loc,
        ),
    ]


def order_server(ctx: ServerContext, request: Dict[str, Any]) -> Generator:
    """Ops: new_order, ship_order, orders_for_customer, open_orders."""
    op = request.get("op")
    if op == "new_order":
        order_id = request["order_id"]
        customer = yield from ctx.read(
            "customer", (request["customer_id"],), lock=True
        )
        if customer is None:
            return {"ok": False, "error": "no_such_customer"}
        total = 0
        for line_number, (item_id, qty) in enumerate(request["lines"], start=1):
            item = yield from ctx.read("item", (item_id,), lock=True)
            if item is None or item["stock"] < qty:
                # Out of stock: voluntary abort via error reply.
                return {"ok": False, "error": "out_of_stock", "item_id": item_id}
            item["stock"] -= qty
            yield from ctx.update("item", item)
            yield from ctx.insert(
                "order_line",
                {
                    "order_id": order_id,
                    "line_number": line_number,
                    "item_id": item_id,
                    "quantity": qty,
                    "price": qty * item["price"],
                },
            )
            total += qty * item["price"]
        yield from ctx.insert(
            "order",
            {
                "order_id": order_id,
                "customer_id": request["customer_id"],
                "status": "open",
                "total": total,
            },
        )
        yield from ctx.append_entry(
            "order_log", {"event": "new", "order_id": order_id, "total": total}
        )
        return {"ok": True, "order_id": order_id, "total": total}

    if op == "ship_order":
        order = yield from ctx.read("order", (request["order_id"],), lock=True)
        if order is None:
            return {"ok": False, "error": "no_such_order"}
        order["status"] = "shipped"
        yield from ctx.update("order", order)
        yield from ctx.append_entry(
            "order_log", {"event": "ship", "order_id": order["order_id"]}
        )
        return {"ok": True}

    if op == "orders_for_customer":
        orders = yield from ctx.read_via_index(
            "order", "customer_id", request["customer_id"]
        )
        return {"ok": True, "orders": orders}

    if op == "open_orders":
        orders = yield from ctx.read_via_index("order", "status", "open")
        return {"ok": True, "orders": orders}

    return {"ok": False, "error": "bad_op"}


def install_order_entry(
    builder: SystemBuilder,
    node: str = "alpha",
    volume: str = "$data",
    server_instances: int = 2,
) -> None:
    for schema in order_entry_schemas(PartitionSpec(node, volume)):
        builder.define_file(schema)
    builder.add_server_class(node, "$order", order_server, instances=server_instances)


def populate_order_entry(
    system: Any,
    node: str,
    customers: int = 20,
    items: int = 50,
    stock: int = 1000,
    price: int = 10,
) -> None:
    client = system.clients[node]
    tmf = system.tmf[node]

    def loader(proc):
        transid = yield from tmf.begin(proc)
        for customer_id in range(customers):
            yield from client.insert(
                proc,
                "customer",
                {
                    "customer_id": customer_id,
                    "region": ["west", "east", "eu"][customer_id % 3],
                    "name": f"customer {customer_id}",
                },
                transid=transid,
            )
        yield from tmf.end(proc, transid)
        transid = yield from tmf.begin(proc)
        for item_id in range(items):
            yield from client.insert(
                proc,
                "item",
                {"item_id": item_id, "stock": stock, "price": price},
                transid=transid,
            )
        yield from tmf.end(proc, transid)
        return True

    proc = system.spawn(node, "$oload", loader, cpu=0)
    system.cluster.run(proc.sim_process)
