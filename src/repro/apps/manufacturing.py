"""The paper's distributed manufacturing application (Figure 4).

"Tandem's Manufacturing Division uses ENCOMPASS to implement a reliable
distributed data base to coordinate its four manufacturing facilities in
Cupertino, Santa Clara, Reston and Neufahrn ...  Each node has a copy of
the 'global' files: Item Master File, Bill of Materials File, and the
Purchase Order Header File.  In addition, each node has a set of 'local'
files ...  For the purpose of update, each global file record is
assigned a master node ... The update of a global record can occur only
if its master node is available.  An update request is sent to a server
on the record's master node.  The server executes a TMF transaction
which updates the master copy of the record and queues 'deferred' update
requests for the non-master copies ... in a 'suspense file' at the
record's master node.  A dedicated process, called the 'suspense
monitor', scans the suspense file looking for work to do ...  When the
network is re-connected and all accumulated updates are applied, global
file copies converge to a consistent state."  (paper, §A Distributed
Data Base Application)

The design trades replica consistency for **node autonomy**: a node can
update records it masters even while partitioned from every other node.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Sequence

from ..discprocess import (
    ENTRY_SEQUENCED,
    FileSchema,
    KEY_SEQUENCED,
    RELATIVE,
    PartitionSpec,
)
from ..encompass import ServerContext, SystemBuilder

__all__ = [
    "MANUFACTURING_NODES",
    "GLOBAL_FILES",
    "LOCAL_FILES",
    "ManufacturingApp",
    "build_manufacturing_system",
]

#: the four facilities of Figure 4
MANUFACTURING_NODES = ("cupertino", "santaclara", "reston", "neufahrn")

#: global (replicated) files
GLOBAL_FILES = ("item_master", "bill_of_materials", "po_header")

#: local (per-node) files
LOCAL_FILES = ("stock", "work_in_progress", "tx_history", "po_detail")


def _copy_name(file: str, node: str) -> str:
    """The name of one node's copy of a global file."""
    return f"{file}.{node}"


def _local_name(file: str, node: str) -> str:
    return f"{file}.{node}"


class ManufacturingApp:
    """Runtime handle over a built manufacturing system."""

    def __init__(self, system: Any, nodes: Sequence[str]):
        self.system = system
        self.nodes = tuple(nodes)
        self.deferred_applied = 0
        self.deferred_queued = 0

    def _gupd_destination(self, from_node: str, dest_node: str) -> str:
        """Route to a live $gupd server instance at ``dest_node``.

        (The Pathway link manager's job: class name -> instance.)
        """
        server_class = self.system.server_classes[(dest_node, "$gupd")]
        instance = server_class.pick_instance() or f"{server_class.name}-1"
        if dest_node == from_node:
            return instance
        return f"\\{dest_node}.{instance}"

    # ------------------------------------------------------------------
    # Server handler (global update protocol)
    # ------------------------------------------------------------------
    def make_global_server(self, node: str):
        """The global-update server for ``node`` (runs at that node)."""
        app = self

        def handler(ctx: ServerContext, request: Dict[str, Any]) -> Generator:
            op = request.get("op")
            if op == "update_global":
                result = yield from app._update_global(ctx, node, request)
                return result
            if op == "apply_deferred":
                result = yield from app._apply_deferred(ctx, node, request)
                return result
            if op == "read_global":
                copy = _copy_name(request["file"], node)
                record = yield from ctx.read(copy, tuple(request["key"]))
                return {"ok": True, "record": record}
            return {"ok": False, "error": "bad_op"}

        return handler

    def _update_global(self, ctx: ServerContext, node: str, request: Dict[str, Any]) -> Generator:
        """Master-node update: local copy + suspense entries, one TMF txn."""
        file = request["file"]
        key = tuple(request["key"])
        fields = request["fields"]
        copy = _copy_name(file, node)
        record = yield from ctx.read(copy, key, lock=True)
        if record is None:
            return {"ok": False, "error": "not_found"}
        if record["master_node"] != node:
            # "The update of a global record can occur only if its master
            # node is available" — and only *at* the master node.
            return {"ok": False, "error": "not_master",
                    "master_node": record["master_node"]}
        record.update(fields)
        record["version"] += 1
        yield from ctx.update(copy, record)
        # Queue deferred updates for every non-master copy, in suspense-
        # file order (a per-node sequence from a locked control record).
        control_file = _local_name("repl_ctl", node)
        control = yield from ctx.read_slot(control_file, 0, lock=True)
        seq = control["next_seq"]
        control["next_seq"] = seq + len(self.nodes) - 1
        yield from ctx.write_slot(control_file, 0, control)
        suspense = _local_name("suspense", node)
        for dest in self.nodes:
            if dest == node:
                continue
            yield from ctx.insert(
                suspense,
                {
                    "seq": seq,
                    "dest": dest,
                    "file": file,
                    "key": list(key),
                    "fields": dict(fields),
                    "version": record["version"],
                },
            )
            seq += 1
            self.deferred_queued += 1
        return {"ok": True, "version": record["version"]}

    def _apply_deferred(self, ctx: ServerContext, node: str, request: Dict[str, Any]) -> Generator:
        """Non-master node applies one deferred update to its copy."""
        copy = _copy_name(request["file"], node)
        key = tuple(request["key"])
        record = yield from ctx.read(copy, key, lock=True)
        if record is None:
            return {"ok": False, "error": "not_found"}
        if request["version"] <= record["version"]:
            return {"ok": True, "skipped": True}  # already applied (replay)
        record.update(request["fields"])
        record["version"] = request["version"]
        yield from ctx.update(copy, record)
        return {"ok": True, "skipped": False}

    # ------------------------------------------------------------------
    # The suspense monitor
    # ------------------------------------------------------------------
    def suspense_monitor(self, node: str, interval: float = 300.0):
        """A dedicated process draining ``node``'s suspense file.

        For each destination currently accessible, applies deferred
        updates in suspense-file order: one TMF transaction per entry —
        send the update to a server at the non-master node and delete
        the suspense entry (exactly the paper's procedure).
        """
        app = self
        system = self.system
        client = system.clients[node]
        tmf = system.tmf[node]
        suspense = _local_name("suspense", node)

        def monitor(proc) -> Generator:
            from ..discprocess import FileError
            from ..guardian import FileSystemError
            from ..core import TransactionAborted

            while proc.alive:
                yield system.env.timeout(interval)
                try:
                    rows = yield from client.scan(proc, suspense)
                except FileError:
                    continue
                # Per-destination FIFO: entries are keyed by (seq,) so a
                # scan yields them in queueing order.
                blocked: set = set()
                for _key, entry in rows:
                    dest = entry["dest"]
                    if dest in blocked:
                        continue
                    if not system.cluster.network.connected(node, dest):
                        blocked.add(dest)
                        continue
                    transid = yield from tmf.begin(proc)
                    try:
                        reply = yield from system.cluster.fs(node).send(
                            proc,
                            app._gupd_destination(node, dest),
                            {
                                "op": "apply_deferred",
                                "file": entry["file"],
                                "key": entry["key"],
                                "fields": entry["fields"],
                                "version": entry["version"],
                            },
                            transid=transid,
                            timeout=5000.0,
                        )
                        if not reply.get("ok"):
                            raise FileSystemError(dest, RuntimeError(reply.get("error")))
                        yield from client.lock_record(
                            proc, suspense, (entry["seq"],), transid
                        )
                        yield from client.delete(
                            proc, suspense, (entry["seq"],), transid=transid
                        )
                        yield from tmf.end(proc, transid)
                        app.deferred_applied += 1
                    except (FileSystemError, FileError, TransactionAborted):
                        yield from tmf.abort(proc, transid, "deferred apply failed")
                        blocked.add(dest)

        return monitor

    # ------------------------------------------------------------------
    # Application operations (run from a utility process)
    # ------------------------------------------------------------------
    def update_item(self, proc, from_node: str, item_id: Any, fields: Dict[str, Any],
                    file: str = "item_master") -> Generator:
        """Update a global record from any node (routed to its master)."""
        client = self.system.clients[from_node]
        tmf = self.system.tmf[from_node]
        # Reads are always directed to the local copy.
        local = yield from client.read(proc, _copy_name(file, from_node), (item_id,))
        if local is None:
            return {"ok": False, "error": "not_found"}
        master = local["master_node"]
        transid = yield from tmf.begin(proc)
        from ..core import TransactionAborted
        from ..guardian import FileSystemError
        try:
            reply = yield from self.system.cluster.fs(from_node).send(
                proc,
                self._gupd_destination(from_node, master),
                {"op": "update_global", "file": file, "key": [item_id],
                 "fields": fields},
                transid=transid,
                timeout=5000.0,
            )
            if not reply.get("ok"):
                yield from tmf.abort(proc, transid, str(reply.get("error")))
                return reply
            yield from tmf.end(proc, transid)
            return reply
        except (FileSystemError, TransactionAborted) as exc:
            yield from tmf.abort(proc, transid, str(exc))
            return {"ok": False, "error": "master_unavailable", "master_node": master}

    def read_item(self, proc, node: str, item_id: Any, file: str = "item_master") -> Generator:
        client = self.system.clients[node]
        record = yield from client.read(proc, _copy_name(file, node), (item_id,))
        return record

    def local_transaction(self, proc, node: str, item_id: Any, delta: int) -> Generator:
        """A purely local stock movement (most transactions in Figure 4)."""
        client = self.system.clients[node]
        tmf = self.system.tmf[node]
        stock_file = _local_name("stock", node)
        history = _local_name("tx_history", node)
        transid = yield from tmf.begin(proc)
        record = yield from client.read(proc, stock_file, (item_id,), transid=transid, lock=True)
        if record is None:
            record = {"item_id": item_id, "qty": 0}
            record["qty"] += delta
            yield from client.insert(proc, stock_file, record, transid=transid)
        else:
            record["qty"] += delta
            yield from client.update(proc, stock_file, record, transid=transid)
        yield from client.append_entry(
            proc, history, {"item_id": item_id, "delta": delta}, transid=transid
        )
        yield from tmf.end(proc, transid)
        return record["qty"]

    # ------------------------------------------------------------------
    # Convergence checking
    # ------------------------------------------------------------------
    def convergence_report(self, file: str = "item_master") -> Dict[str, Any]:
        """Compare all copies of a global file across nodes."""
        copies: Dict[str, Dict[Any, Any]] = {}

        def reader(proc, node):
            client = self.system.clients[node]
            rows = yield from client.scan(proc, _copy_name(file, node))
            copies[node] = {key: record for key, record in rows}

        for node in self.nodes:
            p = self.system.spawn(node, "$conv", (lambda n: lambda pr: reader(pr, n))(node), cpu=0)
            self.system.cluster.run(p.sim_process)
        reference = copies[self.nodes[0]]
        converged = all(copies[node] == reference for node in self.nodes[1:])
        suspense_depth = {}

        def depth_reader(proc, node):
            client = self.system.clients[node]
            rows = yield from client.scan(proc, _local_name("suspense", node))
            suspense_depth[node] = len(rows)

        for node in self.nodes:
            p = self.system.spawn(node, "$depth", (lambda n: lambda pr: depth_reader(pr, n))(node), cpu=0)
            self.system.cluster.run(p.sim_process)
        return {
            "converged": converged,
            "copies": copies,
            "suspense_depth": suspense_depth,
        }


def build_manufacturing_system(
    seed: int = 0,
    nodes: Sequence[str] = MANUFACTURING_NODES,
    items_per_node: int = 4,
    monitor_interval: float = 300.0,
    cpus: int = 4,
) -> ManufacturingApp:
    """Build the Figure 4 network: files, servers, suspense monitors, data."""
    builder = SystemBuilder(seed=seed)
    for node in nodes:
        builder.add_node(node, cpus=cpus)
        builder.add_volume(node, "$data", cpus=(0, 1))
    # Global file copies: one per (file, node), all audited.
    for file in GLOBAL_FILES:
        for node in nodes:
            builder.define_file(
                FileSchema(
                    name=_copy_name(file, node),
                    organization=KEY_SEQUENCED,
                    primary_key=("item_id",),
                    audited=True,
                    partitions=(PartitionSpec(node, "$data"),),
                )
            )
    # Local files.
    for node in nodes:
        builder.define_file(
            FileSchema(
                name=_local_name("stock", node),
                organization=KEY_SEQUENCED,
                primary_key=("item_id",),
                audited=True,
                partitions=(PartitionSpec(node, "$data"),),
            )
        )
        builder.define_file(
            FileSchema(
                name=_local_name("work_in_progress", node),
                organization=KEY_SEQUENCED,
                primary_key=("wip_id",),
                audited=True,
                partitions=(PartitionSpec(node, "$data"),),
            )
        )
        builder.define_file(
            FileSchema(
                name=_local_name("po_detail", node),
                organization=KEY_SEQUENCED,
                primary_key=("po_id", "line"),
                audited=True,
                partitions=(PartitionSpec(node, "$data"),),
            )
        )
        builder.define_file(
            FileSchema(
                name=_local_name("tx_history", node),
                organization=ENTRY_SEQUENCED,
                audited=True,
                partitions=(PartitionSpec(node, "$data"),),
            )
        )
        builder.define_file(
            FileSchema(
                name=_local_name("suspense", node),
                organization=KEY_SEQUENCED,
                primary_key=("seq",),
                audited=True,
                partitions=(PartitionSpec(node, "$data"),),
            )
        )
        builder.define_file(
            FileSchema(
                name=_local_name("repl_ctl", node),
                organization=RELATIVE,
                audited=True,
                partitions=(PartitionSpec(node, "$data"),),
            )
        )
    app = ManufacturingApp(builder.system, nodes)
    # Global-update server class per node.
    for node in nodes:
        builder.add_server_class(node, "$gupd", app.make_global_server(node), instances=2)
    system = builder.build()
    # Suspense monitor per node ("a dedicated process").
    for node in nodes:
        system.cluster.os(node).spawn(
            f"$susp-{node}", cpus - 1, app.suspense_monitor(node, monitor_interval),
            register=False,
        )
    # Initial data: items mastered round-robin across nodes, replicated
    # everywhere; control records.
    def loader(proc):
        for node in nodes:
            client = system.clients[node]
            tmf = system.tmf[node]
            transid = yield from tmf.begin(proc)
            yield from client.write_slot(
                proc, _local_name("repl_ctl", node), 0, {"next_seq": 0},
                transid=transid,
            )
            yield from tmf.end(proc, transid)
        client = system.clients[nodes[0]]
        tmf = system.tmf[nodes[0]]
        item_id = 0
        for master in nodes:
            for _ in range(items_per_node):
                transid = yield from tmf.begin(proc)
                for copy_node in nodes:
                    yield from client.insert(
                        proc,
                        _copy_name("item_master", copy_node),
                        {
                            "item_id": item_id,
                            "master_node": master,
                            "description": f"item {item_id}",
                            "qty_on_hand": 100,
                            "version": 0,
                        },
                        transid=transid,
                    )
                yield from tmf.end(proc, transid)
                item_id += 1
        return item_id

    p = system.spawn(nodes[0], "$mload", loader, cpu=0)
    system.cluster.run(p.sim_process)
    # Quiesce: the loader's distributed commits release remote locks via
    # safe-delivery phase-2 messages; drain them so callers start from a
    # lock-free network.
    settle = system.spawn(
        nodes[0], "$msettle", lambda proc: (yield system.env.timeout(1500)), cpu=0
    )
    system.cluster.run(settle.sim_process)
    return app
