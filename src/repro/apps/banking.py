"""A debit/credit banking application (TP1-style).

The canonical online-transaction-processing workload of the era (and of
Tandem's marketing): tellers post debits and credits against accounts;
every posting updates the account, the teller's cash drawer, the branch
total, and appends a history record — one atomic TMF transaction across
four files.

The application supplies the paper's "application-dependent set of
assertions" that define consistency (§Transaction Management):

* sum(account.balance) == sum(branch.balance);
* sum(teller.balance grouped by branch) == branch.balance;
* every committed posting has exactly one history record.

``check_consistency`` evaluates these against a live system; the
atomicity experiments assert they hold after arbitrary failures.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..discprocess import (
    ENTRY_SEQUENCED,
    FileSchema,
    KEY_SEQUENCED,
    PartitionSpec,
)
from ..encompass import ScreenContext, ServerContext, SystemBuilder

__all__ = [
    "banking_schemas",
    "bank_server",
    "debit_credit_program",
    "install_banking",
    "populate_banking",
    "check_consistency",
]


def banking_schemas(
    data_partitions: Tuple[PartitionSpec, ...],
    meta_partition: Optional[PartitionSpec] = None,
    history_partition: Optional[PartitionSpec] = None,
) -> List[FileSchema]:
    """Schemas for the four banking files.

    ``data_partitions`` locates the (possibly partitioned) account file;
    ``meta_partition`` locates branch/teller (defaults to the first data
    partition); ``history_partition`` locates the history journal
    (defaults to the meta partition) — spreading these over volumes is
    how a configuration scales (bench F2).
    """
    meta = meta_partition or data_partitions[0]
    history = history_partition or meta
    return [
        FileSchema(
            name="account",
            organization=KEY_SEQUENCED,
            primary_key=("account_id",),
            alternate_keys=("branch_id",),
            audited=True,
            partitions=data_partitions,
        ),
        FileSchema(
            name="teller",
            organization=KEY_SEQUENCED,
            primary_key=("teller_id",),
            audited=True,
            partitions=(meta,),
        ),
        FileSchema(
            name="branch",
            organization=KEY_SEQUENCED,
            primary_key=("branch_id",),
            audited=True,
            partitions=(meta,),
        ),
        FileSchema(
            name="history",
            organization=ENTRY_SEQUENCED,
            audited=True,
            partitions=(history,),
        ),
    ]


def bank_server(ctx: ServerContext, request: Dict[str, Any]) -> Generator:
    """The context-free banking server: one debit/credit posting.

    Locks are acquired at read time (the TMF discipline); a lock timeout
    propagates out as the ``lock_timeout`` error reply that tells the
    screen program to RESTART-TRANSACTION.
    """
    op = request.get("op")
    if op == "balance":
        account = yield from ctx.read("account", (request["account_id"],))
        if account is None:
            return {"ok": False, "error": "no_such_account"}
        return {"ok": True, "balance": account["balance"]}
    if op != "post":
        return {"ok": False, "error": "bad_op"}

    amount = request["amount"]
    account = yield from ctx.read(
        "account", (request["account_id"],), lock=True,
        lock_timeout=request.get("lock_timeout", 400.0),
    )
    if account is None:
        return {"ok": False, "error": "no_such_account"}
    teller = yield from ctx.read(
        "teller", (request["teller_id"],), lock=True,
        lock_timeout=request.get("lock_timeout", 400.0),
    )
    branch = yield from ctx.read(
        "branch", (request["branch_id"],), lock=True,
        lock_timeout=request.get("lock_timeout", 400.0),
    )
    if teller is None or branch is None:
        return {"ok": False, "error": "bad_teller_or_branch"}
    if account["balance"] + amount < 0 and not request.get("allow_overdraft"):
        return {"ok": False, "error": "insufficient_funds"}
    account["balance"] += amount
    teller["balance"] += amount
    branch["balance"] += amount
    yield from ctx.update("account", account)
    yield from ctx.update("teller", teller)
    yield from ctx.update("branch", branch)
    yield from ctx.append_entry(
        "history",
        {
            "account_id": request["account_id"],
            "teller_id": request["teller_id"],
            "branch_id": request["branch_id"],
            "amount": amount,
            "transid": str(ctx.transid),
        },
    )
    return {"ok": True, "balance": account["balance"]}


def debit_credit_program(ctx: ScreenContext, data: Dict[str, Any]) -> Generator:
    """The teller's screen program: one posting per input screen."""
    request = {"op": "post"}
    request.update(data)
    reply = yield from ctx.send_ok(data.get("server", "$bank"), request)
    ctx.display(
        f"POSTED {data['amount']:+d} TO {data['account_id']} "
        f"NEW BAL {reply['balance']}"
    )
    return reply["balance"]


def install_banking(
    builder: SystemBuilder,
    node: str = "alpha",
    volume: str = "$data",
    server_instances: int = 2,
    data_partitions: Optional[Tuple[PartitionSpec, ...]] = None,
    meta_partition: Optional[PartitionSpec] = None,
    history_partition: Optional[PartitionSpec] = None,
) -> None:
    """Define the banking files and the ``$bank`` server class."""
    partitions = data_partitions or (PartitionSpec(node, volume),)
    for schema in banking_schemas(partitions, meta_partition, history_partition):
        builder.define_file(schema)
    builder.add_server_class(node, "$bank", bank_server, instances=server_instances)


def populate_banking(
    system: Any,
    node: str,
    branches: int,
    tellers_per_branch: int,
    accounts: int,
    initial_balance: int = 1000,
) -> None:
    """Load the initial data set (one transaction per branch)."""
    client = system.clients[node]
    tmf = system.tmf[node]

    def loader(proc):
        for branch_id in range(branches):
            transid = yield from tmf.begin(proc)
            yield from client.insert(
                proc, "branch", {"branch_id": branch_id, "balance": 0},
                transid=transid,
            )
            for t in range(tellers_per_branch):
                teller_id = branch_id * tellers_per_branch + t
                yield from client.insert(
                    proc,
                    "teller",
                    {"teller_id": teller_id, "branch_id": branch_id, "balance": 0},
                    transid=transid,
                )
            yield from tmf.end(proc, transid)
        for start in range(0, accounts, 50):
            transid = yield from tmf.begin(proc)
            for account_id in range(start, min(start + 50, accounts)):
                yield from client.insert(
                    proc,
                    "account",
                    {
                        "account_id": account_id,
                        "branch_id": account_id % branches,
                        "balance": initial_balance,
                    },
                    transid=transid,
                )
            yield from tmf.end(proc, transid)
        # Branch totals start equal to the sum of their accounts.
        transid = yield from tmf.begin(proc)
        rows = yield from client.scan(proc, "account")
        per_branch: Dict[int, int] = {}
        for _key, record in rows:
            per_branch[record["branch_id"]] = (
                per_branch.get(record["branch_id"], 0) + record["balance"]
            )
        for branch_id in range(branches):
            branch = yield from client.read(
                proc, "branch", (branch_id,), transid=transid, lock=True
            )
            branch["balance"] = per_branch.get(branch_id, 0)
            yield from client.update(proc, "branch", branch, transid=transid)
        yield from tmf.end(proc, transid)
        return True

    node_os = system.cluster.os(node)
    proc = node_os.spawn("$loader", 0, loader, register=False)
    system.cluster.run(proc.sim_process)


def check_consistency(system: Any, node: str) -> Dict[str, Any]:
    """Evaluate the application's consistency assertions.

    Returns a report dict with ``consistent`` plus the totals, so
    experiments can assert and also print the evidence.
    """
    client = system.clients[node]
    report: Dict[str, Any] = {}

    def checker(proc):
        accounts = yield from client.scan(proc, "account")
        branches = yield from client.scan(proc, "branch")
        tellers = yield from client.scan(proc, "teller")
        history = yield from client.scan_entries(proc, "history")
        account_total = sum(record["balance"] for _k, record in accounts)
        branch_total = sum(record["balance"] for _k, record in branches)
        teller_total = sum(record["balance"] for _k, record in tellers)
        history_sum = sum(record["amount"] for _esn, record in history)
        # Invariant A: accounts and branch totals move in lockstep.
        # Invariant B: teller drawers hold exactly the committed postings,
        # and so does the history file.
        report.update(
            {
                "account_total": account_total,
                "branch_total": branch_total,
                "teller_total": teller_total,
                "history_sum": history_sum,
                "history_count": len(history),
                "accounts": len(accounts),
                "consistent": (
                    account_total == branch_total
                    and teller_total == history_sum
                ),
            }
        )
        return report

    node_os = system.cluster.os(node)
    proc = node_os.spawn("$check", 0, checker, register=False)
    return system.cluster.run(proc.sim_process)
