"""Example applications over the ENCOMPASS reproduction.

* :mod:`repro.apps.banking` — debit/credit (TP1-style) with the
  consistency assertions used by the atomicity experiments;
* :mod:`repro.apps.order_entry` — multi-file order entry exercising
  alternate-key indices and compound keys;
* :mod:`repro.apps.manufacturing` — the paper's Figure 4: a four-node
  replicated data base with record-master update, suspense files and
  suspense monitors.
"""

from .banking import (
    bank_server,
    banking_schemas,
    check_consistency,
    debit_credit_program,
    install_banking,
    populate_banking,
)
from .manufacturing import (
    GLOBAL_FILES,
    LOCAL_FILES,
    MANUFACTURING_NODES,
    ManufacturingApp,
    build_manufacturing_system,
)
from .order_entry import (
    install_order_entry,
    order_entry_schemas,
    order_server,
    populate_order_entry,
)

__all__ = [
    "GLOBAL_FILES",
    "LOCAL_FILES",
    "MANUFACTURING_NODES",
    "ManufacturingApp",
    "bank_server",
    "banking_schemas",
    "build_manufacturing_system",
    "check_consistency",
    "debit_credit_program",
    "install_banking",
    "install_order_entry",
    "order_entry_schemas",
    "order_server",
    "populate_banking",
    "populate_order_entry",
]
