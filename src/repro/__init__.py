"""repro — a reproduction of "Transaction Monitoring in ENCOMPASS" (Borr, VLDB 1981).

The package simulates the Tandem NonStop stack bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel.
* :mod:`repro.hardware` — processors, dual buses, mirrored discs, network.
* :mod:`repro.guardian` — message-based OS, process-pairs, file system.
* :mod:`repro.discprocess` — the ENCOMPASS storage engine (DISCPROCESS).
* :mod:`repro.core` — TMF: transids, audit trails, backout, two-phase
  commit (single-node and distributed), ROLLFORWARD.
* :mod:`repro.encompass` — TCPs, application servers, transaction verbs.
* :mod:`repro.apps` — banking, order-entry and the four-node
  manufacturing application of the paper's Figure 4.
* :mod:`repro.workloads` — seeded workload and failure-schedule generators.

The most convenient entry point is :class:`repro.encompass.config.SystemBuilder`,
re-exported here as :class:`SystemBuilder`; see ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

from .encompass import SystemBuilder  # noqa: E402  (convenience re-export)

__all__ = ["SystemBuilder", "__version__"]
