"""XRAY: the online measurement subsystem.

Simulation-time observability for the reproduction, named for Tandem's
XRAY performance monitor (the tool ENCOMPASS operators used to watch
CPU, bus, disc, and process activity on a live system):

* :mod:`repro.measure.registry` — named counters, gauges, and log-scale
  histograms (p50/p90/p99 without storing samples);
* :mod:`repro.measure.spans` — per-transaction phase spans and the
  critical-path breakdown of where latency went;
* :mod:`repro.measure.sampler` — periodic component-utilization
  sampling;
* :mod:`repro.measure.report` — deterministic JSON run reports and the
  human-readable "XRAY screen".

Enable it with ``SystemBuilder(measure=True)``; unmeasured systems carry
``env.metrics = None`` and every probe site is a guarded no-op.
"""

from .registry import Histogram, MetricsRegistry, NullRegistry, NULL_REGISTRY
from .report import build_report, render_report, to_json, write_report
from .sampler import Sampler
from .spans import CATEGORIES, Span, SpanLog
from .tables import format_table

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Sampler",
    "Span",
    "SpanLog",
    "CATEGORIES",
    "build_report",
    "format_table",
    "render_report",
    "to_json",
    "write_report",
]
