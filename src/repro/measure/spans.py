"""Per-transaction spans and critical-path accounting.

A *span* is one timed phase of a transaction's life — "begin",
"disc-io", "lock-wait", "audit-force", "commit-broadcast" — tagged with
a cost *category* (``cpu``, ``bus``, ``disc``, ``lock``, ``audit``,
``other``).  Spans nest: a span recorded while its transaction is open
attaches to the transaction's root span (or to an explicit parent), so
the tree mirrors where simulated time was actually spent.

When a transaction ends, the tree is folded into a *breakdown*: each
span contributes its **self time** (duration minus the overlap of its
children) to its category, and root time not covered by any child is
attributed to ``cpu`` — in this simulator, un-annotated transaction time
is request processing on some CPU.  The per-category totals accumulate
across transactions, which is exactly the data the XRAY report renders
as "where did the latency go".

No imports from the rest of ``repro`` — this module must be importable
from any layer without cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["Span", "SpanLog", "NullSpanLog", "NULL_SPANS", "CATEGORIES"]

#: canonical cost categories, in report order
CATEGORIES = ("cpu", "bus", "disc", "lock", "audit", "other")

#: open-transaction cap — transactions force-dropped beyond this bound
#: (defensive: a workload that begins but never ends transactions must
#: not grow memory without limit)
MAX_OPEN_TX = 4096

#: per-transaction breakdowns kept for inspection (aggregates are exact
#: regardless; this only bounds the ``recent`` deque)
RECENT_LIMIT = 1024


class Span:
    """One timed phase: [start, end) in simulation milliseconds."""

    __slots__ = ("key", "name", "category", "start", "end", "children")

    def __init__(
        self,
        key: str,
        name: str,
        category: str,
        start: float,
        end: Optional[float] = None,
    ):
        self.key = key
        self.name = name
        self.category = category if category in CATEGORIES else "other"
        self.start = start
        self.end = end
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return max(self.end - self.start, 0.0)

    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero).

        Children are charged in full; sequential, non-overlapping child
        phases are the norm here (the simulation's generator processes
        serialize their waits), so a simple sum is exact.
        """
        return max(self.duration - sum(c.duration for c in self.children), 0.0)

    def __repr__(self) -> str:
        return (
            f"<Span {self.name}/{self.category} key={self.key} "
            f"[{self.start}, {self.end})>"
        )


class TxRecord:
    """A finished transaction: its root span, outcome, and breakdown."""

    __slots__ = ("key", "root", "outcome", "breakdown")

    def __init__(self, key: str, root: Span, outcome: str):
        self.key = key
        self.root = root
        self.outcome = outcome
        self.breakdown = _fold(root)

    @property
    def latency(self) -> float:
        return self.root.duration

    def shares(self) -> Dict[str, float]:
        """Category shares of total latency (sum to 1 for nonzero latency)."""
        total = self.latency
        if total <= 0:
            return {category: 0.0 for category in CATEGORIES}
        return {
            category: self.breakdown.get(category, 0.0) / total
            for category in CATEGORIES
        }


def _fold(root: Span) -> Dict[str, float]:
    """Per-category self-time totals over the span tree.

    The root's own self time goes to ``cpu`` regardless of its nominal
    category: uncovered transaction time is request processing.
    """
    breakdown = {category: 0.0 for category in CATEGORIES}
    breakdown["cpu"] += root.self_time()
    stack = list(root.children)
    while stack:
        span = stack.pop()
        breakdown[span.category] += span.self_time()
        stack.extend(span.children)
    return breakdown


class SpanLog:
    """Records spans per transaction and folds them at transaction end."""

    def __init__(self) -> None:
        self._open: Dict[str, Span] = {}       # key -> open root span
        self.finished = 0
        self.dropped = 0
        self.recent: deque = deque(maxlen=RECENT_LIMIT)
        # Aggregates across all finished transactions:
        self.totals: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.total_latency = 0.0
        self.outcomes: Dict[str, int] = {}
        # Spans recorded outside any open transaction (background work):
        self.unattributed: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def begin_tx(self, key: str, t: float) -> None:
        """Open the root span for transaction ``key`` at time ``t``."""
        if key in self._open:
            return                                 # idempotent — first begin wins
        if len(self._open) >= MAX_OPEN_TX:
            self.dropped += 1
            return
        self._open[key] = Span(key, "transaction", "other", t)

    def is_open(self, key: str) -> bool:
        return key in self._open

    def record(
        self,
        key: str,
        name: str,
        category: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
    ) -> Optional[Span]:
        """Attach a finished phase span to its transaction (or parent).

        Spans for transactions that are not open (background work, e.g.
        a group audit force with no requesting transaction) accumulate
        per-name in ``unattributed``.
        """
        span = Span(key, name, category, start, end)
        if parent is not None:
            parent.children.append(span)
            return span
        root = self._open.get(key)
        if root is None:
            self.unattributed[name] = (
                self.unattributed.get(name, 0.0) + span.duration
            )
            return None
        root.children.append(span)
        return span

    def end_tx(self, key: str, t: float, outcome: str = "committed"):
        """Close transaction ``key``; returns its :class:`TxRecord`.

        Safe to call from every participant of a distributed transaction
        — the first closer wins, later calls are ignored (return None).
        """
        root = self._open.pop(key, None)
        if root is None:
            return None
        root.end = t
        record = TxRecord(key, root, outcome)
        self.finished += 1
        self.total_latency += record.latency
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        for category, value in record.breakdown.items():
            self.totals[category] += value
        self.recent.append(record)
        return record

    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, Any]:
        """JSON-friendly totals: per-category time and latency shares."""
        total = self.total_latency
        shares = {
            category: (self.totals[category] / total if total > 0 else 0.0)
            for category in CATEGORIES
        }
        return {
            "transactions": self.finished,
            "outcomes": {k: self.outcomes[k] for k in sorted(self.outcomes)},
            "total_latency_ms": total,
            "category_ms": {c: self.totals[c] for c in CATEGORIES},
            "category_share": shares,
            "unattributed_ms": {
                k: self.unattributed[k] for k in sorted(self.unattributed)
            },
            "open": len(self._open),
            "dropped": self.dropped,
        }


class NullSpanLog:
    """No-op span log carried by the null registry."""

    finished = 0
    dropped = 0
    total_latency = 0.0

    def begin_tx(self, key: str, t: float) -> None:
        pass

    def is_open(self, key: str) -> bool:
        return False

    def record(self, key, name, category, start, end, parent=None):
        return None

    def end_tx(self, key: str, t: float, outcome: str = "committed"):
        return None

    def aggregate(self) -> Dict[str, Any]:
        return {
            "transactions": 0,
            "outcomes": {},
            "total_latency_ms": 0.0,
            "category_ms": {c: 0.0 for c in CATEGORIES},
            "category_share": {c: 0.0 for c in CATEGORIES},
            "unattributed_ms": {},
            "open": 0,
            "dropped": 0,
        }


NULL_SPANS = NullSpanLog()
