"""Periodic utilization sampling (the XRAY "online monitor" loop).

A :class:`Sampler` is a simulation process that wakes every ``interval``
simulated milliseconds and reads the cheap always-on accumulators the
hardware and server layers maintain (CPU busy time, bus transfer time,
DISCPROCESS service time and queue depth, cache hit counts, AUDITPROCESS
buffer depth).  Each wake-up appends one row to the registry's
``samples`` list and refreshes the matching ``util.*`` gauges.

Sampling is read-only: it observes accumulators but changes no simulated
state, so a measured run replays the exact event history of an
unmeasured one.  The sample count is bounded (``max_samples``) so a
run-to-exhaustion simulation still terminates.

The sampler is duck-typed against :class:`repro.encompass.config.
EncompassSystem` and deliberately imports nothing from the rest of
``repro`` — it must be importable from any layer without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

__all__ = ["Sampler"]


class Sampler:
    """Samples component utilization of one system at a fixed interval."""

    def __init__(
        self,
        system: Any,
        interval: float = 100.0,
        max_samples: int = 2000,
    ):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.system = system
        self.registry = system.metrics
        self.interval = interval
        self.max_samples = max_samples
        self.samples_taken = 0
        self.process = None
        self._last: Dict[str, float] = {}
        self._last_cache: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def install(self):
        """Start the sampling process on the system's environment."""
        if self.process is not None:
            return self.process
        self._baseline()
        self.process = self.system.env.process(self._run(), name="xray-sampler")
        return self.process

    def _run(self) -> Generator:
        env = self.system.env
        while self.samples_taken < self.max_samples:
            yield env.timeout(self.interval)
            self.sample(env.now)

    # ------------------------------------------------------------------
    def _nodes(self):
        cluster = self.system.cluster
        for node_name in cluster.node_names:
            yield node_name, cluster.os(node_name).node

    def _accumulators(self) -> Dict[str, float]:
        """Current busy-time accumulator per component (name -> ms)."""
        values: Dict[str, float] = {}
        for node_name, node in self._nodes():
            for cpu in node.cpus:
                values[f"{node_name}.cpu{cpu.number}"] = cpu.busy_ms
            values[f"{node_name}.bus"] = node.buses.busy_ms
        for (node_name, volume), dp in sorted(self.system.disc_processes.items()):
            values[f"{node_name}.{volume}"] = dp.busy_ms
        for key, ap in sorted(self.system.audit_processes.items()):
            values[f"audit.{key}"] = ap.busy_ms
        return values

    def _cache_counts(self) -> Dict[str, tuple]:
        counts: Dict[str, tuple] = {}
        for (node_name, volume), dp in sorted(self.system.disc_processes.items()):
            stats = dp.cache.stats
            counts[f"{node_name}.{volume}"] = (stats.hits, stats.misses)
        return counts

    def _baseline(self) -> None:
        self._last = self._accumulators()
        self._last_cache = self._cache_counts()

    # ------------------------------------------------------------------
    def sample(self, now: float) -> Dict[str, Any]:
        """Take one sample row at simulated time ``now``."""
        registry = self.registry
        row: Dict[str, Any] = {"t": now}
        utilization: Dict[str, float] = {}
        current = self._accumulators()
        for name, busy in current.items():
            delta = busy - self._last.get(name, 0.0)
            utilization[name] = min(max(delta / self.interval, 0.0), 1.0)
        self._last = current
        row["utilization"] = utilization

        queues: Dict[str, float] = {}
        hit_rates: Dict[str, float] = {}
        caches = self._cache_counts()
        for (node_name, volume), dp in sorted(self.system.disc_processes.items()):
            key = f"{node_name}.{volume}"
            queues[key] = float(dp.pending_requests)
            queues[f"{key}.disc_backlog_ms"] = max(dp._disc_free_at - now, 0.0)
            hits, misses = caches[key]
            last_hits, last_misses = self._last_cache.get(key, (0, 0))
            delta_hits = hits - last_hits
            delta_total = delta_hits + (misses - last_misses)
            hit_rates[key] = delta_hits / delta_total if delta_total else 0.0
        self._last_cache = caches
        for key, ap in sorted(self.system.audit_processes.items()):
            queues[f"audit.{key}.buffered"] = float(len(ap.state["buffer"]))
        row["queues"] = queues
        row["cache_hit_rate"] = hit_rates

        registry.samples.append(row)
        for name, value in utilization.items():
            registry.set_gauge(f"util.{name}", value)
        self.samples_taken += 1
        return row
