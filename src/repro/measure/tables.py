"""Fixed-width ASCII tables, shared by the XRAY screen and benchmarks.

Lives in :mod:`repro.measure` (a leaf of the import DAG) so both the
run report and the workload sweep harness can render through one
implementation without an upward import.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

__all__ = ["format_table"]


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render rows as a fixed-width ASCII table (benchmark output)."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(rows[0].keys())
    rendered = [
        [_fmt(row.get(header)) for header in headers] for row in rows
    ]
    widths = [
        max(len(header), *(len(line[i]) for line in rendered))
        for i, header in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for line in rendered:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
