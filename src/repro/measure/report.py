"""Run reports: deterministic JSON plus the human-readable XRAY screen.

:func:`build_report` assembles everything one run measured — counters,
histogram summaries, the per-transaction critical-path breakdown,
component utilization averaged over the sampler's rows, and the
always-available per-volume / TMF / audit statistics — into one plain
dict.  :func:`to_json` serializes it deterministically (sorted keys,
floats rounded), so two runs with the same seed produce byte-identical
reports.  :func:`render_report` draws the "XRAY screen" tables.

Works with the null registry too: an unmeasured system still reports
volume, TMF, and audit statistics (they ride on always-on counters);
only the histogram/span/sample sections come back empty.

No top-level imports from the rest of ``repro`` — the table renderer is
imported lazily inside :func:`render_report` to keep this module
cycle-free.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .tables import format_table

__all__ = ["build_report", "to_json", "render_report", "write_report"]


def build_report(system: Any) -> Dict[str, Any]:
    """A JSON-friendly report of everything ``system`` measured."""
    registry = system.metrics
    env = system.env
    report: Dict[str, Any] = {
        "meta": {
            "nodes": list(system.cluster.node_names),
            "sim_time_ms": env.now,
            "events_processed": env.events_processed,
            "measured": bool(registry.enabled),
            "samples": len(registry.samples),
        },
        "counters": {k: registry.counters[k] for k in sorted(registry.counters)},
        "gauges": {k: registry.gauges[k] for k in sorted(registry.gauges)},
        "histograms": {
            k: registry.histograms[k].summary()
            for k in sorted(registry.histograms)
        },
        "transactions": registry.spans.aggregate(),
        "utilization": _utilization_summary(registry.samples),
        "volumes": {
            f"{node}.{name}": _volume_stats(dp)
            for (node, name), dp in sorted(system.disc_processes.items())
        },
        "tmf": {
            node: {
                "commits": tmf.commits,
                "aborts": tmf.aborts,
                "phase1_sent": tmf.phase1_sent,
                "phase2_sent": tmf.phase2_sent,
                "remote_begins_sent": tmf.remote_begins_sent,
                "state_broadcasts": tmf.broadcaster.broadcasts,
            }
            for node, tmf in sorted(system.tmf.items())
        },
        "audit": {
            key: {
                "forces": ap.forces,
                "forced_block_writes": ap.forced_block_writes,
                "trail_records": ap.trail.total_records,
                "buffered": len(ap.state["buffer"]),
            }
            for key, ap in sorted(system.audit_processes.items())
        },
    }
    # Duck-typed: the TRACE watchdog (when installed) surfaces its alarm
    # summary here — "XRAY aggregates, TRACE narrates".
    watchdog = getattr(system, "watchdog", None)
    if watchdog is not None:
        report["watchdog"] = watchdog.summary()
    return report


def _volume_stats(dp: Any) -> Dict[str, Any]:
    stats = dict(dp._stats())
    stats.pop("ok", None)
    return stats


def _utilization_summary(samples: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Mean/max utilization per component over all sample rows."""
    totals: Dict[str, float] = {}
    peaks: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for row in samples:
        for name, value in row.get("utilization", {}).items():
            totals[name] = totals.get(name, 0.0) + value
            peaks[name] = max(peaks.get(name, 0.0), value)
            counts[name] = counts.get(name, 0) + 1
    return {
        name: {"mean": totals[name] / counts[name], "max": peaks[name]}
        for name in sorted(totals)
    }


# ---------------------------------------------------------------------------
# Deterministic serialization
# ---------------------------------------------------------------------------
def _canonical(value: Any) -> Any:
    """Round floats and stringify keys so json.dumps is reproducible."""
    if isinstance(value, float):
        rounded = round(value, 6)
        return 0.0 if rounded == 0 else rounded
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def to_json(report: Dict[str, Any]) -> str:
    """Serialize deterministically: same run state -> same bytes."""
    return json.dumps(_canonical(report), sort_keys=True, indent=2)


def write_report(system: Any, path: str) -> str:
    """Build + serialize + write the report; returns ``path``."""
    with open(path, "w") as handle:
        handle.write(to_json(build_report(system)))
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# The XRAY screen
# ---------------------------------------------------------------------------
def render_report(report: Dict[str, Any]) -> str:
    """The human-readable tables an operator would watch."""
    sections: List[str] = []
    meta = report["meta"]
    sections.append(
        "XRAY RUN REPORT  "
        f"sim_time={meta['sim_time_ms']:.1f}ms  "
        f"events={meta['events_processed']}  "
        f"nodes={','.join(meta['nodes'])}"
    )

    tx = report["transactions"]
    if tx["transactions"]:
        rows = [
            {
                "phase": category,
                "total_ms": tx["category_ms"][category],
                "share_pct": 100.0 * tx["category_share"][category],
            }
            for category in tx["category_ms"]
        ]
        outcomes = "  ".join(
            f"{name}={count}" for name, count in tx["outcomes"].items()
        )
        sections.append(
            format_table(
                rows,
                title=(
                    f"TRANSACTION CRITICAL PATH  "
                    f"({tx['transactions']} transactions: {outcomes})"
                ),
            )
        )

    utilization = report["utilization"]
    if utilization:
        rows = [
            {
                "component": name,
                "mean_util_pct": 100.0 * utilization[name]["mean"],
                "max_util_pct": 100.0 * utilization[name]["max"],
            }
            for name in utilization
        ]
        sections.append(format_table(rows, title="COMPONENT UTILIZATION"))

    histograms = report["histograms"]
    if histograms:
        rows = []
        for name, summary in histograms.items():
            if not summary.get("count"):
                continue
            rows.append(
                {
                    "histogram": name,
                    "count": summary["count"],
                    "mean": summary["mean"],
                    "p50": summary["p50"],
                    "p90": summary["p90"],
                    "p99": summary["p99"],
                    "max": summary["max"],
                }
            )
        if rows:
            sections.append(format_table(rows, title="LATENCY HISTOGRAMS (ms)"))

    volumes = report["volumes"]
    if volumes:
        rows = [
            {
                "volume": name,
                "cache_hit_pct": 100.0 * stats["cache"]["hit_ratio"],
                "reads": stats["physical_reads"],
                "writes": stats["physical_writes"],
                "lock_waits": stats["lock_waits"],
                "lock_timeouts": stats["lock_timeouts"],
            }
            for name, stats in volumes.items()
        ]
        sections.append(format_table(rows, title="DISC VOLUMES"))

    tmf_rows = [
        {
            "node": node,
            "commits": stats["commits"],
            "aborts": stats["aborts"],
            "phase1": stats["phase1_sent"],
            "phase2": stats["phase2_sent"],
            "broadcasts": stats["state_broadcasts"],
        }
        for node, stats in report["tmf"].items()
    ]
    if tmf_rows:
        sections.append(format_table(tmf_rows, title="TMF"))

    audit_rows = [
        {
            "audit_process": key,
            "forces": stats["forces"],
            "block_writes": stats["forced_block_writes"],
            "trail_records": stats["trail_records"],
        }
        for key, stats in report["audit"].items()
    ]
    if audit_rows:
        sections.append(format_table(audit_rows, title="AUDIT TRAILS"))

    return "\n\n".join(sections)
