"""Named metrics: counters, gauges, and log-scale histograms.

The XRAY measurement subsystem's data model.  A :class:`MetricsRegistry`
holds every metric of one simulation run; probes throughout the stack
reach it as ``env.metrics`` and record through four verbs — ``inc``
(counter), ``set_gauge``, ``observe`` (histogram), and the transaction
span hooks ``tx_begin``/``tx_end``.

Unmeasured runs carry a :class:`NullRegistry` (``enabled`` is False and
every verb is a no-op), so instrumented hot paths pay only a guarded
attribute test — pay-for-what-you-measure.

The :class:`Histogram` uses fixed log-scale buckets (a configurable
number per decade), so p50/p90/p99 are computed without storing samples:
any reported quantile is within one bucket's relative width of the exact
sample quantile, and count/mean/min/max are exact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from .spans import NULL_SPANS, SpanLog

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]


class Histogram:
    """Fixed-bucket log-scale histogram with exact count/sum/min/max.

    Values are assigned to geometric buckets between ``lo`` and ``hi``
    (``buckets_per_decade`` per factor of ten).  Quantiles are read back
    as the geometric midpoint of the bucket holding the requested rank,
    clamped to the observed [min, max] — so the relative error of any
    percentile is bounded by half a bucket width
    (``10**(0.5/buckets_per_decade) - 1``; ~2.3% at the default 50).
    """

    __slots__ = (
        "name", "lo", "hi", "buckets_per_decade", "_log_growth",
        "_bucket_count", "counts", "count", "total", "min", "max",
    )

    def __init__(
        self,
        name: str = "",
        lo: float = 1e-3,
        hi: float = 1e7,
        buckets_per_decade: int = 50,
    ):
        if not (lo > 0 and hi > lo and buckets_per_decade >= 1):
            raise ValueError("need 0 < lo < hi and buckets_per_decade >= 1")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.buckets_per_decade = buckets_per_decade
        self._log_growth = math.log(10.0) / buckets_per_decade
        self._bucket_count = (
            int(math.ceil(math.log10(hi / lo) * buckets_per_decade)) + 2
        )
        # Sparse: bucket index -> count.  Index 0 is the underflow bucket
        # (v <= lo); the last index is the overflow bucket (v >= hi).
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def _index_of(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value >= self.hi:
            return self._bucket_count - 1
        # Bucket i (1-based) covers (lo * g**(i-1), lo * g**i].
        index = 1 + int(math.log(value / self.lo) / self._log_growth)
        return min(max(index, 1), self._bucket_count - 2)

    def bucket_bounds(self, index: int) -> tuple:
        """(low, high] value bounds of bucket ``index``."""
        if index <= 0:
            return (0.0, self.lo)
        if index >= self._bucket_count - 1:
            return (self.hi, math.inf)
        return (
            self.lo * math.exp((index - 1) * self._log_growth),
            self.lo * math.exp(index * self._log_growth),
        )

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = self._index_of(value)
        self.counts[index] = self.counts.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]), within one bucket's resolution."""
        if self.count == 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = min(max(int(math.ceil(q * self.count)), 1), self.count)
        if rank == self.count:
            return self.max
        cumulative = 0
        index = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= rank:
                break
        low, high = self.bucket_bounds(index)
        if not math.isfinite(high):          # overflow bucket
            return self.max
        representative = math.sqrt(max(low, self.lo * 1e-12) * high)
        return min(max(representative, self.min), self.max)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` (same bucket layout) into this histogram."""
        if (other.lo, other.hi, other.buckets_per_decade) != (
            self.lo, self.hi, self.buckets_per_decade
        ):
            raise ValueError("cannot merge histograms with different buckets")
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name or '?'} count={self.count} "
            f"mean={self.mean:.3f}>"
        )


class MetricsRegistry:
    """All metrics of one measured run (the live registry)."""

    enabled = True

    def __init__(self, histogram_defaults: Optional[Dict[str, Any]] = None):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.samples: list = []          # appended by measure.sampler
        self.spans = SpanLog()
        self._histogram_defaults = dict(histogram_defaults or {})

    # -- verbs ----------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str, **config: Any) -> Histogram:
        """The named histogram, created on first use."""
        hist = self.histograms.get(name)
        if hist is None:
            settings = dict(self._histogram_defaults)
            settings.update(config)
            hist = Histogram(name, **settings)
            self.histograms[name] = hist
        return hist

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    # -- transaction span hooks ----------------------------------------
    def tx_begin(self, key: str, t: float) -> None:
        self.spans.begin_tx(key, t)

    def tx_end(self, key: str, t: float, outcome: str = "committed") -> None:
        finished = self.spans.end_tx(key, t, outcome)
        if finished is not None:
            self.observe("tx.latency_ms", finished.latency)
            self.inc(f"tx.{outcome}")

    # -- readout --------------------------------------------------------
    def counter_value(self, name: str) -> float:
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of every metric (deterministic)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].summary() for k in sorted(self.histograms)
            },
        }


class NullRegistry:
    """The no-op registry carried by unmeasured runs.

    Every verb returns immediately; probe sites additionally guard with
    ``if m.enabled:`` so argument construction is skipped too.
    """

    enabled = False
    spans = NULL_SPANS

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.samples: list = []

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def histogram(self, name: str, **config: Any) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        pass

    def tx_begin(self, key: str, t: float) -> None:
        pass

    def tx_end(self, key: str, t: float, outcome: str = "committed") -> None:
        pass

    def counter_value(self, name: str) -> float:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: shared no-op registry for contexts with no cluster (bare Environments)
NULL_REGISTRY = NullRegistry()
