"""FASTPATH bench harness: pinned-seed experiments with a regression gate.

``python -m repro.bench`` executes the repository's E1–E10/F1–F4
experiment suite (scaled-down "smoke" variants by default) at pinned
seeds and emits one schema-versioned report, ``BENCH_fastpath.json``.
Each experiment contributes two kinds of numbers:

* **deterministic counters** — events stepped, messages sent, commits,
  audit forces, takeovers ... — pure functions of the seed.  Any drift
  against the checked-in baseline means the simulated history changed
  and is a **hard failure** (exit code 1): performance work must leave
  behaviour byte-identical.
* **advisory wall-clock** — the median real time of N repeats.  A
  regression beyond a generous threshold (default 40%) is a **soft
  failure**: surfaced (and annotated in CI) but not fatal, because CI
  runners are noisy.

The comparator (:mod:`repro.bench.compare`) produces one of four
verdicts per run: ``clean``, ``counter-drift``, ``counter-improvement``
(cost counters dropped and nothing else drifted — still gates, but is
reported as an optimization rather than unexplained drift), and
``wall-clock-soft-fail``.

Like :mod:`repro.lint`, this package is *tooling*: it imports the stack
freely and nothing in the stack may import it.
"""

from .compare import (
    CLEAN,
    COUNTER_DRIFT,
    COUNTER_IMPROVEMENT,
    SCHEMA,
    WALL_CLOCK_SOFT_FAIL,
    Comparison,
    compare_reports,
)
from .experiments import (
    EXPERIMENTS,
    determinism_digests,
    run_experiment,
    run_suite,
)

__all__ = [
    "CLEAN",
    "COUNTER_DRIFT",
    "COUNTER_IMPROVEMENT",
    "Comparison",
    "EXPERIMENTS",
    "SCHEMA",
    "WALL_CLOCK_SOFT_FAIL",
    "compare_reports",
    "determinism_digests",
    "run_experiment",
    "run_suite",
]
