"""Baseline comparison for bench reports.

A report (see :func:`repro.bench.experiments.run_suite`) is compared
against the checked-in baseline with two very different standards:

* ``counters`` are deterministic — pure functions of the pinned seeds —
  so **any** difference is a hard failure (``counter-drift``).  This is
  the gate that lets performance work ship: prove the optimized
  simulator replays the exact same history.
* ``wall_ms`` is advisory — CI runners are noisy — so only a regression
  beyond a generous threshold (default +40%) is surfaced, and even then
  only as a soft failure (``wall-clock-soft-fail``) that annotates the
  run without breaking it.

One refinement to the counter rule: a handful of counters are *costs*
(message round-trips, audit forces, checkpoint sends — see
``_COST_COUNTERS``/``_COST_PREFIXES``).  When such a counter **drops**
and nothing else drifts, the verdict is ``counter-improvement`` instead
of ``counter-drift``: the gate still fails (the baseline no longer
describes reality and must be re-recorded), but the report says plainly
that the history got *cheaper*, not merely *different* — exactly what a
batching change like BOXCAR produces.  Any non-cost mismatch, or a cost
counter going up, is ordinary drift.

Comparison only makes sense between like runs: a baseline recorded in
``smoke`` mode is not compared against a ``full`` run (mode mismatch is
reported as counter drift, since the counters cannot agree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = [
    "CLEAN",
    "COUNTER_DRIFT",
    "COUNTER_IMPROVEMENT",
    "Comparison",
    "SCHEMA",
    "WALL_CLOCK_SOFT_FAIL",
    "compare_reports",
]

#: report schema version; bump on any incompatible shape change.
SCHEMA = "repro.bench/1"

CLEAN = "clean"
COUNTER_DRIFT = "counter-drift"
COUNTER_IMPROVEMENT = "counter-improvement"
WALL_CLOCK_SOFT_FAIL = "wall-clock-soft-fail"

#: counters that measure *cost* — lower is strictly better.  A decrease
#: here (with no other drift) is an improvement, not ordinary drift.
_COST_COUNTERS = frozenset({
    "events",
    "msg_local",
    "msg_network",
    "audit_forces",
    "checkpoints",
    "block_reads",
    "block_writes",
    "lock_waits",
    "lock_timeouts",
    "restarts",
})
_COST_PREFIXES = ("audit_batches_", "net_msgs_")


def _is_cost_counter(key: str) -> bool:
    return key in _COST_COUNTERS or key.startswith(_COST_PREFIXES)


@dataclass
class Comparison:
    """Outcome of diffing a run against a baseline."""

    verdict: str
    #: hard problems — counter mismatches, missing experiments, schema
    #: or mode disagreement.  Non-empty iff verdict is counter-drift.
    errors: List[str] = field(default_factory=list)
    #: soft problems — wall-clock regressions beyond the threshold.
    warnings: List[str] = field(default_factory=list)
    #: cost counters that *dropped* — reported apart from drift so an
    #: intentional optimization reads as such.  Still gates the run:
    #: the baseline must be re-recorded.
    improvements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        # Both counter verdicts gate: the baseline no longer matches
        # reality.  Improvement just tells the operator *why*.
        return self.verdict not in (COUNTER_DRIFT, COUNTER_IMPROVEMENT)


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = 0.40,
) -> Comparison:
    """Diff ``current`` against ``baseline``.

    ``threshold`` is the tolerated fractional wall-clock regression
    (0.40 = the run may be up to 40% slower before a soft fail).
    """
    errors: List[str] = []
    warnings: List[str] = []
    improvements: List[str] = []

    if baseline.get("schema") != current.get("schema"):
        errors.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs current {current.get('schema')!r}"
        )
    if baseline.get("mode") != current.get("mode"):
        errors.append(
            f"mode mismatch: baseline is {baseline.get('mode')!r}, "
            f"run is {current.get('mode')!r} — counters are not comparable"
        )

    base_exp = baseline.get("experiments", {})
    cur_exp = current.get("experiments", {})
    if not errors:
        for name in base_exp:
            if name not in cur_exp:
                errors.append(f"{name}: present in baseline, missing from run")
        for name, section in cur_exp.items():
            base = base_exp.get(name)
            if base is None:
                errors.append(f"{name}: not in baseline (re-record it)")
                continue
            _compare_counters(name, base["counters"], section["counters"],
                              errors, improvements)
            _compare_wall(name, base.get("wall_ms"), section.get("wall_ms"),
                          threshold, warnings)

    if errors:
        return Comparison(COUNTER_DRIFT, errors=errors, warnings=warnings,
                          improvements=improvements)
    if improvements:
        return Comparison(COUNTER_IMPROVEMENT, warnings=warnings,
                          improvements=improvements)
    if warnings:
        return Comparison(WALL_CLOCK_SOFT_FAIL, warnings=warnings)
    return Comparison(CLEAN)


def _compare_counters(
    name: str,
    base: Dict[str, int],
    current: Dict[str, int],
    errors: List[str],
    improvements: List[str],
) -> None:
    for key in sorted(set(base) | set(current)):
        if key not in current:
            errors.append(f"{name}.{key}: in baseline ({base[key]}), missing from run")
        elif key not in base:
            errors.append(f"{name}.{key}: new counter ({current[key]}) not in baseline")
        elif base[key] != current[key]:
            if _is_cost_counter(key) and current[key] < base[key]:
                saved = base[key] - current[key]
                improvements.append(
                    f"{name}.{key}: baseline {base[key]} -> run {current[key]} "
                    f"(-{saved}, cost counter improved)"
                )
            else:
                errors.append(
                    f"{name}.{key}: baseline {base[key]} != run {current[key]}"
                )


def _compare_wall(
    name: str,
    base: Any,
    current: Any,
    threshold: float,
    warnings: List[str],
) -> None:
    if not base or not current:
        return
    base_ms = base.get("median", 0.0)
    cur_ms = current.get("median", 0.0)
    if base_ms < 50.0:
        # Sub-50ms experiments are dominated by interpreter noise; a
        # meaningful regression there will also show up in the big ones.
        return
    ratio = cur_ms / base_ms
    if ratio > 1.0 + threshold:
        warnings.append(
            f"{name}: wall-clock {cur_ms:.1f}ms vs baseline {base_ms:.1f}ms "
            f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
        )
