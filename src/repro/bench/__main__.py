"""Command-line entry point: ``python -m repro.bench``.

Runs the pinned-seed experiment suite, writes the schema-versioned
report, and (when a baseline exists) compares against it:

* exit 1 on **counter drift** — the simulated history changed;
* exit 0 with ``::warning::`` lines on a wall-clock **soft fail**;
* exit 0 silently when clean.

``--update-baseline`` re-records the baseline in place (do this in the
same change that intentionally alters simulated behaviour, and say why
in the commit message).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .compare import COUNTER_DRIFT, COUNTER_IMPROVEMENT, compare_reports
from .experiments import EXPERIMENTS, determinism_digests, run_suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the FASTPATH bench suite and compare to the baseline.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true",
        help="scaled-down CI run, 1 repeat per experiment (default)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="figure-sized run, 3 repeats per experiment",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        help="run only this experiment (repeatable); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names and exit"
    )
    parser.add_argument(
        "--out", default="out/BENCH_fastpath.json", metavar="PATH",
        help="where to write the report (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", default="benchmarks/BENCH_baseline.json", metavar="PATH",
        help="baseline to compare against (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the report to the baseline path instead of comparing",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.40, metavar="FRAC",
        help="tolerated wall-clock regression (default: %(default)s)",
    )
    parser.add_argument(
        "--digest", action="store_true",
        help="print the determinism digests (XRAY/TRACE SHA-256) and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.digest:
        for key, value in determinism_digests().items():
            print(f"{key}  {value}")
        return 0

    scale = "full" if args.full else "smoke"
    repeats = 3 if args.full else 1
    print(f"repro.bench: running {scale} suite "
          f"({len(args.only) if args.only else len(EXPERIMENTS)} experiments, "
          f"{repeats} repeat{'s' if repeats != 1 else ''})", flush=True)

    def progress(name, section):
        wall = section["wall_ms"]["median"]
        print(f"  {name:<24s} {wall:>9.1f} ms  "
              f"{_counters_brief(section['counters'])}", flush=True)

    report = run_suite(scale=scale, repeats=repeats, only=args.only,
                       progress=progress)

    out_path = Path(args.baseline if args.update_baseline else args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"repro.bench: report written to {out_path}")
    if args.update_baseline:
        print("repro.bench: baseline updated; commit it with an explanation")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"repro.bench: no baseline at {baseline_path}, skipping compare")
        return 0
    baseline = json.loads(baseline_path.read_text())
    if args.only:
        # A partial run compares only the experiments it ran.
        baseline = dict(baseline)
        baseline["experiments"] = {
            k: v for k, v in baseline.get("experiments", {}).items()
            if k in set(args.only)
        }
        baseline["mode"] = report["mode"]
    comparison = compare_reports(baseline, report, threshold=args.threshold)
    for warning in comparison.warnings:
        print(f"::warning::repro.bench {warning}")
    for improvement in comparison.improvements:
        # Improvements are not drift: call them out as such.
        print(f"::notice::repro.bench improved {improvement}")
    if comparison.verdict == COUNTER_DRIFT:
        print("repro.bench: COUNTER DRIFT — simulated history changed:",
              file=sys.stderr)
        for error in comparison.errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    if comparison.verdict == COUNTER_IMPROVEMENT:
        print("repro.bench: COUNTER IMPROVEMENT — cost counters dropped; "
              "re-record the baseline to accept "
              "(python -m repro.bench --smoke --update-baseline):",
              file=sys.stderr)
        for improvement in comparison.improvements:
            print(f"  {improvement}", file=sys.stderr)
        return 1
    print(f"repro.bench: verdict {comparison.verdict}")
    return 0


def _counters_brief(counters) -> str:
    shown = {k: counters[k] for k in list(counters)[:3]}
    inner = ", ".join(f"{k}={v}" for k, v in shown.items())
    suffix = ", ..." if len(counters) > 3 else ""
    return f"{{{inner}{suffix}}}"


if __name__ == "__main__":
    sys.exit(main())
