"""The pinned-seed experiment suite behind ``python -m repro.bench``.

Each experiment is a compact, self-contained reproduction of one
benchmark module under ``benchmarks/`` (E1–E10, F1–F4), parameterized by
*scale*: ``smoke`` runs a scaled-down episode suitable for CI, ``full``
the figure-sized one.  Every experiment returns

``{"counters": {...}, "info": {...}}``

where ``counters`` holds only deterministic integers (exact-compared
against the baseline by :mod:`repro.bench.compare`) and ``info`` holds
advisory numbers (simulated throughput, latencies) that are reported
but never gated on.

Seeds are pinned per experiment and must never change casually: the
committed baseline encodes the exact history they produce.
"""

from __future__ import annotations

import hashlib
import random
import time
from statistics import median
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.banking import (
    check_consistency,
    debit_credit_program,
    install_banking,
    populate_banking,
)
from repro.apps.manufacturing import MANUFACTURING_NODES, build_manufacturing_system
from repro.core import Rollforward, dump_volume
from repro.discprocess import (
    BoxcarPolicy,
    FileSchema,
    KEY_SEQUENCED,
    KeySequencedFile,
    MemoryBlockStore,
    PartitionSpec,
)
from repro.encompass import SystemBuilder
from repro.guardian import Cluster, ConcurrentPair
from repro.hardware import Latencies, Network, Node
from repro.sim import Environment
from repro.workloads import KeyChooser, run_closed_loop

__all__ = [
    "EXPERIMENTS",
    "determinism_digests",
    "run_experiment",
    "run_suite",
]

SMOKE = "smoke"
FULL = "full"


# ----------------------------------------------------------------------
# Shared builders (mirrors benchmarks/_common.py, without pytest)
# ----------------------------------------------------------------------
def _build_banking(
    seed: int,
    cpus: int = 4,
    volumes: int = 1,
    accounts: int = 24,
    branches: int = 2,
    tellers: int = 8,
    terminals: int = 8,
    keep_trace: bool = False,
    cache_capacity: int = 256,
    restart_limit: int = 8,
    boxcar: Any = True,
) -> Tuple[Any, List[str]]:
    builder = SystemBuilder(seed=seed, keep_trace=keep_trace, boxcar=boxcar)
    builder.add_node("alpha", cpus=cpus)
    cpu_pairs = [(c, c + 1) for c in range(0, cpus - 1, 2)]
    volume_names = []
    for v in range(volumes):
        pair = cpu_pairs[v % len(cpu_pairs)]
        name = f"$data{v}" if volumes > 1 else "$data"
        builder.add_volume("alpha", name, cpus=pair, cache_capacity=cache_capacity)
        volume_names.append(name)
    if volumes == 1:
        install_banking(builder, "alpha", "$data", server_instances=3)
    else:
        account_volumes = volume_names[2:] if volumes > 2 else volume_names
        step = max(accounts // len(account_volumes), 1)
        partitions = [PartitionSpec("alpha", account_volumes[0])]
        for index in range(1, len(account_volumes)):
            partitions.append(
                PartitionSpec(
                    "alpha", account_volumes[index], low_key=(index * step,)
                )
            )
        install_banking(
            builder, "alpha", volume_names[0],
            server_instances=3,
            data_partitions=tuple(partitions),
            meta_partition=PartitionSpec("alpha", volume_names[0]),
            history_partition=PartitionSpec("alpha", volume_names[1 % volumes]),
        )
    tcp_cpus = (cpus - 2, cpus - 1)
    builder.add_tcp("alpha", "$tcp1", cpus=tcp_cpus, restart_limit=restart_limit)
    builder.add_program("alpha", "$tcp1", "debit-credit", debit_credit_program)
    terminal_ids = [f"T{i}" for i in range(terminals)]
    for terminal in terminal_ids:
        builder.add_terminal("alpha", "$tcp1", terminal, "debit-credit")
    system = builder.build()
    populate_banking(system, "alpha", branches=branches,
                     tellers_per_branch=tellers // branches, accounts=accounts)
    return system, terminal_ids


def _banking_input(accounts: int, branches: int = 2, tellers: int = 8):
    def make_input(rng, terminal_id, iteration):
        return {
            "account_id": rng.randrange(accounts),
            "teller_id": rng.randrange(tellers),
            "branch_id": rng.randrange(branches),
            "amount": rng.choice([5, 10, 25, -5]),
            "allow_overdraft": True,
        }

    return make_input


def _drive(system, terminals, duration, accounts, seed=5, think_time=15.0,
           branches=2, tellers=8):
    return run_closed_loop(
        system, "alpha", "$tcp1", terminals,
        _banking_input(accounts, branches=branches, tellers=tellers),
        duration=duration, think_time=think_time, rng=random.Random(seed),
    )


def _settle(system, ms=1000.0, node="alpha"):
    proc = system.spawn(node, "$settle",
                        lambda p: (yield system.env.timeout(ms)), cpu=0)
    system.cluster.run(proc.sim_process)


def _base_counters(system) -> Dict[str, int]:
    """Deterministic counters every full-system experiment reports."""
    tracer = system.tracer
    return {
        "events": int(system.env.events_processed),
        "msg_local": int(tracer.counters["msg_local"]),
        "msg_network": int(tracer.counters["msg_network"]),
        "commits": sum(t.commits for t in system.tmf.values()),
        "aborts": sum(t.aborts for t in system.tmf.values()),
        "audit_forces": sum(
            a.forced_block_writes for a in system.audit_processes.values()
        ),
    }


def _consistent(system, node="alpha") -> int:
    return int(bool(check_consistency(system, node)["consistent"]))


# ----------------------------------------------------------------------
# E1 — online recovery through a CPU outage
# ----------------------------------------------------------------------
def e1_online_recovery(scale: str) -> Dict[str, Any]:
    duration = 3000.0 if scale == SMOKE else 6000.0
    fail_at, restore_at = 1000.0, 1800.0
    system, terminals = _build_banking(seed=41, accounts=32, terminals=8)

    def chaos(proc):
        yield system.env.timeout(fail_at)
        system.cluster.node("alpha").fail_cpu(0)
        yield system.env.timeout(restore_at - fail_at)
        system.cluster.node("alpha").restore_cpu(0)

    system.spawn("alpha", "$chaos", chaos, cpu=1)
    result = _drive(system, terminals, duration=duration, accounts=32)
    _settle(system)
    during = sum(1 for m in result.metrics
                 if m.ok and fail_at <= m.end < restore_at)
    counters = _base_counters(system)
    counters.update(
        committed=result.committed,
        failed=result.failed,
        commits_during_outage=during,
        consistent=_consistent(system),
    )
    return {"counters": counters, "info": {"tx_per_s": result.throughput}}


# ----------------------------------------------------------------------
# E2 — checkpoint-instead-of-WAL accounting
# ----------------------------------------------------------------------
def e2_checkpoint_vs_wal(scale: str) -> Dict[str, Any]:
    duration = 2000.0 if scale == SMOKE else 5000.0
    system, terminals = _build_banking(seed=47, accounts=64, terminals=8)
    result = _drive(system, terminals, duration=duration, accounts=64)
    _settle(system)
    dp = system.disc_processes[("alpha", "$data")]
    counters = _base_counters(system)
    counters.update(
        committed=result.committed,
        checkpoints=dp.checkpoints_sent,
        audit_records=dp.state["audit_seq"],
    )
    return {"counters": counters, "info": {"tx_per_s": result.throughput}}


# ----------------------------------------------------------------------
# E3 — commit cost vs participating nodes
# ----------------------------------------------------------------------
def e3_commit_protocols(scale: str) -> Dict[str, Any]:
    per_shape = 3 if scale == SMOKE else 10
    builder = SystemBuilder(seed=53)
    nodes = ("n1", "n2", "n3", "n4", "n5")
    for name in nodes:
        builder.add_node(name, cpus=4)
        builder.add_volume(name, "$data", cpus=(0, 1))
    for name in nodes:
        builder.define_file(
            FileSchema(
                name=f"ledger.{name}",
                organization=KEY_SEQUENCED,
                primary_key=("entry",),
                audited=True,
                partitions=(PartitionSpec(name, "$data"),),
            )
        )
    system = builder.build()
    tmf = system.tmf["n1"]
    client = system.clients["n1"]
    net_per_shape: Dict[int, int] = {}
    for shape, touch in enumerate(
        (["n1"], ["n1", "n2"], ["n1", "n2", "n3"]), start=1
    ):
        before = system.tracer.counters["msg_network"]

        def body(proc, touch=touch, shape=shape):
            for i in range(per_shape):
                transid = yield from tmf.begin(proc)
                for node in touch:
                    yield from client.insert(
                        proc, f"ledger.{node}",
                        {"entry": i + 1000 * shape, "value": i},
                        transid=transid,
                    )
                yield from tmf.end(proc, transid)
            yield system.env.timeout(1500)  # drain safe-delivery phase 2

        proc = system.spawn("n1", f"$run{shape}", body, cpu=0)
        system.cluster.run(proc.sim_process)
        net_per_shape[shape] = system.tracer.counters["msg_network"] - before
    counters = _base_counters(system)
    counters.update(
        net_msgs_1node=net_per_shape[1],
        net_msgs_2node=net_per_shape[2],
        net_msgs_3node=net_per_shape[3],
    )
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# E4 — lock contention under key skew
# ----------------------------------------------------------------------
def e4_locking(scale: str) -> Dict[str, Any]:
    duration = 1500.0 if scale == SMOKE else 4000.0
    system, terminals = _build_banking(seed=59, accounts=16, terminals=8)
    rng = random.Random(61)
    chooser = KeyChooser(rng, 16, skew=1.2)

    def make_input(r, terminal_id, iteration):
        return {
            "account_id": chooser.choose(),
            "teller_id": r.randrange(8),
            "branch_id": r.randrange(2),
            "amount": r.choice([5, 10, -5]),
            "allow_overdraft": True,
        }

    result = run_closed_loop(
        system, "alpha", "$tcp1", terminals, make_input,
        duration=duration, think_time=10.0, rng=rng,
    )
    _settle(system)
    dp = system.disc_processes[("alpha", "$data")]
    counters = _base_counters(system)
    counters.update(
        committed=result.committed,
        lock_waits=dp.locks.waits,
        lock_timeouts=dp.locks.timeouts,
        restarts=result.restarts,
        consistent=_consistent(system),
    )
    return {"counters": counters, "info": {"tx_per_s": result.throughput}}


# ----------------------------------------------------------------------
# E5 — ROLLFORWARD after total node failure
# ----------------------------------------------------------------------
def e5_rollforward(scale: str) -> Dict[str, Any]:
    post_archive = 1000.0 if scale == SMOKE else 3000.0
    system, terminals = _build_banking(seed=73, accounts=48, terminals=6)
    dp = system.disc_processes[("alpha", "$data")]
    _drive(system, terminals, duration=1000.0, accounts=48, seed=1)
    _settle(system)
    archive = dump_volume(dp)
    _drive(system, terminals, duration=post_archive, accounts=48, seed=2)
    _settle(system)

    node = system.cluster.node("alpha")
    node.total_failure()
    node.restore_all_cpus()
    system.audit_processes["alpha"].cold_restart(2, 3)
    tmf = system.tmf["alpha"]
    tmf.tmp.restart(2, 3)
    tmf.backout_process.restart(2, 3)
    tmf.reset_after_total_failure()
    dp.cold_restart(0, 1)
    rollforward = Rollforward(tmf)
    rollforward.rebuild_dispositions()
    holder: Dict[str, Any] = {}

    def recover(proc):
        holder["stats"] = yield from rollforward.recover_volume(proc, dp, archive)

    start = system.env.now
    proc = system.spawn("alpha", "$rf", recover, cpu=0)
    system.cluster.run(proc.sim_process)
    counters = _base_counters(system)
    counters.update(
        audit_scanned=holder["stats"].audit_records_scanned,
        reapplied=holder["stats"].records_reapplied,
        consistent=_consistent(system),
    )
    return {"counters": counters,
            "info": {"recovery_ms": system.env.now - start}}


# ----------------------------------------------------------------------
# E6 — partition and the in-doubt window
# ----------------------------------------------------------------------
def e6_partition(scale: str) -> Dict[str, Any]:
    builder = SystemBuilder(seed=83)
    for name in ("home", "remote"):
        builder.add_node(name, cpus=4)
        builder.add_volume(name, "$data", cpus=(0, 1))
    builder.define_file(
        FileSchema(
            name="rledger",
            organization=KEY_SEQUENCED,
            primary_key=("entry",),
            audited=True,
            partitions=(PartitionSpec("remote", "$data"),),
        )
    )
    system = builder.build()
    tmf_home = system.tmf["home"]
    tmf_remote = system.tmf["remote"]
    dp_remote = system.disc_processes[("remote", "$data")]
    observations: Dict[str, Any] = {}

    def committer(proc, transid):
        from repro.core import TransactionAborted

        try:
            yield from tmf_home.end(proc, transid)
            observations["home_outcome"] = 1
        except TransactionAborted:
            observations["home_outcome"] = 0

    def body(proc):
        transid = yield from tmf_home.begin(proc)
        yield from system.clients["home"].insert(
            proc, "rledger", {"entry": 1, "value": 9}, transid=transid
        )
        node_os = system.cluster.os("home")
        commit_proc = node_os.spawn(
            "$c", 1, lambda p: committer(p, transid), register=False
        )
        while not tmf_remote.records[transid].phase1_acked:
            yield system.env.timeout(1)
        system.cluster.network.partition(["home"], ["remote"])
        yield commit_proc.sim_process
        yield system.env.timeout(1000)
        observations["locks_during"] = dp_remote.locks.held_count()
        system.cluster.network.heal()
        yield system.env.timeout(2000)
        observations["locks_after"] = dp_remote.locks.held_count()

    proc = system.spawn("home", "$episode", body, cpu=0)
    system.cluster.run(proc.sim_process)
    counters = _base_counters(system)
    counters.update(
        home_outcome=observations["home_outcome"],
        locks_during=observations["locks_during"],
        locks_after=observations["locks_after"],
    )
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# E7 — structured-file storage microbenchmarks (real data structures)
# ----------------------------------------------------------------------
def e7_storage(scale: str) -> Dict[str, Any]:
    n = 1500 if scale == SMOKE else 5000
    store = MemoryBlockStore()
    tree = KeySequencedFile(store, "t", create=True)
    for i in range(n):
        tree.insert((i,), {"v": i})
    rng = random.Random(7)
    probe = [rng.randrange(n) for _ in range(500)]
    total = 0
    for key in probe:
        total += tree.read((key,))["v"]
    scanned = len(tree.scan(low=(n // 5,), high=(n // 2,)))
    counters = {
        "records": tree.record_count,
        "probe_sum": total,
        "scanned": scanned,
        "block_reads": store.counters.reads,
        "block_writes": store.counters.writes,
    }
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# E8 — restart limit under transfer contention
# ----------------------------------------------------------------------
def e8_restart(scale: str) -> Dict[str, Any]:
    duration = 1500.0 if scale == SMOKE else 4000.0
    builder = SystemBuilder(seed=97, keep_trace=False)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_banking(builder, "alpha", "$data", server_instances=4)

    def transfer_server(ctx, request):
        a = yield from ctx.read("account", (request["a"],), lock=True,
                                lock_timeout=100)
        yield from ctx.pause(request.get("hold", 20))
        b = yield from ctx.read("account", (request["b"],), lock=True,
                                lock_timeout=100)
        a["balance"] -= 1
        b["balance"] += 1
        yield from ctx.update("account", a)
        yield from ctx.update("account", b)
        return {"ok": True}

    def transfer_program(ctx, data):
        yield from ctx.send_ok("$xfer", data)
        return True

    builder.add_server_class("alpha", "$xfer", transfer_server, instances=4)
    builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=4)
    builder.add_program("alpha", "$tcp1", "transfer", transfer_program)
    terminals = [f"T{i}" for i in range(6)]
    for terminal in terminals:
        builder.add_terminal("alpha", "$tcp1", terminal, "transfer")
    system = builder.build()
    populate_banking(system, "alpha", branches=1, tellers_per_branch=1,
                     accounts=5)

    def make_input(rng, terminal_id, iteration):
        a, b = rng.sample(range(5), 2)
        return {"a": a, "b": b, "hold": 20}

    result = run_closed_loop(
        system, "alpha", "$tcp1", terminals, make_input,
        duration=duration, think_time=5.0, rng=random.Random(3),
    )
    _settle(system)
    attempts = sorted(m.attempts for m in result.metrics if m.ok)
    counters = _base_counters(system)
    counters.update(
        committed=result.committed,
        failed=result.failed,
        restarts=result.restarts,
        max_attempts=attempts[-1] if attempts else 0,
    )
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# E9 — single-module failure mid-load
# ----------------------------------------------------------------------
def e9_failure_sweep(scale: str) -> Dict[str, Any]:
    duration = 2500.0 if scale == SMOKE else 4000.0
    system, terminals = _build_banking(seed=109, accounts=32, terminals=6)
    node = system.cluster.node("alpha")
    component = node.cpus[0]

    def chaos():
        yield system.env.timeout(800)
        component.fail(reason="bench E9")
        yield system.env.timeout(700)
        component.restore()

    system.env.process(chaos(), name="chaos")
    result = _drive(system, terminals, duration=duration, accounts=32)
    _settle(system)
    after = sum(1 for m in result.metrics if m.ok and m.end >= 800)
    counters = _base_counters(system)
    counters.update(
        committed=result.committed,
        committed_after_failure=after,
        consistent=_consistent(system),
    )
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# E10 — process-pair takeover and checkpoint overhead
# ----------------------------------------------------------------------
class _KvPair(ConcurrentPair):
    """A minimal replicated key-value service (mirrors bench E10)."""

    def state_defaults(self):
        return {"kv": {}, "completed": {}}

    def serve_request(self, proc, message):
        op = message.payload
        recorded = self.state["completed"].get(message.msg_id)
        if recorded is not None:
            proc.reply(message, recorded)
            return
        if op.get("op") == "put":
            self.state["kv"][op["key"]] = op["value"]
            reply = {"ok": True, "version": len(self.state["kv"])}
            yield from self.checkpoint_update(
                "kv", updates={op["key"]: op["value"]}
            )
            yield from self.checkpoint_update(
                "completed", updates={message.msg_id: reply}, _charge=False
            )
        else:
            reply = {"ok": True, "value": self.state["kv"].get(op["key"])}
        proc.reply(message, reply)


def e10_process_pairs(scale: str) -> Dict[str, Any]:
    puts = 40 if scale == SMOKE else 120
    cluster = Cluster(seed=113)
    cluster.add_node("alpha", cpu_count=4)
    cluster.connect_all()
    pair = _KvPair(cluster.os("alpha"), "$kv", 0, 1, cluster.tracer)
    done: Dict[str, Any] = {}

    def client(proc):
        for i in range(puts):
            if i == puts // 2:
                cluster.node("alpha").fail_cpu(0)
            yield from proc.request(
                "alpha", "$kv", {"op": "put", "key": i % 8, "value": i},
                timeout=500.0,
            )
        reply = yield from proc.request(
            "alpha", "$kv", {"op": "get", "key": 0}, timeout=500.0
        )
        done["value"] = reply["value"]

    proc = cluster.os("alpha").spawn("$client", 2, client, register=False)
    cluster.run(proc.sim_process)
    counters = {
        "events": int(cluster.env.events_processed),
        "msg_local": int(cluster.tracer.counters["msg_local"]),
        "takeovers": pair.takeovers,
        "checkpoints": pair.checkpoints_sent,
        "kv_size": len(pair.state["kv"]),
        "final_value": done["value"],
    }
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# E11 — BOXCAR flush-policy sweep (audit round-trips per commit)
# ----------------------------------------------------------------------
def e11_boxcar(scale: str) -> Dict[str, Any]:
    """The same pinned workload under three audit-forwarding policies.

    ``sync`` is the legacy one-AppendAudit-per-operation path,
    ``default`` the stock boxcar, ``wide`` a deliberately large one.
    The counters are the measured evidence for the group-commit claim:
    batches sent (audit round-trips), records carried, and round-trips
    saved relative to synchronous forwarding — all while the
    consistency check still passes.
    """
    duration = 1200.0 if scale == SMOKE else 4000.0
    policies: List[Tuple[str, Any]] = [
        ("sync", False),
        ("default", True),
        ("wide", BoxcarPolicy(max_records=64, max_wait_ms=20.0)),
    ]
    counters: Dict[str, int] = {}
    info: Dict[str, Any] = {}
    events = 0
    for label, policy in policies:
        system, terminals = _build_banking(
            seed=127, accounts=32, terminals=8, boxcar=policy
        )
        result = _drive(system, terminals, duration=duration, accounts=32,
                        seed=6)
        _settle(system)
        dp = system.disc_processes[("alpha", "$data")]
        batches = dp.audit_batches_sent
        records = dp.audit_records_forwarded
        counters[f"committed_{label}"] = result.committed
        counters[f"audit_batches_{label}"] = batches
        counters[f"audit_records_{label}"] = records
        counters[f"rt_saved_{label}"] = records - batches
        counters[f"consistent_{label}"] = _consistent(system)
        events += system.env.events_processed
        info[f"tx_per_s_{label}"] = result.throughput
        if result.committed:
            info[f"audit_rt_per_commit_{label}"] = round(
                batches / result.committed, 3
            )
    counters["events"] = events
    return {"counters": counters, "info": info}


# ----------------------------------------------------------------------
# F1 — redundant-path survey of the hardware fabric
# ----------------------------------------------------------------------
def f1_hardware_paths(scale: str) -> Dict[str, Any]:
    env = Environment()
    network = Network(env, Latencies())
    for name in ("alpha", "beta", "gamma"):
        node = Node(env, name, cpu_count=4)
        node.add_volume("$d0", 0, 1)
        node.add_volume("$d1", 2, 3)
        network.add_node(node)
    network.connect_all()
    total = 0
    survivable = 0
    for node in network.nodes.values():
        for component in node.components():
            total += 1
            component.fail(reason="survey")
            volumes_ok = all(
                any(volume.accessible_from(cpu) for cpu in node.cpus)
                for volume in node.volumes.values()
            )
            network_ok = all(
                network.connected(a, b)
                for a in network.nodes
                for b in network.nodes
                if a < b and network.nodes[a].alive and network.nodes[b].alive
            )
            survivable += int(volumes_ok and network_ok)
            component.restore()
            for volume in node.volumes.values():
                if any(drive.stale for drive in volume.drives):
                    volume.revive()
    counters = {"components": total, "survivable": survivable}
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# F2 — the debit/credit configuration workload (the FASTPATH yardstick)
# ----------------------------------------------------------------------
def f2_configuration(scale: str) -> Dict[str, Any]:
    shapes = [(4, 2)] if scale == SMOKE else [(2, 1), (4, 2), (8, 4)]
    counters: Dict[str, int] = {}
    info: Dict[str, Any] = {}
    events = 0
    for cpus, volumes in shapes:
        system, terminals = _build_banking(
            seed=17, cpus=cpus, volumes=volumes, accounts=512, terminals=16,
            branches=8, tellers=16, cache_capacity=16,
        )
        result = _drive(system, terminals, duration=5000.0, accounts=512,
                        think_time=5.0, branches=8, tellers=16)
        label = f"{cpus}cpu_{volumes}vol"
        counters[f"committed_{label}"] = result.committed
        counters[f"consistent_{label}"] = _consistent(system)
        events += system.env.events_processed
        info[f"tx_per_s_{label}"] = result.throughput
    counters["events"] = events
    return {"counters": counters, "info": info}


# ----------------------------------------------------------------------
# F3 — the Figure 3 state machine, observed
# ----------------------------------------------------------------------
def f3_state_machine(scale: str) -> Dict[str, Any]:
    duration = 2000.0 if scale == SMOKE else 3000.0
    system, terminals = _build_banking(
        seed=23, accounts=6, terminals=6, keep_trace=True
    )

    def chaos(proc):
        yield system.env.timeout(900)
        system.cluster.node("alpha").fail_cpu(1)
        yield system.env.timeout(900)
        system.cluster.node("alpha").restore_cpu(1)

    system.spawn("alpha", "$chaos", chaos, cpu=0)
    result = _drive(system, terminals, duration=duration, accounts=6,
                    think_time=15.0)
    _settle(system)
    broadcasts = system.tracer.count("state_broadcast")
    counters = _base_counters(system)
    counters.update(
        committed=result.committed,
        state_broadcasts=broadcasts,
    )
    return {"counters": counters, "info": {}}


# ----------------------------------------------------------------------
# F4 — manufacturing network: autonomy under partition
# ----------------------------------------------------------------------
def f4_manufacturing(scale: str) -> Dict[str, Any]:
    partition_ms = 400.0 if scale == SMOKE else 1200.0
    app = build_manufacturing_system(seed=31, items_per_node=2,
                                     monitor_interval=150.0)
    system = app.system
    network = system.cluster.network
    others = [n for n in MANUFACTURING_NODES if n != "neufahrn"]

    def do_update(node, item, qty, name):
        def op(proc):
            reply = yield from app.update_item(
                proc, node, item, {"qty_on_hand": qty}
            )
            return reply

        proc = system.spawn(node, name, op, cpu=0)
        return system.cluster.run(proc.sim_process)

    network.partition(["neufahrn"], others)
    start = system.env.now
    succeeded = 0
    for i in range(4):
        reply = do_update("neufahrn", 6 + (i % 2), 100 + i, f"$u{i}")
        succeeded += bool(reply["ok"])
    idle = system.spawn(
        "cupertino", "$hold",
        lambda p: (yield system.env.timeout(
            max(partition_ms - (system.env.now - start), 1)
        )),
        cpu=0,
    )
    system.cluster.run(idle.sim_process)
    depth_during = _suspense_depth(app, "neufahrn")
    network.heal()
    converged = 0
    for _ in range(200):
        idle = system.spawn("cupertino", "$poll",
                            lambda p: (yield system.env.timeout(100)), cpu=0)
        system.cluster.run(idle.sim_process)
        if _suspense_depth(app, "neufahrn") == 0:
            converged = 1
            break
    counters = _base_counters(system)
    counters.update(
        updates_during=succeeded,
        suspense_depth=int(depth_during),
        converged=converged,
    )
    return {"counters": counters, "info": {}}


def _suspense_depth(app, node: str) -> int:
    out: Dict[str, int] = {}

    def reader(proc):
        rows = yield from app.system.clients[node].scan(proc, f"suspense.{node}")
        out["depth"] = len(rows)

    proc = app.system.spawn(node, "$d", reader, cpu=0)
    app.system.cluster.run(proc.sim_process)
    return out["depth"]


# ----------------------------------------------------------------------
# Registry and runner
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[[str], Dict[str, Any]]] = {
    "e1_online_recovery": e1_online_recovery,
    "e2_checkpoint_vs_wal": e2_checkpoint_vs_wal,
    "e3_commit_protocols": e3_commit_protocols,
    "e4_locking": e4_locking,
    "e5_rollforward": e5_rollforward,
    "e6_partition": e6_partition,
    "e7_storage": e7_storage,
    "e8_restart": e8_restart,
    "e9_failure_sweep": e9_failure_sweep,
    "e10_process_pairs": e10_process_pairs,
    "e11_boxcar": e11_boxcar,
    "f1_hardware_paths": f1_hardware_paths,
    "f2_configuration": f2_configuration,
    "f3_state_machine": f3_state_machine,
    "f4_manufacturing": f4_manufacturing,
}


def run_experiment(
    name: str, scale: str = SMOKE, repeats: int = 1
) -> Dict[str, Any]:
    """Run one experiment ``repeats`` times; counters must agree exactly.

    Returns the experiment's section of the report: deterministic
    ``counters``, advisory ``info``, and the wall-clock median.
    """
    fn = EXPERIMENTS[name]
    walls: List[float] = []
    section: Optional[Dict[str, Any]] = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        outcome = fn(scale)
        walls.append((time.perf_counter() - start) * 1000.0)
        if section is not None and outcome["counters"] != section["counters"]:
            raise AssertionError(
                f"{name}: deterministic counters differ between repeats — "
                f"{outcome['counters']} vs {section['counters']}"
            )
        section = outcome
    assert section is not None
    return {
        "counters": section["counters"],
        "info": section["info"],
        "wall_ms": {"median": round(median(walls), 3), "repeats": len(walls)},
    }


def run_suite(
    scale: str = SMOKE,
    repeats: int = 1,
    only: Optional[List[str]] = None,
    progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Run the suite and assemble the schema-versioned report."""
    from .compare import SCHEMA

    names = list(EXPERIMENTS) if not only else [
        n for n in EXPERIMENTS if n in set(only)
    ]
    unknown = set(only or []) - set(EXPERIMENTS)
    if unknown:
        raise KeyError(f"unknown experiments: {sorted(unknown)}")
    experiments: Dict[str, Any] = {}
    for name in names:
        experiments[name] = run_experiment(name, scale=scale, repeats=repeats)
        if progress is not None:
            progress(name, experiments[name])
    return {"schema": SCHEMA, "mode": scale, "experiments": experiments}


# ----------------------------------------------------------------------
# Determinism digests (hash-randomization and fast-path identity proofs)
# ----------------------------------------------------------------------
def determinism_digests(seed: int = 11) -> Dict[str, str]:
    """SHA-256 digests of a measured+traced pinned-seed banking run.

    The run covers every layer the FASTPATH optimisation touched (event
    scheduling, checkpointing, DISCPROCESS record copies, audit images,
    message dispatch), so a byte-identical XRAY report and TRACE
    timeline across interpreter sessions — and across the optimisation
    itself — is strong evidence the simulated history is unchanged.
    """
    builder = SystemBuilder(seed=seed, keep_trace=False, measure=True,
                            sample_interval=100.0, trace=True)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_banking(builder, "alpha", "$data", server_instances=3)
    builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=8)
    builder.add_program("alpha", "$tcp1", "debit-credit", debit_credit_program)
    terminals = [f"T{i}" for i in range(6)]
    for terminal in terminals:
        builder.add_terminal("alpha", "$tcp1", terminal, "debit-credit")
    system = builder.build()
    populate_banking(system, "alpha", branches=2, tellers_per_branch=3,
                     accounts=16)

    def make_input(rng, terminal_id, iteration):
        return {
            "account_id": rng.randrange(16),
            "teller_id": rng.randrange(6),
            "branch_id": rng.randrange(2),
            "amount": rng.choice([-20, -5, 5, 10, 25]),
            "allow_overdraft": True,
        }

    run_closed_loop(
        system, "alpha", "$tcp1", terminals, make_input,
        duration=1500.0, think_time=10.0, rng=random.Random(99),
    )
    return {
        "xray_sha256": hashlib.sha256(
            system.xray_json().encode()
        ).hexdigest(),
        "timeline_sha256": hashlib.sha256(
            system.timeline_json().encode()
        ).hexdigest(),
    }
