"""Trace assembly: fold the record stream into per-transaction trees.

The :class:`TraceCollector` subscribes to the run's
:class:`repro.sim.Tracer` and buckets records by trace id:

* ``trace.root`` / ``trace.send`` / ``trace.rpc`` / ``trace.serve``
  records (emitted by the :class:`~repro.trace.context.TraceHub`)
  become :class:`Span` objects;
* every *other* record emitted while a traced context was active —
  state broadcasts, lock waits, audit forces, watchdog alarms — is kept
  as an annotation pinned to the enclosing span, so the tree narrates
  what the aggregate counters only count.

``trace_of(transid)`` assembles the bucket into a
:class:`TransactionTrace`: a causally ordered forest of spans with
process/node/CPU attribution, renderable as the plain-text
"transaction flight recorder" screen (TMFCOM ``INFO TRANSACTION``
spirit) and exportable as a Chrome ``trace_event`` timeline (see
:mod:`repro.trace.export`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "TransactionTrace", "TraceCollector"]


class Span:
    """One causally-placed unit of work within a transaction."""

    __slots__ = (
        "span_id", "parent_id", "trace_id", "kind", "name", "node",
        "cpu", "hop", "start", "end", "children", "annotations",
        "requester",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        trace_id: str,
        kind: str,
        name: str,
        node: str,
        cpu: int,
        hop: int,
        start: float,
        end: Optional[float] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.kind = kind              # "tx" | "rpc" | "serve"
        self.name = name
        self.node = node
        self.cpu = cpu
        self.hop = hop
        self.start = start
        self.end = end                # None: still in flight at run end
        self.children: List["Span"] = []
        self.annotations: List[Any] = []
        self.requester = ""           # rpc spans: the waiting process

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.span_id} {self.kind} {self.name!r} "
            f"{self.start}..{self.end}>"
        )


class TransactionTrace:
    """The assembled causal tree(s) of one transaction."""

    def __init__(self, transid: str, roots: List[Span], spans: List[Span],
                 loose_annotations: List[Any]):
        self.transid = transid
        self.roots = roots            # causally ordered forest
        self.spans = spans            # every span, topological+time order
        #: records mentioning the transid but emitted outside any span
        #: (e.g. the TMP pump settling the transaction in background).
        self.loose_annotations = loose_annotations

    @property
    def nodes(self) -> List[str]:
        """Every node the transaction touched, sorted."""
        names = {span.node for span in self.spans if span.node}
        for span in self.spans:
            if span.kind == "rpc":
                names.add(span.name.split(".", 1)[0].lstrip("\\"))
        return sorted(n for n in names if n)

    @property
    def processes(self) -> List[str]:
        """Every process name that appears as a span endpoint, sorted."""
        names = set()
        for span in self.spans:
            if span.kind == "serve" and span.name:
                names.add(span.name)
            elif span.kind == "rpc":
                names.add(span.name.split(".", 1)[1]
                          if "." in span.name else span.name)
        return sorted(names)

    def render(self) -> str:
        """The transaction flight-recorder screen (plain text)."""
        lines = [
            f"TRANSACTION {self.transid} — {len(self.spans)} spans, "
            f"{len(self.nodes)} nodes ({', '.join(self.nodes) or '-'})"
        ]

        def fmt(span: Span, depth: int) -> None:
            pad = "  " * (depth + 1)
            end = f"{span.end:.2f}" if span.end is not None else "…"
            where = f"\\{span.node}" if span.node else ""
            lines.append(
                f"{pad}[{span.kind}] {where}.{span.name} cpu{span.cpu} "
                f"{span.start:.2f}..{end}"
                if span.kind == "serve" else
                f"{pad}[{span.kind}] {span.name} {span.start:.2f}..{end}"
            )
            for record in span.annotations:
                lines.append(f"{pad}    · {record.time:.2f} {record.kind}")
            for child in span.children:
                fmt(child, depth + 1)

        for root in self.roots:
            fmt(root, 0)
        for record in self.loose_annotations:
            lines.append(f"  · {record.time:.2f} {record.kind}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TransactionTrace {self.transid} spans={len(self.spans)}>"


class TraceCollector:
    """Subscribes to the tracer and buckets records per trace id.

    Collection is pure observation: no simulated state is read or
    written, so a traced run replays the identical event history of an
    untraced one (the determinism tests pin this).
    """

    _SPAN_KINDS = ("trace.root", "trace.send", "trace.rpc", "trace.serve")

    def __init__(self, tracer: Any, hub: Any):
        self.tracer = tracer
        self.hub = hub
        # trace_id -> [(record, span_id_or_None)] in emission order.
        self._buckets: Dict[str, List[Tuple[Any, Optional[int]]]] = {}
        tracer.subscribe(self._on_record)

    # ------------------------------------------------------------------
    def _on_record(self, record: Any) -> None:
        fields = record.fields
        if record.kind in self._SPAN_KINDS or record.kind == "watchdog.alarm":
            trace_id = fields.get("trace_id") or fields.get("transid")
            if trace_id is not None:
                span = fields.get("span")
                self._buckets.setdefault(trace_id, []).append((record, span))
            return
        # Domain record: attribute to the emitting context when one is
        # active, else to the record's own transid field when present.
        ctx = self.hub.current()
        if ctx is not None and ctx.trace_id is not None:
            self._buckets.setdefault(ctx.trace_id, []).append(
                (record, ctx.span_id)
            )
            return
        transid = fields.get("transid")
        if isinstance(transid, str):
            self._buckets.setdefault(transid, []).append((record, None))

    # ------------------------------------------------------------------
    def trace_ids(self) -> List[str]:
        return sorted(self._buckets)

    def has_trace(self, transid: Any) -> bool:
        return str(transid) in self._buckets

    def trace_of(self, transid: Any) -> TransactionTrace:
        """Assemble the causal tree for ``transid`` (str or Transid)."""
        trace_id = str(transid)
        entries = self._buckets.get(trace_id, [])
        spans: Dict[int, Span] = {}
        annotations: List[Tuple[Any, Optional[int]]] = []
        order: Dict[int, int] = {}
        for seq, (record, span_id) in enumerate(entries):
            fields = record.fields
            kind = record.kind
            if kind == "trace.root":
                spans[fields["span"]] = Span(
                    fields["span"], None, trace_id, "tx",
                    name="begin-transaction", node="", cpu=0, hop=0,
                    start=record.time, end=None,
                )
                order.setdefault(fields["span"], seq)
            elif kind == "trace.send":
                span = Span(
                    fields["span"], fields.get("parent"), trace_id, "rpc",
                    name=f"{fields['dest']}.{fields['dest_proc']}",
                    node=fields["source"], cpu=fields.get("source_cpu", 0),
                    hop=fields.get("hop", 0), start=record.time, end=None,
                )
                span.requester = fields.get("source_proc", "")
                spans[fields["span"]] = span
                order.setdefault(fields["span"], seq)
            elif kind == "trace.rpc":
                span = spans.get(fields["span"])
                if span is not None:
                    span.end = record.time
            elif kind == "trace.serve":
                spans[fields["span"]] = Span(
                    fields["span"], fields.get("parent"), trace_id, "serve",
                    name=fields["proc"], node=fields["node"],
                    cpu=fields.get("cpu", 0), hop=fields.get("hop", 0),
                    start=fields["start"], end=record.time,
                )
                order.setdefault(fields["span"], seq)
            else:
                annotations.append((record, span_id))

        # Serve records arrive at span *end*; a parent serve span can
        # therefore be recorded after its children.  Sort every span by
        # (start, first-seen sequence) and link children to parents.
        ordered = sorted(
            spans.values(), key=lambda s: (s.start, order.get(s.span_id, 0))
        )
        roots: List[Span] = []
        for span in ordered:
            parent = spans.get(span.parent_id) if span.parent_id is not None else None
            if parent is not None:
                parent.children.append(span)
            else:
                roots.append(span)
        loose: List[Any] = []
        for record, span_id in annotations:
            span = spans.get(span_id) if span_id is not None else None
            if span is not None:
                span.annotations.append(record)
            else:
                loose.append(record)
        # A tx root with no recorded end stretches to its last descendant.
        for span in ordered:
            if span.kind == "tx" and span.end is None:
                ends = [s.end for s in spans.values() if s.end is not None]
                last_ann = [r.time for r in loose] + [
                    r.time for s in ordered for r in s.annotations
                ]
                candidates = ends + last_ann + [span.start]
                span.end = max(candidates)
        return TransactionTrace(trace_id, roots, ordered, loose)

    def traces(self) -> List[TransactionTrace]:
        """Every assembled trace, ordered by trace id."""
        return [self.trace_of(trace_id) for trace_id in self.trace_ids()]
