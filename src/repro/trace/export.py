"""Timeline export: deterministic Chrome ``trace_event`` JSON.

:func:`timeline` converts assembled traces into the Trace Event Format
understood by ``chrome://tracing`` and Perfetto: one *process* row per
simulated node, one *thread* row per simulated process, ``"X"``
(complete) events for spans and ``"i"`` (instant) events for span-bound
annotations and watchdog alarms.  Simulated milliseconds map to the
format's microseconds (``ts = ms * 1000``).

Serialization is canonical — sorted keys, floats rounded, events in a
deterministic order — so two same-seed traced runs write byte-identical
files (the property the determinism tests pin, mirroring the XRAY
report's guarantees).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["timeline", "timeline_json", "write_timeline"]


def _round(value: float) -> float:
    rounded = round(value, 3)
    return 0.0 if rounded == 0 else rounded


def timeline(collector: Any, transids: Optional[List[Any]] = None) -> Dict[str, Any]:
    """The ``{"traceEvents": [...]}`` dict for some (or all) transactions."""
    if transids is None:
        traces = collector.traces()
    else:
        traces = [collector.trace_of(t) for t in sorted(str(t) for t in transids)]

    # Stable pid/tid maps: nodes and (node, proc) pairs, sorted.
    nodes: List[str] = sorted(
        {span.node for trace in traces for span in trace.spans if span.node}
    )
    pids = {node: index + 1 for index, node in enumerate(nodes)}
    tracks = sorted(
        {(span.node, _track_name(span)) for trace in traces
         for span in trace.spans if span.node}
    )
    tids: Dict[Any, int] = {}
    for node in nodes:
        for index, track in enumerate(t for t in tracks if t[0] == node):
            tids[track] = index + 1

    events: List[Dict[str, Any]] = []
    for node in nodes:
        events.append({
            "ph": "M", "name": "process_name", "pid": pids[node], "tid": 0,
            "args": {"name": f"\\{node}"},
        })
    for (node, track), tid in sorted(tids.items()):
        events.append({
            "ph": "M", "name": "thread_name", "pid": pids[node], "tid": tid,
            "args": {"name": track},
        })

    spans_events: List[Dict[str, Any]] = []
    for trace in traces:
        for span in trace.spans:
            if not span.node or span.end is None:
                continue
            pid = pids[span.node]
            tid = tids[(span.node, _track_name(span))]
            spans_events.append({
                "ph": "X", "cat": span.kind, "name": span.name,
                "pid": pid, "tid": tid,
                "ts": _round(span.start * 1000.0),
                "dur": _round((span.end - span.start) * 1000.0),
                "args": {
                    "trace_id": trace.transid, "span": span.span_id,
                    "hop": span.hop, "cpu": span.cpu,
                },
            })
            for record in span.annotations:
                spans_events.append({
                    "ph": "i", "s": "t", "cat": "annotation",
                    "name": record.kind, "pid": pid, "tid": tid,
                    "ts": _round(record.time * 1000.0),
                    "args": {"trace_id": trace.transid, "span": span.span_id},
                })
        for record in trace.loose_annotations:
            if record.kind != "watchdog.alarm":
                continue
            node = record.fields.get("node")
            pid = pids.get(node, 0)
            spans_events.append({
                "ph": "i", "s": "g", "cat": "watchdog",
                "name": f"watchdog.alarm:{record.fields.get('reason', '?')}",
                "pid": pid, "tid": 0,
                "ts": _round(record.time * 1000.0),
                "args": {"trace_id": trace.transid},
            })
    spans_events.sort(
        key=lambda e: (e["ts"], e["pid"], e["tid"], e["args"].get("span", 0))
    )
    events.extend(spans_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _track_name(span: Any) -> str:
    # A serve span sits on the serving process's own track; an rpc span
    # sits on the *requesting* process's track (where the caller waits).
    if span.kind == "rpc":
        return getattr(span, "requester", "") or "requests"
    return span.name or "tx"


def timeline_json(collector: Any, transids: Optional[List[Any]] = None) -> str:
    """Canonical JSON: same run state -> same bytes."""
    return json.dumps(timeline(collector, transids), sort_keys=True, indent=2)


def write_timeline(collector: Any, path: str,
                   transids: Optional[List[Any]] = None) -> str:
    """Write the timeline JSON to ``path``; returns ``path``."""
    with open(path, "w") as handle:
        handle.write(timeline_json(collector, transids))
        handle.write("\n")
    return path
