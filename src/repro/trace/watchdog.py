"""The online invariant watchdog: flag trouble *during* the run.

Five detectors cross-check the live system against the paper's
invariants, firing a structured ``watchdog.alarm`` trace record the
moment one breaks (each alarm also lands in :attr:`Watchdog.alarms`
and in the XRAY report's ``watchdog`` section):

* **Figure-3 violations** — every ``state_broadcast`` record is checked
  against the legal-transition table, independently of the
  :class:`~repro.core.states.StateBroadcaster`'s own enforcement (a
  broadcast the broadcaster let through but the table forbids means the
  two have diverged);
* **stuck transactions** — a transaction sitting in ``ending`` or
  ``aborting`` beyond a configurable horizon (phase one hung, backout
  wedged);
* **over-horizon lock waits** — a waiter queued longer than the
  threshold (the timeout should have fired; the application is slower
  than its own deadlock story assumes);
* **waits-for cycles** — a *global* deadlock monitor: the per-volume
  lock managers' waits-for edges are merged across every volume and
  node and searched for cycles, cross-checking the decentralized
  timeout scheme against the ablation detector;
* **audit-trail growth anomalies** — a trail growing faster per check
  interval than the configured limit (runaway backout loop, audit
  storm).

Like the XRAY sampler, the watchdog is a *read-only* periodic process:
it observes accumulators and queues but changes no simulated state, so
a watched run replays the identical event history — and it is bounded
(``max_checks``) so a run-to-exhaustion simulation still terminates.

The module imports nothing from the stack: the legal-transition table
is *injected* by the system builder (``legal_transitions_by_name()``
from :mod:`repro.core.states`), so the one Figure-3 table stays at its
definition site and this module stays importable from any layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

__all__ = ["WatchdogConfig", "Watchdog"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds and cadence of the watchdog's detectors."""

    interval: float = 250.0            # ms between periodic checks
    stuck_horizon: float = 5_000.0     # ms in ending/aborting before alarm
    lock_wait_horizon: float = 2_000.0 # ms queued on a lock before alarm
    audit_growth_limit: int = 10_000   # trail records per check interval
    max_checks: int = 4_000            # bound for run-to-exhaustion sims


class Watchdog:
    """Subscribed + periodic invariant detectors over one system."""

    def __init__(
        self,
        system: Any,
        config: Optional[WatchdogConfig] = None,
        legal_transitions: Optional[Dict[Optional[str], Tuple[str, ...]]] = None,
    ):
        if legal_transitions is None:
            # Refuse to run with the Figure-3 detector silently blind:
            # the builder must inject core.states.legal_transitions_by_name().
            raise ValueError(
                "Watchdog requires the Figure-3 table — pass "
                "legal_transitions=legal_transitions_by_name()"
            )
        self.system = system
        self.env = system.env
        self.tracer = system.tracer
        self.config = config or WatchdogConfig()
        self.alarms: List[Any] = []
        self.checks_run = 0
        self.process = None
        self._legal: Dict[Optional[str], Tuple[str, ...]] = dict(legal_transitions)
        # (node, transid) -> (state, since) for non-terminal states.
        self._tx_state: Dict[Tuple[str, str], Tuple[str, float]] = {}
        # Dedup sets: each alarm fires once per offending condition.
        self._alarmed_stuck: Set[Tuple[str, str, str]] = set()
        self._alarmed_waits: Set[Tuple[str, str, str, str, float]] = set()
        self._alarmed_cycles: Set[Tuple[str, ...]] = set()
        self._audit_last: Dict[str, int] = {}
        self.tracer.subscribe(self._on_record)

    # ------------------------------------------------------------------
    def install(self):
        """Start the periodic check process on the system's environment."""
        if self.process is not None:
            return self.process
        for key, audit in sorted(self.system.audit_processes.items()):
            self._audit_last[key] = audit.trail.total_records
        self.process = self.env.process(self._run(), name="trace-watchdog")
        return self.process

    def _run(self) -> Generator:
        while self.checks_run < self.config.max_checks:
            yield self.env.timeout(self.config.interval)
            self.check(self.env.now)

    # ------------------------------------------------------------------
    # Alarms
    # ------------------------------------------------------------------
    def _alarm(self, reason: str, **fields: Any) -> None:
        self.alarms.append({"time": self.env.now, "reason": reason, **fields})
        self.tracer.emit(self.env.now, "watchdog.alarm", reason=reason, **fields)

    def summary(self) -> Dict[str, Any]:
        """The XRAY report's ``watchdog`` section."""
        by_reason: Dict[str, int] = {}
        for alarm in self.alarms:
            by_reason[alarm["reason"]] = by_reason.get(alarm["reason"], 0) + 1
        return {
            "alarms": len(self.alarms),
            "by_reason": {k: by_reason[k] for k in sorted(by_reason)},
            "checks_run": self.checks_run,
        }

    # ------------------------------------------------------------------
    # Detector 1: Figure-3 edges (subscription — fires immediately)
    # ------------------------------------------------------------------
    def _legal_transitions(self) -> Dict[Optional[str], Tuple[str, ...]]:
        return self._legal

    def _on_record(self, record: Any) -> None:
        if record.kind != "state_broadcast":
            return
        fields = record.fields
        node, transid = fields.get("node"), fields.get("transid")
        state = fields.get("state")
        if node is None or transid is None or state is None:
            return
        key = (node, transid)
        current = self._tx_state.get(key)
        current_state = current[0] if current is not None else None
        legal = self._legal_transitions().get(current_state, ())
        if state not in legal:
            self._alarm(
                "illegal_transition", node=node, transid=transid,
                from_state=current_state, to_state=state,
            )
        if state in ("ended", "aborted"):
            self._tx_state.pop(key, None)
            self._alarmed_stuck.discard((node, transid, "ending"))
            self._alarmed_stuck.discard((node, transid, "aborting"))
        else:
            self._tx_state[key] = (state, record.time)

    # ------------------------------------------------------------------
    # Periodic detectors 2–5
    # ------------------------------------------------------------------
    def check(self, now: float) -> None:
        """Run every periodic detector once (read-only)."""
        self.checks_run += 1
        self._check_stuck(now)
        self._check_lock_waits(now)
        self._check_deadlock_cycles()
        self._check_audit_growth()

    def _check_stuck(self, now: float) -> None:
        horizon = self.config.stuck_horizon
        for (node, transid), (state, since) in sorted(self._tx_state.items()):
            if state not in ("ending", "aborting"):
                continue
            if now - since <= horizon:
                continue
            key = (node, transid, state)
            if key in self._alarmed_stuck:
                continue
            self._alarmed_stuck.add(key)
            self._alarm(
                "stuck_transaction", node=node, transid=transid,
                state=state, stuck_ms=now - since,
            )

    def _lock_managers(self):
        for (node, volume), dp in sorted(self.system.disc_processes.items()):
            yield node, volume, dp.locks

    def _check_lock_waits(self, now: float) -> None:
        horizon = self.config.lock_wait_horizon
        for node, volume, locks in self._lock_managers():
            for queue in locks._queues.values():
                for waiter in queue:
                    if waiter.event.triggered:
                        continue
                    waited = now - waiter.since
                    # Deterministic waiter identity (no id()): the same
                    # transid cannot queue twice on one target at the
                    # same instant, so this key is unique per wait.
                    key = (node, volume, str(waiter.transid),
                           repr(waiter.target), waiter.since)
                    if waited <= horizon or key in self._alarmed_waits:
                        continue
                    self._alarmed_waits.add(key)
                    self._alarm(
                        "lock_wait_horizon", node=node, volume=volume,
                        transid=str(waiter.transid),
                        target=repr(waiter.target), waited_ms=waited,
                    )

    def _check_deadlock_cycles(self) -> None:
        # Merge every volume's waits-for edges into one global graph:
        # a distributed deadlock spans volumes (and nodes), which no
        # single decentralized lock manager can see.
        graph: Dict[str, List[str]] = {}
        for _node, _volume, locks in self._lock_managers():
            for waiter, owner in locks.waits_for_edges():
                graph.setdefault(str(waiter), []).append(str(owner))
        cycle = _find_cycle(graph)
        if cycle is None:
            return
        key = tuple(sorted(cycle))
        if key in self._alarmed_cycles:
            return
        self._alarmed_cycles.add(key)
        self._alarm("deadlock_cycle", transids=sorted(cycle),
                    transid=sorted(cycle)[0])

    def _check_audit_growth(self) -> None:
        limit = self.config.audit_growth_limit
        for key, audit in sorted(self.system.audit_processes.items()):
            total = audit.trail.total_records
            grew = total - self._audit_last.get(key, 0)
            self._audit_last[key] = total
            if limit is not None and grew > limit:
                self._alarm(
                    "audit_growth", audit_process=key, grew=grew,
                    limit=limit, total_records=total,
                )


def _find_cycle(graph: Dict[str, List[str]]) -> Optional[List[str]]:
    """A cycle in the merged waits-for graph, or None (deterministic)."""
    visiting: Set[str] = set()
    done: Set[str] = set()
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        visiting.add(node)
        stack.append(node)
        for neighbour in graph.get(node, []):
            if neighbour in visiting:
                return stack[stack.index(neighbour):]
            if neighbour not in done:
                found = visit(neighbour)
                if found is not None:
                    return found
        visiting.discard(node)
        done.add(node)
        stack.pop()
        return None

    for node in sorted(graph):
        if node not in done:
            found = visit(node)
            if found is not None:
                return found
    return None
