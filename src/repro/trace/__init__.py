"""TRACE — causal end-to-end transaction tracing over the simulated stack.

Where the XRAY measurement subsystem (:mod:`repro.measure`) answers
"where did the time go", TRACE answers "what happened to transaction T,
in causal order, across processes and nodes": XRAY aggregates, TRACE
narrates.

* :mod:`repro.trace.context` — the per-run :class:`TraceHub` riding on
  ``env.trace``, threading transid-rooted trace contexts through every
  :class:`repro.guardian.message.Message` automatically;
* :mod:`repro.trace.collect` — the :class:`TraceCollector` folding the
  tracer's record stream into per-transaction span trees
  (``system.trace_of(transid)``);
* :mod:`repro.trace.export` — deterministic Chrome ``trace_event``
  timelines (``system.write_timeline(path)``) and the plain-text
  flight-recorder screen;
* :mod:`repro.trace.watchdog` — online invariant detectors firing
  structured ``watchdog.alarm`` records during the run.

Build with ``SystemBuilder(trace=True)`` (and ``watchdog=True`` for the
detectors); see the README's "Tracing a transaction" section.
"""

from .collect import Span, TraceCollector, TransactionTrace
from .context import TraceContext, TraceHub
from .export import timeline, timeline_json, write_timeline
from .watchdog import Watchdog, WatchdogConfig

__all__ = [
    "Span",
    "TraceCollector",
    "TraceContext",
    "TraceHub",
    "TransactionTrace",
    "Watchdog",
    "WatchdogConfig",
    "timeline",
    "timeline_json",
    "write_timeline",
]
