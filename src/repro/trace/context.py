"""Trace-context propagation: the per-run hub and the context objects.

Dapper-style causal tracing over the simulated stack.  A *trace* is
rooted at a transid (its trace id is ``str(transid)``); every message
the transaction touches carries a :class:`TraceContext` — span id,
parent span id, hop count — which the message system and the serving
layers thread through automatically, so the TCP → server → DISCPROCESS
→ audit → TMP chain is causally linked even across nodes.

The :class:`TraceHub` rides on the environment as ``env.trace`` (the
same null-object pattern as ``env.metrics``): ``None`` on untraced runs,
so every probe site is a single attribute check.  Span ids come from a
per-hub counter — never from the global message/process id counters,
which keep counting across runs in one Python process and would break
byte-identical exports.

This module deliberately imports nothing from the rest of ``repro``
except :mod:`repro.sim` types (duck-typed), so the guardian layer can
construct a hub without import cycles.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

__all__ = ["TraceContext", "TraceHub"]


class TraceContext:
    """The causal coordinates one unit of work carries."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "hop", "kind",
        "node", "proc", "cpu", "start",
    )

    def __init__(
        self,
        trace_id: Optional[str],
        span_id: int,
        parent_id: Optional[int],
        hop: int,
        kind: str,
        node: str = "",
        proc: str = "",
        cpu: int = 0,
        start: float = 0.0,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.hop = hop
        self.kind = kind          # "tx" | "rpc" | "serve"
        self.node = node
        self.proc = proc
        self.cpu = cpu
        self.start = start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceContext {self.kind} trace={self.trace_id} "
            f"span={self.span_id} parent={self.parent_id} hop={self.hop}>"
        )


class TraceHub:
    """Allocates spans and binds contexts to the executing process.

    Emission rides the run's existing :class:`repro.sim.Tracer` (kinds
    prefixed ``trace.``), so trace records interleave with the domain
    records in one ordered stream; the collector subscribes to that
    stream and folds both into per-transaction trees.
    """

    def __init__(self, env: Any, tracer: Any):
        self.env = env
        self.tracer = tracer
        self._span_ids = itertools.count(1)
        # Active context per simulation process.  Entries for serve
        # spans are removed on serve_end; root (tx) contexts live as
        # long as their process object — per-run state, like the tracer.
        self._active: Dict[Any, TraceContext] = {}

    # ------------------------------------------------------------------
    # Context lookup / binding
    # ------------------------------------------------------------------
    def current(self) -> Optional[TraceContext]:
        """The context bound to the currently executing process."""
        proc = self.env.active_process
        if proc is None:
            return None
        return self._active.get(proc)

    def next_span_id(self) -> int:
        return next(self._span_ids)

    # ------------------------------------------------------------------
    # Transaction roots
    # ------------------------------------------------------------------
    def adopt(self, transid: Any) -> None:
        """Bind the active context to ``transid`` (BEGIN-TRANSACTION hook).

        Three cases:

        * the executing process already holds a *pending* serve context
          (a TCP unit whose inbound terminal message carried no transid):
          the serve span becomes the transaction's root span;
        * the executing process holds a context from a *previous*
          transaction (a restarted unit, or a driver loop beginning
          transaction after transaction): re-root it — for serve
          contexts by re-labelling, for tx contexts with a fresh span;
        * the executing process holds no context (a raw requester
          process calling ``tmf.begin`` directly): create a root "tx"
          context so the commit fan-out still hangs off one root.
        """
        proc = self.env.active_process
        if proc is None:
            return
        trace_id = str(transid)
        ctx = self._active.get(proc)
        if ctx is not None and ctx.kind == "serve":
            ctx.trace_id = trace_id
            return
        span_id = self.next_span_id()
        self._active[proc] = TraceContext(
            trace_id, span_id, None, 0, "tx", start=self.env.now,
        )
        self.tracer.emit(
            self.env.now, "trace.root",
            trace_id=trace_id, span=span_id,
        )

    # ------------------------------------------------------------------
    # Requester side (message system)
    # ------------------------------------------------------------------
    def on_send(self, message: Any, source_cpu: int) -> Optional[TraceContext]:
        """Allocate the request's span and stamp it onto the message.

        The trace id comes from, in priority order: the message's
        transid, the payload's ``transid`` attribute (TMP protocol
        messages carry it in the payload), or the sender's active
        context.  A message with none of the three is background chatter
        and stays untraced.
        """
        parent = self.current()
        trace_id: Optional[str] = None
        if message.transid is not None:
            trace_id = str(message.transid)
        else:
            payload_transid = getattr(message.payload, "transid", None)
            if payload_transid is not None:
                trace_id = str(payload_transid)
            elif parent is not None:
                trace_id = parent.trace_id
        if trace_id is None:
            return None
        ctx = TraceContext(
            trace_id,
            self.next_span_id(),
            parent.span_id if parent is not None else None,
            parent.hop + 1 if parent is not None else 0,
            "rpc",
            node=message.source_node,
            proc=message.source_name,
            cpu=source_cpu,
            start=self.env.now,
        )
        message.trace_ctx = ctx
        self.tracer.emit(
            self.env.now, "trace.send",
            trace_id=trace_id, span=ctx.span_id, parent=ctx.parent_id,
            hop=ctx.hop, source=message.source_node,
            source_proc=message.source_name, source_cpu=source_cpu,
            dest=message.dest_node, dest_proc=message.dest_name,
        )
        return ctx

    def on_rpc_done(self, ctx: TraceContext) -> None:
        """The requester-observed end of a request span (reply/error/kill)."""
        self.tracer.emit(
            self.env.now, "trace.rpc",
            trace_id=ctx.trace_id, span=ctx.span_id, start=ctx.start,
        )

    # ------------------------------------------------------------------
    # Server side (process-pair sub-handlers, application server loops)
    # ------------------------------------------------------------------
    def serve_begin(
        self, message: Any, node: str, proc_name: str, cpu: int
    ) -> TraceContext:
        """Open a serve span as a child of the message's send span.

        Always returns a context, even when the inbound message is
        untraced (``trace_id`` pending ``None``): a transaction begun
        inside the handler adopts it retroactively (see :meth:`adopt`),
        which is exactly how a TCP's serve span becomes the root of the
        unit's trace.
        """
        send_ctx = getattr(message, "trace_ctx", None)
        ctx = TraceContext(
            send_ctx.trace_id if send_ctx is not None else None,
            self.next_span_id(),
            send_ctx.span_id if send_ctx is not None else None,
            send_ctx.hop + 1 if send_ctx is not None else 0,
            "serve",
            node=node, proc=proc_name, cpu=cpu, start=self.env.now,
        )
        proc = self.env.active_process
        if proc is not None:
            self._active[proc] = ctx
        return ctx

    def serve_end(self, ctx: TraceContext) -> None:
        """Close a serve span; emits nothing for still-pending contexts."""
        proc = self.env.active_process
        if proc is not None and self._active.get(proc) is ctx:
            del self._active[proc]
        if ctx.trace_id is None:
            return
        self.tracer.emit(
            self.env.now, "trace.serve",
            trace_id=ctx.trace_id, span=ctx.span_id, parent=ctx.parent_id,
            hop=ctx.hop, node=ctx.node, proc=ctx.proc, cpu=ctx.cpu,
            start=ctx.start,
        )
