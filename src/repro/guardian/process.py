"""OS processes and the per-node operating system.

An :class:`OsProcess` is a simulation coroutine bound to a CPU, with a
message inbox and a registered name (``$NAME`` style).  When its CPU
fails, every resident process is killed: its inbox closes, and every
request it had received but not yet replied to fails back to the
requester with :class:`ProcessDied` — which is what drives process-pair
takeover and transparent retry at the file-system layer.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from ..hardware import Cpu, Node
from ..sim import AnyOf, Channel, Environment, Process, Tracer
from .message import Message, MessageSystem, ProcessDied

__all__ = ["OsProcess", "NodeOs", "ReceiveTimeout"]


class ReceiveTimeout(Exception):
    """``receive(timeout=...)`` expired with no message."""


class OsProcess:
    """A named process running in one CPU of one node."""

    _pids = itertools.count(1)

    def __init__(
        self,
        node_os: "NodeOs",
        name: str,
        cpu: Cpu,
        body: Callable[["OsProcess"], Generator],
    ):
        self.node_os = node_os
        self.env: Environment = node_os.env
        self.name = name
        self.cpu = cpu
        self.pid = next(OsProcess._pids)
        self.inbox = Channel(self.env, name=f"{self.node_name}.{name}.inbox")
        self._held_messages: List[Message] = []
        self._body = body
        self.sim_process: Optional[Process] = None
        self._dead = False

    @property
    def node_name(self) -> str:
        return self.node_os.node.name

    @property
    def alive(self) -> bool:
        return not self._dead and self.cpu.up

    def start(self) -> "OsProcess":
        self.sim_process = self.env.process(
            self._body(self), name=f"{self.node_name}.{self.name}"
        )
        return self

    # ------------------------------------------------------------------
    # Messaging primitives used by process bodies
    # ------------------------------------------------------------------
    def accept(self, message: Message) -> None:
        """Called by the message system to deliver a request."""
        self._held_messages.append(message)
        self.inbox.put(message)

    def receive(self, timeout: Optional[float] = None):
        """Wait for the next request.  (Generator helper.)

        Returns a :class:`Message`; raises :class:`ReceiveTimeout` if a
        timeout is given and expires first.
        """
        get_event = self.inbox.get()
        if timeout is None:
            message = yield get_event
            return message
        deadline = self.env.timeout(timeout)
        outcome = yield AnyOf(self.env, [get_event, deadline])
        if get_event in outcome:
            return outcome[get_event]
        self.inbox.cancel(get_event)
        raise ReceiveTimeout(f"{self.name}: no message within {timeout}ms")

    def reply(self, message: Message, payload: Any) -> None:
        """Answer a request previously returned by :meth:`receive`."""
        try:
            self._held_messages.remove(message)
        except ValueError:
            pass
        self.node_os.message_system.reply(message, payload)

    def request(
        self,
        dest_node: str,
        dest_name: str,
        payload: Any,
        transid: Any = None,
        timeout: Optional[float] = None,
        msg_id: Optional[int] = None,
    ):
        """Issue a request to a named process.  (Generator helper.)"""
        reply = yield from self.node_os.message_system.request(
            self,
            dest_node,
            dest_name,
            payload,
            transid=transid,
            timeout=timeout,
            msg_id=msg_id,
        )
        return reply

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def kill(self, reason: Any = None) -> None:
        """Terminate the process (CPU failure or explicit stop)."""
        if self._dead:
            return
        self._dead = True
        if self.sim_process is not None:
            self.sim_process.kill(reason)
        self.inbox.close(reason)
        held, self._held_messages = self._held_messages, []
        for message in held:
            self.node_os.message_system.fail_request(
                message, ProcessDied(f"{self.node_name}.{self.name}: {reason}")
            )
        # Requests still queued in the (now closed) inbox were never seen:
        # their requesters must also learn the process died.
        self.node_os.unregister(self)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<OsProcess {self.node_name}.{self.name} pid={self.pid} cpu={self.cpu.number} {state}>"


class NodeOs:
    """The operating system instance of one node.

    Decentralized by construction: each node has its own registry and
    there is no cluster master.  The only cross-node facility is the
    message system.
    """

    def __init__(
        self,
        node: Node,
        message_system: MessageSystem,
        tracer: Optional[Tracer] = None,
    ):
        self.node = node
        self.env = node.env
        self.message_system = message_system
        self.tracer = tracer
        self._registry: Dict[str, OsProcess] = {}
        self._by_cpu: Dict[int, List[OsProcess]] = {
            cpu.number: [] for cpu in node.cpus
        }
        message_system.register_node(self)
        for cpu in node.cpus:
            cpu.watch_failure(self._on_cpu_failure)

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        cpu_number: int,
        body: Callable[[OsProcess], Generator],
        register: bool = True,
    ) -> OsProcess:
        """Create and start a process named ``name`` in ``cpu_number``.

        Registering replaces any dead holder of the name (takeover);
        replacing a *live* process is an error.
        """
        cpu = self.node.cpus[cpu_number]
        if not cpu.up:
            raise RuntimeError(f"cannot spawn {name} in down cpu {cpu_number}")
        process = OsProcess(self, name, cpu, body)
        if register:
            incumbent = self._registry.get(name)
            if incumbent is not None and incumbent.alive:
                raise RuntimeError(f"name {name} already registered and alive")
            self._registry[name] = process
        self._by_cpu[cpu_number].append(process)
        process.start()
        self._trace("process_spawned", name=name, cpu=cpu_number)
        return process

    def lookup(self, name: str) -> Optional[OsProcess]:
        process = self._registry.get(name)
        if process is not None and process.alive:
            return process
        return None

    def unregister(self, process: OsProcess) -> None:
        if self._registry.get(process.name) is process:
            del self._registry[process.name]
        try:
            self._by_cpu[process.cpu.number].remove(process)
        except (KeyError, ValueError):
            pass

    def processes_on_cpu(self, cpu_number: int) -> List[OsProcess]:
        return list(self._by_cpu.get(cpu_number, []))

    def alive_cpu_numbers(self) -> List[int]:
        return [cpu.number for cpu in self.node.cpus if cpu.up]

    def pick_cpu(self, exclude: Optional[List[int]] = None) -> Optional[int]:
        """Least-loaded live CPU, excluding the given numbers."""
        excluded = set(exclude or [])
        candidates = [n for n in self.alive_cpu_numbers() if n not in excluded]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (len(self._by_cpu[n]), n))

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_cpu_failure(self, cpu) -> None:
        victims = list(self._by_cpu.get(cpu.number, []))
        for process in victims:
            process.kill(reason=f"cpu {cpu.name} failed")
        self._trace("cpu_processes_killed", cpu=cpu.number, count=len(victims))

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, node=self.node.name, **fields)
