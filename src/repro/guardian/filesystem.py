"""The File System layer: named sends with transparent retry.

User processes never talk to the message system directly; they go
through the File System, which adds the behaviour the paper relies on:

* **name resolution** — ``$SERVER`` (local) or ``\\NODE.$SERVER``
  (network) destinations, re-resolved on every attempt so a retry finds
  the *new* primary after a process-pair takeover;
* **transparent retry** — a request that dies with its server
  (:class:`ProcessDied`) or finds the name momentarily unregistered
  (mid-takeover) is retried with the *same message id*, letting servers
  suppress duplicates; this is the mechanism behind "recovery from the
  failure of a component such as a primary DISCPROCESS' processor ... is
  handled automatically by the operating system transparently to
  transaction processing";
* **automatic transid propagation** — every request carries the caller's
  current transid, and the first transmission of a transid to a remote
  node first runs the TMP's remote-transaction-begin (a critical-response
  exchange), exactly as §Distributed Transaction Processing describes.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from ..sim import Tracer
from .message import (
    DeliveryError,
    Message,
    PathDown,
    ProcessDied,
    ProcessUnavailable,
    RequestTimeout,
)
from .process import NodeOs, OsProcess

__all__ = ["FileSystem", "FileSystemError", "parse_destination"]

# A transid exporter: generator called as
#   yield from exporter(caller, transid, dest_node)
# raising on failure (remote begin rejected / unreachable).
TransidExporter = Callable[[OsProcess, Any, str], Generator]


class FileSystemError(Exception):
    """A send failed permanently (after retries)."""

    def __init__(self, destination: str, cause: Exception):
        super().__init__(f"send to {destination} failed: {cause}")
        self.destination = destination
        self.cause = cause


def parse_destination(default_node: str, destination: str) -> Tuple[str, str]:
    r"""Split ``$NAME`` or ``\NODE.$NAME`` into (node, process-name)."""
    if destination.startswith("\\"):
        node, _, name = destination[1:].partition(".")
        if not node or not name:
            raise ValueError(f"malformed network name {destination!r}")
        return node, name
    return default_node, destination


class FileSystem:
    """Per-node File System instance."""

    #: attempts made when the destination died or is mid-takeover
    MAX_RETRIES = 5
    #: delay between attempts (ms) — covers the takeover window
    RETRY_DELAY = 2.0

    def __init__(self, node_os: NodeOs, tracer: Optional[Tracer] = None):
        self.node_os = node_os
        self.env = node_os.env
        self.tracer = tracer
        self.transid_exporter: Optional[TransidExporter] = None

    @property
    def node_name(self) -> str:
        return self.node_os.node.name

    def send(
        self,
        caller: OsProcess,
        destination: str,
        payload: Any,
        transid: Any = None,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Send a request and return the reply.  (Generator helper.)

        Raises :class:`FileSystemError` when delivery fails permanently,
        after transparent retries over process-pair takeovers.
        """
        dest_node, dest_name = parse_destination(self.node_name, destination)
        if (
            transid is not None
            and dest_node != self.node_name
            and self.transid_exporter is not None
        ):
            yield from self.transid_exporter(caller, transid, dest_node)
        # One message identity across all attempts: the server-side
        # duplicate-suppression key.
        message_id = next(Message._ids)
        last_error: Optional[Exception] = None
        for attempt in range(self.MAX_RETRIES):
            if attempt:
                yield self.env.timeout(self.RETRY_DELAY)
            try:
                reply = yield from self.node_os.message_system.request(
                    caller,
                    dest_node,
                    dest_name,
                    payload,
                    transid=transid,
                    timeout=timeout,
                    msg_id=message_id,
                )
                if attempt and self.tracer is not None:
                    self.tracer.emit(
                        self.env.now, "send_retried_ok", attempts=attempt + 1
                    )
                return reply
            except (ProcessDied, ProcessUnavailable) as exc:
                # The server (or its CPU) died mid-request, or the pair is
                # mid-takeover.  Retry against the re-resolved name with
                # the same message id so the new primary can suppress a
                # duplicate of an operation the old primary completed.
                last_error = exc
                self._trace("send_retry", destination=destination, error=type(exc).__name__)
                continue
            except (PathDown, RequestTimeout) as exc:
                raise FileSystemError(destination, exc) from exc
        raise FileSystemError(destination, last_error or DeliveryError("unknown"))

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, node=self.node_name, **fields)
