"""The GUARDIAN-like operating system layer.

Message-based, decentralized, no master: named OS processes with
inboxes, a location-transparent message system, fault-tolerant
process-pairs with checkpointing and takeover, and the File System layer
that gives applications transparent retry and automatic transid
propagation.
"""

from .cluster import Cluster
from .filesystem import FileSystem, FileSystemError, parse_destination
from .message import (
    DeliveryError,
    Message,
    MessageSystem,
    PathDown,
    ProcessDied,
    ProcessUnavailable,
    RequestTimeout,
)
from .pair import ConcurrentPair, PairDown, ProcessPair
from .process import NodeOs, OsProcess, ReceiveTimeout

__all__ = [
    "Cluster",
    "ConcurrentPair",
    "DeliveryError",
    "FileSystem",
    "FileSystemError",
    "Message",
    "MessageSystem",
    "NodeOs",
    "OsProcess",
    "PairDown",
    "PathDown",
    "ProcessDied",
    "ProcessPair",
    "ProcessUnavailable",
    "ReceiveTimeout",
    "RequestTimeout",
    "parse_destination",
]
