"""Cluster assembly: environment + network + per-node OS instances.

A :class:`Cluster` bundles everything one simulation run needs below the
data-management layer: the event loop, tracer, random streams, the
inter-node network, and a :class:`NodeOs` + :class:`FileSystem` per
node.  Higher layers (DISCPROCESSes, TMF, ENCOMPASS) are attached onto a
cluster by the configuration builder in :mod:`repro.encompass.config`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..hardware import Latencies, Network, Node
from ..sim import Environment, RandomStreams, Tracer
from .filesystem import FileSystem
from .message import MessageSystem
from .process import NodeOs

__all__ = ["Cluster"]


class Cluster:
    """The hardware/OS substrate of one simulated Tandem network."""

    def __init__(
        self,
        seed: int = 0,
        latencies: Optional[Latencies] = None,
        keep_trace: bool = True,
        metrics: Optional[Any] = None,
        trace: bool = False,
    ):
        self.env = Environment()
        # The XRAY metrics registry rides on the environment so every
        # layer can probe it without plumbing; None = unmeasured run.
        self.metrics = metrics
        self.env.metrics = metrics
        self.tracer = Tracer(keep_records=keep_trace)
        # The causal-tracing hub rides on the environment the same way;
        # None = untraced run.  (Lazy import: guardian must stay
        # importable below repro.trace.)
        self.trace_hub: Optional[Any] = None
        if trace:
            from ..trace.context import TraceHub
            self.trace_hub = TraceHub(self.env, self.tracer)
        self.env.trace = self.trace_hub
        self.streams = RandomStreams(seed)
        self.latencies = latencies or Latencies()
        self.network = Network(self.env, self.latencies, self.tracer)
        self.message_system = MessageSystem(
            self.env, self.network, self.latencies, self.tracer
        )
        self.oses: Dict[str, NodeOs] = {}
        self.filesystems: Dict[str, FileSystem] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, cpu_count: int = 2) -> NodeOs:
        node = Node(
            self.env, name, cpu_count, latencies=self.latencies, tracer=self.tracer
        )
        self.network.add_node(node)
        node_os = NodeOs(node, self.message_system, self.tracer)
        self.oses[name] = node_os
        self.filesystems[name] = FileSystem(node_os, self.tracer)
        return node_os

    def connect_all(self, latency: Optional[float] = None) -> None:
        self.network.connect_all(latency)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def os(self, name: str) -> NodeOs:
        return self.oses[name]

    def fs(self, name: str) -> FileSystem:
        return self.filesystems[name]

    def node(self, name: str) -> Node:
        return self.oses[name].node

    @property
    def node_names(self) -> list:
        return sorted(self.oses)

    def run(self, until: Any = None) -> Any:
        return self.env.run(until)

    def __repr__(self) -> str:
        return f"<Cluster nodes={self.node_names}>"
