"""The message system: location-transparent interprocess requests.

"All communications between processes is via messages.  The Message
System makes the physical distribution of hardware components
transparent to processes."  (paper, §The Tandem Operating System)

A *request* is delivered to a named destination process (same CPU, other
CPU over the interprocessor bus, or another node over the network) and
produces exactly one *reply* or one error:

* :class:`ProcessUnavailable` — no live process is registered under the
  destination name (e.g. both halves of a process-pair are down);
* :class:`ProcessDied` — the destination died after receiving the
  request but before replying (its CPU failed mid-operation);
* :class:`PathDown` — no communication path exists (bus pair dead within
  a node; network partition between nodes);
* :class:`RequestTimeout` — no reply within the caller's deadline
  (covers replies lost to a partition that formed mid-flight).

``ProcessDied`` is retried transparently by the file-system layer — that
retry, plus process-pair takeover, is what makes single-module failures
invisible to transaction processing.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from ..hardware import Latencies, Network, NoRoute
from ..sim import Environment, Event, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from .process import NodeOs, OsProcess

__all__ = [
    "Message",
    "MessageSystem",
    "DeliveryError",
    "ProcessUnavailable",
    "ProcessDied",
    "PathDown",
    "RequestTimeout",
]


class DeliveryError(Exception):
    """Base class for message-system failures."""


class ProcessUnavailable(DeliveryError):
    """No live process answers to the destination name."""


class ProcessDied(DeliveryError):
    """The destination died holding this request (no reply will come)."""


class PathDown(DeliveryError):
    """No path of up components connects the endpoints."""


class RequestTimeout(DeliveryError):
    """The caller's reply deadline expired."""


class Message:
    """One request in flight, with its pending reply event."""

    _ids = itertools.count(1)

    def __init__(
        self,
        source_node: str,
        source_name: str,
        dest_node: str,
        dest_name: str,
        payload: Any,
        transid: Any = None,
        msg_id: Optional[int] = None,
    ):
        # ``msg_id`` may be pinned by the caller so that a retried request
        # carries the same identity (duplicate suppression at the server).
        self.msg_id = msg_id if msg_id is not None else next(Message._ids)
        self.source_node = source_node
        self.source_name = source_name
        self.dest_node = dest_node
        self.dest_name = dest_name
        self.payload = payload
        self.transid = transid
        self.reply_event: Optional[Event] = None
        self.replied = False
        self.source_cpu = 0
        self.dest_cpu = 0
        #: trace context stamped by the TraceHub on traced runs (None on
        #: untraced runs and on untraced background chatter).
        self.trace_ctx: Optional[Any] = None

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.source_node}.{self.source_name} -> "
            f"{self.dest_node}.{self.dest_name} transid={self.transid}>"
        )


class MessageSystem:
    """Routes requests between processes anywhere in the cluster."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        latencies: Optional[Latencies] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.network = network
        self.latencies = latencies or Latencies()
        self.tracer = tracer
        self._node_os: Dict[str, "NodeOs"] = {}

    def register_node(self, node_os: "NodeOs") -> None:
        self._node_os[node_os.node.name] = node_os

    def node_os(self, node_name: str) -> "NodeOs":
        return self._node_os[node_name]

    # ------------------------------------------------------------------
    # Latency / reachability
    # ------------------------------------------------------------------
    def _transit_latency(
        self, source_node: str, source_cpu: int, dest_node: str, dest_cpu: int
    ) -> float:
        """One-way latency, or raise :class:`PathDown`.

        Also the accounting point for what the transit occupies: a local
        message is CPU work on the sender; an intra-node message holds
        an interprocessor bus for its duration.
        """
        metrics = self.env.metrics
        if source_node == dest_node:
            node = self._node_os[source_node].node
            if source_cpu == dest_cpu:
                latency = self.latencies.local_message
                node.cpus[source_cpu].charge(latency)
                if metrics is not None and metrics.enabled:
                    metrics.inc("msg.local")
                return latency
            if not node.buses.any_up:
                raise PathDown(f"both interprocessor buses down on {source_node}")
            latency = self.latencies.bus_message
            node.buses.record_transfer(latency)
            if metrics is not None and metrics.enabled:
                metrics.inc("msg.bus")
            return latency
        try:
            latency = self.network.latency(source_node, dest_node)
        except NoRoute as exc:
            raise PathDown(str(exc)) from exc
        if metrics is not None and metrics.enabled:
            metrics.inc("msg.network")
        return latency

    def reachable(self, source_node: str, dest_node: str) -> bool:
        if source_node == dest_node:
            return self._node_os[source_node].node.alive
        return self.network.connected(source_node, dest_node)

    # ------------------------------------------------------------------
    # Request / reply
    # ------------------------------------------------------------------
    def request(
        self,
        caller: "OsProcess",
        dest_node: str,
        dest_name: str,
        payload: Any,
        transid: Any = None,
        timeout: Optional[float] = None,
        msg_id: Optional[int] = None,
    ):
        """Send a request and wait for its reply.  (Generator helper.)

        Returns the reply payload; raises a :class:`DeliveryError` on
        failure.  Use as ``reply = yield from ms.request(...)``.
        """
        message = Message(
            source_node=caller.node_name,
            source_name=caller.name,
            dest_node=dest_node,
            dest_name=dest_name,
            payload=payload,
            transid=transid,
            msg_id=msg_id,
        )
        # Causal tracing: allocate the request's span as a child of the
        # sender's active context and stamp it onto the message, so the
        # serving side (possibly on another node) can link up.
        hub = self.env.trace
        trace_ctx = hub.on_send(message, caller.cpu.number) if hub is not None else None
        try:
            # One registry resolution up front for the transit accounting;
            # the post-transit re-resolution below is semantic (the
            # destination may die or take over while the request is in
            # flight), so only the node_os dict access is hoisted.
            dest_os = self._node_os[dest_node]
            pre_target = dest_os.lookup(dest_name)
            transit = self._transit_latency(
                caller.node_name,
                caller.cpu.number,
                dest_node,
                pre_target.cpu.number if pre_target is not None else 0,
            )
            self._count(caller.node_name, dest_node)
            yield self.env.timeout(transit)
            target = dest_os.lookup(dest_name)
            if target is None or not target.alive:
                raise ProcessUnavailable(f"{dest_node}.{dest_name}")
            message.source_cpu = caller.cpu.number
            message.dest_cpu = target.cpu.number
            message.reply_event = Event(self.env)
            target.accept(message)
            if timeout is None:
                reply = yield message.reply_event
                return reply
            deadline = self.env.timeout(timeout)
            outcome = yield self.env.any_of([message.reply_event, deadline])
            if message.reply_event in outcome:
                return outcome[message.reply_event]
            raise RequestTimeout(f"{message!r} after {timeout}ms")
        finally:
            # The requester-observed end of the span: reply, error, or
            # the caller's death (GeneratorExit runs this too).
            if trace_ctx is not None:
                hub.on_rpc_done(trace_ctx)

    def reply(self, message: Message, payload: Any) -> None:
        """Deliver the reply to ``message``.  Callable from handlers.

        The reply transits the same media as the request.  If no path
        exists at reply time (partition formed mid-request) the reply is
        dropped and the requester's timeout fires — the end-to-end
        protocol's job is exactly to surface that as an error.
        """
        if message.replied:
            # The request was already answered — usually failed with
            # ProcessDied after a CPU failure while a sub-handler was
            # still finishing.  The requester has moved on (retried);
            # this late reply is dropped like a stale network packet.
            return
        message.replied = True
        event = message.reply_event
        if event is None or event.triggered:
            return
        try:
            delay = self._transit_latency(
                message.dest_node,
                message.dest_cpu,
                message.source_node,
                message.source_cpu,
            )
        except PathDown:
            self._trace("reply_lost", message=message.msg_id)
            return
        self._later(delay, lambda: None if event.triggered else event.succeed(payload))

    def fail_request(self, message: Message, error: DeliveryError) -> None:
        """Fail the requester (destination died holding the message)."""
        if message.replied:
            return
        message.replied = True
        event = message.reply_event
        if event is None or event.triggered:
            return
        event.fail(error)
        # If the requester died in the same failure (e.g. both processes
        # shared the failed CPU), nobody is left to observe this error;
        # it must not abort the simulation.
        event.defused = True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _later(self, delay: float, fn: Callable[[], None]) -> None:
        timer = self.env.timeout(delay)
        timer.callbacks.append(lambda _event: fn())

    def _count(self, source_node: str, dest_node: str) -> None:
        if self.tracer is None:
            return
        kind = "msg_local" if source_node == dest_node else "msg_network"
        self.tracer.emit(self.env.now, kind, source=source_node, dest=dest_node)

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, **fields)
