"""The process-pair: NonStop's unit of fault-tolerant service.

"An I/O process-pair consists of two cooperating processes which run in
two processors ... The primary process sends the backup process
'checkpoints' ... which ensure that the backup process has all the
information that it would need in the event of failure to assume control
... and carry through to completion any operation initiated by the
primary."  (paper, §The Tandem Operating System)

:class:`ProcessPair` is the generic mechanism: subclasses implement
``handle`` (the server loop body) and call ``checkpoint`` to replicate
whatever state the backup would need.  The pair:

* runs the primary server loop in one CPU and keeps a passive backup
  image in another;
* promotes the backup to primary when the primary's CPU fails (state is
  the last checkpointed image — exactly the paper's semantics: anything
  not yet checkpointed is lost, so subclasses checkpoint *before*
  exposing effects, the discipline that substitutes for Write-Ahead-Log);
* recruits a replacement backup CPU after a takeover, or runs
  *unprotected* when no CPU is available, re-protecting when one returns;
* is *down* only when both CPUs fail before a new backup was recruited —
  the multi-module failure that §ROLLFORWARD exists for.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..sim import ATOMIC_TYPES, Tracer, fast_deepcopy
from .message import Message
from .process import NodeOs, OsProcess

__all__ = ["ProcessPair", "PairDown"]


class PairDown(Exception):
    """Both halves of a process-pair are gone (multi-module failure)."""


class ProcessPair:
    """A named, fault-tolerant server replicated across two CPUs."""

    def __init__(
        self,
        node_os: NodeOs,
        name: str,
        primary_cpu: int,
        backup_cpu: int,
        tracer: Optional[Tracer] = None,
        allowed_cpus: Optional[Any] = None,
    ):
        if primary_cpu == backup_cpu:
            raise ValueError("primary and backup must run in distinct CPUs")
        self.node_os = node_os
        self.env = node_os.env
        self.name = name
        self.tracer = tracer
        # An I/O process-pair can only run in the CPUs physically
        # connected to its device (None = any CPU, e.g. TCPs and TMPs).
        self.allowed_cpus = set(allowed_cpus) if allowed_cpus is not None else None
        self.state: Dict[str, Any] = {}
        self.backup_state: Dict[str, Any] = {}
        self.primary_cpu: Optional[int] = primary_cpu
        self.backup_cpu: Optional[int] = backup_cpu
        self.takeovers = 0
        self.checkpoints_sent = 0
        self._apply_state_defaults()
        self.primary_process: Optional[OsProcess] = node_os.spawn(
            name, primary_cpu, self._serve
        )
        for cpu in node_os.node.cpus:
            cpu.watch_failure(self._on_cpu_failure)
            cpu.watch_restore(self._on_cpu_restore)

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """True while a primary is serving requests."""
        return (
            self.primary_process is not None
            and self.primary_process.alive
        )

    @property
    def protected(self) -> bool:
        """True while a backup CPU stands by."""
        return self.backup_cpu is not None

    @property
    def node_name(self) -> str:
        return self.node_os.node.name

    # ------------------------------------------------------------------
    # Server loop
    # ------------------------------------------------------------------
    def _serve(self, proc: OsProcess) -> Generator:
        self.on_start(proc)
        while True:
            message = yield from proc.receive()
            yield from self.handle(proc, message)

    def handle(self, proc: OsProcess, message: Message) -> Generator:
        """Process one request.  Subclasses must implement this."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator

    def on_start(self, proc: OsProcess) -> None:
        """Hook: a (new) primary is about to start serving."""

    def state_defaults(self) -> Dict[str, Any]:
        """Tables/keys that must exist in ``self.state`` at all times.

        Re-applied whenever the state is replaced (takeover, restart),
        so a takeover that precedes the first checkpoint still finds its
        tables.
        """
        return {}

    def _apply_state_defaults(self) -> None:
        for key, value in self.state_defaults().items():
            self.state.setdefault(key, value)

    def on_takeover(self) -> None:
        """Hook: state has been replaced by the checkpointed image."""

    def on_pair_down(self) -> None:
        """Hook: both halves are dead."""

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, _charge: bool = True, **entries: Any) -> Generator:
        """Replicate ``entries`` of ``self.state`` to the backup image.

        Costs one interprocessor checkpoint message (``_charge=False``
        piggybacks on the preceding checkpoint in the same operation and
        costs nothing extra).  A deep copy isolates the backup image from
        later in-place mutation by the primary — the two processes have
        separate memories.
        """
        for key, value in entries.items():
            self.state[key] = value
        if self.backup_cpu is not None:
            if _charge:
                # A checkpoint is an interprocessor message: it occupies
                # a bus for its duration.
                node = self.node_os.node
                latency = node.latencies.checkpoint
                node.buses.record_transfer(latency)
                yield self.env.timeout(latency)
                self.checkpoints_sent += 1
                metrics = self.env.metrics
                if metrics is not None and metrics.enabled:
                    metrics.inc("pair.checkpoints")
                if self.tracer is not None:
                    self._trace("checkpoint", keys=sorted(entries))
            backup_state = self.backup_state
            for key, value in entries.items():
                backup_state[key] = fast_deepcopy(value)

    def checkpoint_update(
        self,
        table: str,
        updates: Optional[Dict[Any, Any]] = None,
        removals: Any = (),
        _charge: bool = True,
    ) -> Generator:
        """Delta-checkpoint entries of the dict ``self.state[table]``.

        Applies ``updates`` and ``removals`` to the primary's table and
        mirrors them (deep-copied) into the backup image, at the cost of
        a single checkpoint message (``_charge=False`` piggybacks).
        Used for large tables (dirty blocks, lock grants, duplicate-
        suppression entries) where re-copying the whole table per
        operation would be wrong.
        """
        table_state = self.state.setdefault(table, {})
        if updates:
            table_state.update(updates)
        for key in removals:
            table_state.pop(key, None)
        if self.backup_cpu is not None:
            if _charge:
                node = self.node_os.node
                latency = node.latencies.checkpoint
                node.buses.record_transfer(latency)
                yield self.env.timeout(latency)
                self.checkpoints_sent += 1
                metrics = self.env.metrics
                if metrics is not None and metrics.enabled:
                    metrics.inc("pair.checkpoints")
                if self.tracer is not None:
                    self._trace("checkpoint", table=table)
            backup_table = self.backup_state.setdefault(table, {})
            if updates:
                atomic = ATOMIC_TYPES
                for key, value in updates.items():
                    backup_table[key] = (
                        value if value.__class__ in atomic
                        else fast_deepcopy(value)
                    )
            for key in removals:
                backup_table.pop(key, None)

    def checkpoint_multi(
        self,
        parts: Any,
        scalars: Optional[Dict[str, Any]] = None,
        _charge: bool = True,
    ) -> Generator:
        """Delta-checkpoint several tables (plus scalars) in one message.

        ``parts`` is a sequence of ``(table, updates, removals)``.
        Semantically equivalent to one :meth:`checkpoint_update` per part
        plus a :meth:`checkpoint` of the scalars, but the whole
        multi-part payload costs a *single* checkpoint message — the
        coalescing the real pairs did: one IPC carries every delta an
        operation produced.
        """
        for table, updates, removals in parts:
            table_state = self.state.setdefault(table, {})
            if updates:
                table_state.update(updates)
            for key in removals:
                table_state.pop(key, None)
        if scalars:
            for key, value in scalars.items():
                self.state[key] = value
        if self.backup_cpu is not None:
            if _charge:
                node = self.node_os.node
                latency = node.latencies.checkpoint
                node.buses.record_transfer(latency)
                yield self.env.timeout(latency)
                self.checkpoints_sent += 1
                metrics = self.env.metrics
                if metrics is not None and metrics.enabled:
                    metrics.inc("pair.checkpoints")
                if self.tracer is not None:
                    self._trace(
                        "checkpoint",
                        tables=[table for table, _u, _r in parts],
                    )
            atomic = ATOMIC_TYPES
            backup_state = self.backup_state
            for table, updates, removals in parts:
                backup_table = backup_state.setdefault(table, {})
                if updates:
                    for key, value in updates.items():
                        backup_table[key] = (
                            value if value.__class__ in atomic
                            else fast_deepcopy(value)
                        )
                for key in removals:
                    backup_table.pop(key, None)
            if scalars:
                for key, value in scalars.items():
                    backup_state[key] = fast_deepcopy(value)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_cpu_failure(self, cpu) -> None:
        if cpu.number == self.primary_cpu:
            self._takeover()
        elif cpu.number == self.backup_cpu:
            self._lose_backup()

    def _on_cpu_restore(self, cpu) -> None:
        if self.backup_cpu is None and self.available:
            if cpu.number != self.primary_cpu and (
                self.allowed_cpus is None or cpu.number in self.allowed_cpus
            ):
                self._adopt_backup(cpu.number)

    def _takeover(self) -> None:
        failed_cpu = self.primary_cpu
        self.primary_cpu = None
        self.primary_process = None
        if self.backup_cpu is None or not self.node_os.node.cpus[self.backup_cpu].up:
            self.backup_cpu = None
            self._trace("pair_down", last_cpu=failed_cpu)
            self.on_pair_down()
            return
        # Promote: the backup's knowledge is exactly the checkpointed image.
        self.takeovers += 1
        self.primary_cpu, self.backup_cpu = self.backup_cpu, None
        self.state = fast_deepcopy(self.backup_state)
        self._apply_state_defaults()
        self.on_takeover()
        self.primary_process = self.node_os.spawn(
            self.name, self.primary_cpu, self._serve
        )
        self._trace("takeover", new_primary_cpu=self.primary_cpu)
        replacement = self._pick_backup_cpu()
        if replacement is not None:
            self._adopt_backup(replacement)

    def _lose_backup(self) -> None:
        self.backup_cpu = None
        self._trace("backup_lost")
        replacement = self._pick_backup_cpu()
        if replacement is not None and self.available:
            self._adopt_backup(replacement)

    def _pick_backup_cpu(self) -> Optional[int]:
        exclude = [self.primary_cpu] if self.primary_cpu is not None else []
        candidate = self.node_os.pick_cpu(exclude=exclude)
        if candidate is None:
            return None
        if self.allowed_cpus is not None:
            allowed = [
                n
                for n in self.node_os.alive_cpu_numbers()
                if n in self.allowed_cpus and n not in exclude
            ]
            return allowed[0] if allowed else None
        return candidate

    def _adopt_backup(self, cpu_number: int) -> None:
        self.backup_cpu = cpu_number
        self.backup_state = fast_deepcopy(self.state)
        self._trace("backup_adopted", cpu=cpu_number)

    def restart(self, primary_cpu: int, backup_cpu: Optional[int] = None) -> None:
        """Cold-start a fully-dead pair (used by node-recovery procedures).

        The state is whatever survived in the checkpointed image; for a
        DISCPROCESS the caller is responsible for running volume recovery
        (ROLLFORWARD) before trusting the data base.
        """
        if self.available:
            raise RuntimeError(f"pair {self.name} is still available")
        self.primary_cpu = primary_cpu
        self.state = fast_deepcopy(self.backup_state)
        self._apply_state_defaults()
        self.on_takeover()
        self.primary_process = self.node_os.spawn(
            self.name, primary_cpu, self._serve
        )
        if backup_cpu is not None and backup_cpu != primary_cpu:
            self._adopt_backup(backup_cpu)
        else:
            self.backup_cpu = None
        self._trace("pair_restarted", primary_cpu=primary_cpu)

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, kind, pair=f"{self.node_name}.{self.name}", **fields
            )

    def __repr__(self) -> str:
        return (
            f"<ProcessPair {self.node_name}.{self.name} "
            f"primary_cpu={self.primary_cpu} backup_cpu={self.backup_cpu}>"
        )


class ConcurrentPair(ProcessPair):
    """A process-pair that serves requests concurrently.

    The real DISCPROCESS (and TMP) multiplex many outstanding requests;
    a lock wait by one transaction must not stall the unlock that would
    release it.  ``handle`` therefore spawns one sub-coroutine per
    request; subclasses implement :meth:`serve_request`.

    Sub-handlers are killed on primary failure (their in-progress work
    is exactly what the checkpoint discipline makes recoverable).
    """

    def __init__(self, *args: Any, **kwargs: Any):
        self._active_handlers: set = set()
        super().__init__(*args, **kwargs)

    def handle(self, proc: OsProcess, message: Message) -> Generator:
        handler = self.env.process(
            self._run_handler(proc, message),
            name=f"{self.name}.h{message.msg_id}",
        )
        self._active_handlers.add(handler)
        handler.callbacks.append(
            lambda _event: self._active_handlers.discard(handler)
        )
        return
        yield  # pragma: no cover - generator marker

    def _run_handler(self, proc: OsProcess, message: Message) -> Generator:
        hub = self.env.trace
        if hub is None:
            yield from self.serve_request(proc, message)
            return
        # Causal tracing: the sub-handler is one serve span, child of
        # the message's send span.  The span closes even when the
        # handler is killed mid-request (takeover): GeneratorExit runs
        # the finally, and serve_end only emits — it never yields.
        ctx = hub.serve_begin(
            message, node=self.node_name, proc_name=self.name,
            cpu=proc.cpu.number,
        )
        try:
            yield from self.serve_request(proc, message)
        finally:
            hub.serve_end(ctx)

    def serve_request(self, proc: OsProcess, message: Message) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def _kill_handlers(self, reason: str) -> None:
        handlers, self._active_handlers = self._active_handlers, set()
        for handler in handlers:
            handler.kill(reason)

    def on_takeover(self) -> None:
        self._kill_handlers("primary failed")

    def on_pair_down(self) -> None:
        self._kill_handlers("pair down")
