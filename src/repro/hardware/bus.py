"""The dual interprocessor buses (Dynabus) of a node.

Every pair of CPUs within a node is connected by two independent
high-speed buses.  A message can be carried as long as *either* bus is
up; the loss of one bus is invisible to software (paper §Hardware
Architecture: "At least two paths connect any two components").
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment, Tracer
from .component import Component

__all__ = ["InterprocessorBus", "BusPair"]


class InterprocessorBus(Component):
    """One of the two redundant interprocessor buses."""

    kind = "bus"


class BusPair:
    """The X and Y buses of a node, with path selection."""

    def __init__(self, env: Environment, node_name: str, tracer: Optional[Tracer] = None):
        self.env = env
        self.x = InterprocessorBus(env, f"{node_name}.busX", tracer)
        self.y = InterprocessorBus(env, f"{node_name}.busY", tracer)
        #: accumulated transfer time (ms) and transfer count over both
        #: buses; the XRAY sampler reads deltas to derive occupancy.
        self.busy_ms = 0.0
        self.transfers = 0

    def record_transfer(self, ms: float) -> None:
        """Account one interprocessor transfer of ``ms`` on the pair."""
        self.busy_ms += ms
        self.transfers += 1

    @property
    def buses(self) -> List[InterprocessorBus]:
        return [self.x, self.y]

    def available(self) -> Optional[InterprocessorBus]:
        """An up bus to carry the next transfer, or None if both failed.

        The X bus is preferred when both are up, matching the fixed
        primary-path selection of the real hardware.
        """
        if self.x.up:
            return self.x
        if self.y.up:
            return self.y
        return None

    @property
    def any_up(self) -> bool:
        return self.available() is not None
