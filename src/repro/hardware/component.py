"""Base class for failable hardware components.

Every physical element of the simulated Tandem system — CPU, bus, I/O
channel, I/O controller, disc drive, communication line — is a
:class:`Component`: it is either *up* or *down*, and higher layers can
subscribe to its failure/restore transitions.  Failure semantics are
modelled structurally (paths through up components), exactly the property
Figure 1 of the paper illustrates.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..sim import Environment, Tracer

__all__ = ["Component", "ComponentDown"]


class ComponentDown(Exception):
    """An operation required a component that is currently down."""

    def __init__(self, component: "Component"):
        super().__init__(f"{component.full_name} is down")
        self.component = component


class Component:
    """A named hardware module with up/down state and watchers."""

    kind = "component"

    def __init__(self, env: Environment, name: str, tracer: Optional[Tracer] = None):
        self.env = env
        self.name = name
        self.tracer = tracer
        self._up = True
        self._failure_watchers: List[Callable[["Component"], None]] = []
        self._restore_watchers: List[Callable[["Component"], None]] = []

    @property
    def up(self) -> bool:
        return self._up

    @property
    def down(self) -> bool:
        return not self._up

    @property
    def full_name(self) -> str:
        return f"{self.kind}:{self.name}"

    def check_up(self) -> None:
        """Raise :class:`ComponentDown` unless the component is up."""
        if not self._up:
            raise ComponentDown(self)

    def fail(self, reason: Any = None) -> None:
        """Take the component down; notifies failure watchers once."""
        if not self._up:
            return
        self._up = False
        self._trace("component_failed", reason=reason)
        self.on_fail(reason)
        for watcher in list(self._failure_watchers):
            watcher(self)

    def restore(self) -> None:
        """Bring the component back up; notifies restore watchers once."""
        if self._up:
            return
        self._up = True
        self._trace("component_restored")
        self.on_restore()
        for watcher in list(self._restore_watchers):
            watcher(self)

    def watch_failure(self, callback: Callable[["Component"], None]) -> None:
        self._failure_watchers.append(callback)

    def watch_restore(self, callback: Callable[["Component"], None]) -> None:
        self._restore_watchers.append(callback)

    def on_fail(self, reason: Any) -> None:
        """Subclass hook run before watchers on failure."""

    def on_restore(self) -> None:
        """Subclass hook run before watchers on restore."""

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, component=self.full_name, **fields)

    def __repr__(self) -> str:
        state = "up" if self._up else "DOWN"
        return f"<{type(self).__name__} {self.name} {state}>"
