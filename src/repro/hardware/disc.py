"""Disc drives, dual-ported I/O controllers, and mirrored volumes.

The paper's I/O fabric (Figure 1): each I/O controller is redundantly
powered and connected to two I/O channels (i.e. two CPUs); disc drives
may be connected to two controllers; and drives may be duplicated
("mirrored") so the data base stays accessible despite disc failures.

A :class:`MirroredVolume` bundles one or two drives with the controllers
that reach them, and answers the structural questions the upper layers
ask: *is the volume accessible from CPU n*, and *what are the physical
contents*.  Drive contents survive CPU failures (they are on disc) and
are lost only when the drive itself fails.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..sim import Environment, Tracer
from .component import Component
from .processor import Cpu, IoChannel

__all__ = ["DiscDrive", "IoController", "MirroredVolume", "VolumeUnavailable"]


class VolumeUnavailable(Exception):
    """No functioning path (or no surviving drive) for a volume."""


class DiscDrive(Component):
    """One physical disc spindle holding a block map.

    ``blocks`` maps block identifiers to immutable block images.  When a
    failed drive is restored its contents are *stale*; a revive (copy
    from the mirror) is required before it may serve reads again.
    """

    kind = "drive"

    def __init__(self, env: Environment, name: str, tracer: Optional[Tracer] = None):
        super().__init__(env, name, tracer)
        self.blocks: Dict[Any, Any] = {}
        self.stale = False

    def on_fail(self, reason: Any) -> None:
        # Media loss: a failed drive comes back empty and stale.
        self.blocks.clear()
        self.stale = True

    @property
    def serviceable(self) -> bool:
        return self.up and not self.stale


class IoController(Component):
    """A dual-ported disc controller connected to two I/O channels."""

    kind = "controller"

    def __init__(
        self,
        env: Environment,
        name: str,
        channels: Iterable[IoChannel],
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(env, name, tracer)
        self.channels: List[IoChannel] = list(channels)
        if not 1 <= len(self.channels) <= 2:
            raise ValueError("a controller connects to one or two channels")

    def reaches_cpu(self, cpu: Cpu) -> bool:
        """True if this controller can move data to/from ``cpu`` now."""
        if not self.up:
            return False
        return any(
            channel.up and channel.cpu is cpu and cpu.up
            for channel in self.channels
        )


class MirroredVolume:
    """A logical disc volume: one or two drives behind shared controllers.

    All writes go to every serviceable drive; reads are served by the
    first serviceable drive.  The volume is *accessible* from a CPU when
    at least one up controller reaches that CPU and at least one drive is
    serviceable.
    """

    def __init__(
        self,
        name: str,
        drives: Iterable[DiscDrive],
        controllers: Iterable[IoController],
    ):
        self.name = name
        self.drives: List[DiscDrive] = list(drives)
        self.controllers: List[IoController] = list(controllers)
        if not 1 <= len(self.drives) <= 2:
            raise ValueError("a volume has one or two drives")
        if not self.controllers:
            raise ValueError("a volume needs at least one controller")
        #: physical block-operation tallies (all drives of the mirror);
        #: read by the XRAY report alongside the DISCPROCESS counters.
        self.block_reads = 0
        self.block_writes = 0

    @property
    def mirrored(self) -> bool:
        return len(self.drives) == 2

    def serviceable_drives(self) -> List[DiscDrive]:
        return [drive for drive in self.drives if drive.serviceable]

    @property
    def any_drive_up(self) -> bool:
        return bool(self.serviceable_drives())

    def accessible_from(self, cpu: Cpu) -> bool:
        if not self.any_drive_up:
            return False
        return any(controller.reaches_cpu(cpu) for controller in self.controllers)

    def paths_from(self, cpu: Cpu) -> int:
        """Number of independent controller paths from ``cpu`` (Figure 1)."""
        return sum(1 for controller in self.controllers if controller.reaches_cpu(cpu))

    # ------------------------------------------------------------------
    # Physical block I/O.  These are *instantaneous state changes*; the
    # DISCPROCESS accounts for the time cost via its latency model.
    # ------------------------------------------------------------------
    def write_block(self, block_id: Any, image: Any) -> None:
        drives = self.serviceable_drives()
        if not drives:
            raise VolumeUnavailable(f"no serviceable drive on {self.name}")
        self.block_writes += 1
        for drive in drives:
            drive.blocks[block_id] = image

    def read_block(self, block_id: Any, default: Any = None) -> Any:
        drives = self.serviceable_drives()
        if not drives:
            raise VolumeUnavailable(f"no serviceable drive on {self.name}")
        self.block_reads += 1
        return drives[0].blocks.get(block_id, default)

    def delete_block(self, block_id: Any) -> None:
        drives = self.serviceable_drives()
        if not drives:
            raise VolumeUnavailable(f"no serviceable drive on {self.name}")
        for drive in drives:
            drive.blocks.pop(block_id, None)

    def block_ids(self) -> List[Any]:
        drives = self.serviceable_drives()
        if not drives:
            raise VolumeUnavailable(f"no serviceable drive on {self.name}")
        return list(drives[0].blocks.keys())

    def revive(self) -> int:
        """Copy contents onto restored-but-stale drives from a good mirror.

        Returns the number of blocks copied.  Raises if there is no
        serviceable source drive.
        """
        sources = self.serviceable_drives()
        copied = 0
        for drive in self.drives:
            if drive.up and drive.stale:
                if not sources:
                    raise VolumeUnavailable(
                        f"cannot revive {drive.name}: no good mirror on {self.name}"
                    )
                drive.blocks = dict(sources[0].blocks)
                drive.stale = False
                copied += len(drive.blocks)
        return copied

    def __repr__(self) -> str:
        drives = ",".join(
            f"{d.name}({'ok' if d.serviceable else 'down'})" for d in self.drives
        )
        return f"<MirroredVolume {self.name} [{drives}]>"
