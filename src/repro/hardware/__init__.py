"""Simulated Tandem NonStop hardware (Figure 1 of the paper).

Processor modules with private memory and I/O channels, dual
interprocessor buses, dual-ported disc controllers, mirrored disc
drives, nodes of 2–16 CPUs, and the EXPAND-like inter-node network —
all failable independently, with at least two paths between any two
components.
"""

from .bus import BusPair, InterprocessorBus
from .component import Component, ComponentDown
from .disc import DiscDrive, IoController, MirroredVolume, VolumeUnavailable
from .latencies import Latencies
from .network import CommLine, Network, NoRoute
from .node import Node
from .processor import Cpu, IoChannel

__all__ = [
    "BusPair",
    "CommLine",
    "Component",
    "ComponentDown",
    "Cpu",
    "DiscDrive",
    "InterprocessorBus",
    "IoChannel",
    "IoController",
    "Latencies",
    "MirroredVolume",
    "Network",
    "NoRoute",
    "Node",
    "VolumeUnavailable",
]
