"""Processor modules and their I/O channels.

A Tandem node contains 2–16 :class:`Cpu` modules, each with its own
power supply, memory and I/O channel (paper §Hardware Architecture).
A CPU failure takes its I/O channel down with it; restoring the CPU
restores the channel.  The operating system layer subscribes to CPU
failure to kill resident processes and drive process-pair takeover.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import Environment, Tracer
from .component import Component

__all__ = ["Cpu", "IoChannel"]


class IoChannel(Component):
    """The I/O channel of one CPU; fate-shared with its CPU."""

    kind = "channel"

    def __init__(self, env: Environment, cpu: "Cpu", tracer: Optional[Tracer] = None):
        super().__init__(env, f"{cpu.name}.ch", tracer)
        self.cpu = cpu


class Cpu(Component):
    """One processor module of a node."""

    kind = "cpu"

    def __init__(
        self,
        env: Environment,
        node_name: str,
        number: int,
        memory_mb: int = 2,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(env, f"{node_name}.cpu{number}", tracer)
        self.node_name = node_name
        self.number = number
        self.memory_mb = memory_mb
        self.channel = IoChannel(env, self, tracer)
        #: accumulated busy time (ms); the XRAY sampler reads deltas of
        #: this to derive busy fraction per interval.
        self.busy_ms = 0.0

    def charge(self, ms: float) -> None:
        """Account ``ms`` of processing time to this CPU."""
        self.busy_ms += ms

    def on_fail(self, reason: Any) -> None:
        # The I/O channel is part of the processor module: it shares the
        # module's power supply and dies with it.
        self.channel.fail(reason=f"cpu {self.name} failed")

    def on_restore(self) -> None:
        self.channel.restore()

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Cpu {self.name} {state}>"
