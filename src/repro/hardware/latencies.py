"""Timing parameters of the simulated hardware (milliseconds).

Defaults are loosely calibrated to the 1981-era Tandem NonStop II: a
13.5 MB/s interprocessor bus, ~1 MIPS processors, and 30 ms-class disc
drives.  Absolute values do not matter for the reproduced experiments
(the paper reports no absolute numbers); *ratios* do — e.g. an
interprocessor checkpoint message is two orders of magnitude cheaper
than a forced disc write, which is what makes the paper's
checkpoint-instead-of-WAL argument (bench E2) visible.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Latencies"]


@dataclass
class Latencies:
    """All simulated delays, in milliseconds."""

    # CPU-local work
    local_message: float = 0.01        # same-CPU interprocess message
    instruction_burst: float = 0.05    # generic slice of application work

    # Interprocessor bus (intra-node)
    bus_message: float = 0.1           # CPU-to-CPU message over Dynabus
    bus_broadcast: float = 0.1         # state-change broadcast to all CPUs

    # Disc subsystem
    disc_read: float = 25.0            # random read (cache miss)
    disc_write: float = 25.0           # forced (synchronous) write
    cache_hit: float = 0.1             # block found in DISCPROCESS cache
    checkpoint: float = 0.2            # DISCPROCESS primary->backup checkpoint

    # Network (inter-node, per hop)
    network_hop: float = 15.0          # EXPAND line transit per hop
    network_timeout: float = 500.0     # end-to-end delivery timeout

    def scaled(self, factor: float) -> "Latencies":
        """A copy with every delay multiplied by ``factor``."""
        return Latencies(
            **{name: getattr(self, name) * factor for name in self.__dataclass_fields__}
        )
