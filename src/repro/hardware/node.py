"""A Tandem node: 2–16 CPUs, dual buses, and an I/O fabric.

The node object is pure hardware; the operating system layer
(:mod:`repro.guardian`) is attached on top of it.  Helpers are provided
for the failure drills the experiments need: single-CPU failure, total
node failure (the double-processor failure the ROLLFORWARD section of
the paper is about), and component inventory for the Figure 1 path
checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Environment, Tracer
from .bus import BusPair
from .component import Component
from .disc import DiscDrive, IoController, MirroredVolume
from .latencies import Latencies
from .processor import Cpu

__all__ = ["Node"]


class Node:
    """The hardware of one network node."""

    MIN_CPUS = 2
    MAX_CPUS = 16

    def __init__(
        self,
        env: Environment,
        name: str,
        cpu_count: int = 2,
        latencies: Optional[Latencies] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not self.MIN_CPUS <= cpu_count <= self.MAX_CPUS:
            raise ValueError(
                f"a node has {self.MIN_CPUS}..{self.MAX_CPUS} CPUs, got {cpu_count}"
            )
        self.env = env
        self.name = name
        self.tracer = tracer
        self.latencies = latencies or Latencies()
        self.cpus: List[Cpu] = [
            Cpu(env, name, number, tracer=tracer) for number in range(cpu_count)
        ]
        self.buses = BusPair(env, name, tracer=tracer)
        self.volumes: Dict[str, MirroredVolume] = {}
        self.controllers: List[IoController] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_volume(
        self,
        name: str,
        cpu_a: int,
        cpu_b: int,
        mirrored: bool = True,
        dual_controllers: bool = True,
    ) -> MirroredVolume:
        """Create a disc volume served by CPUs ``cpu_a`` and ``cpu_b``.

        The volume gets one or two controllers, each dual-ported to the
        I/O channels of both CPUs, and one or two drives — the Figure 1
        wiring where every drive has at least two paths to processors.
        """
        if name in self.volumes:
            raise ValueError(f"volume {name} already exists on node {self.name}")
        if cpu_a == cpu_b:
            raise ValueError("a volume must be served by two distinct CPUs")
        channels = [self.cpus[cpu_a].channel, self.cpus[cpu_b].channel]
        count = 2 if dual_controllers else 1
        controllers = [
            IoController(self.env, f"{self.name}.{name}.ctl{i}", channels, self.tracer)
            for i in range(count)
        ]
        self.controllers.extend(controllers)
        drive_count = 2 if mirrored else 1
        drives = [
            DiscDrive(self.env, f"{self.name}.{name}.drv{i}", self.tracer)
            for i in range(drive_count)
        ]
        volume = MirroredVolume(name, drives, controllers)
        self.volumes[name] = volume
        return volume

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cpu(self, number: int) -> Cpu:
        return self.cpus[number]

    def alive_cpus(self) -> List[Cpu]:
        return [cpu for cpu in self.cpus if cpu.up]

    @property
    def alive(self) -> bool:
        """A node is alive while at least one CPU and one bus are up."""
        return bool(self.alive_cpus()) and self.buses.any_up

    def components(self) -> List[Component]:
        """Every failable component of this node (for the E9 sweep)."""
        items: List[Component] = []
        for cpu in self.cpus:
            items.append(cpu)
            items.append(cpu.channel)
        items.extend(self.buses.buses)
        items.extend(self.controllers)
        for volume in self.volumes.values():
            items.extend(volume.drives)
        return items

    # ------------------------------------------------------------------
    # Failure drills
    # ------------------------------------------------------------------
    def fail_cpu(self, number: int, reason: str = "injected") -> None:
        self.cpus[number].fail(reason=reason)

    def restore_cpu(self, number: int) -> None:
        self.cpus[number].restore()

    def total_failure(self, reason: str = "total node failure") -> None:
        """Fail every CPU at once (the multi-module disaster of §ROLLFORWARD).

        Disc drives keep their contents: the data base survives on disc,
        possibly inconsistent, which is exactly what ROLLFORWARD repairs.
        """
        for cpu in self.cpus:
            cpu.fail(reason=reason)

    def restore_all_cpus(self) -> None:
        for cpu in self.cpus:
            cpu.restore()

    def __repr__(self) -> str:
        return (
            f"<Node {self.name} cpus={len(self.cpus)} "
            f"volumes={sorted(self.volumes)}>"
        )
