"""The EXPAND-like data-communications network between nodes.

Features reproduced from §"The Tandem Network" of the paper:

1. fault-tolerant nodes (built by :mod:`repro.hardware.node`);
2. transparent access to remote resources (the message system routes
   through this object without callers naming paths);
3. decentralized control — this class holds topology only, no master;
4. dynamic best-path routing with automatic re-routing on line failure;
5. end-to-end acknowledged packet forwarding (modelled as: a message is
   delivered iff a path of up lines exists between up nodes; otherwise
   the sender gets an explicit undeliverable error).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sim import Environment, Tracer
from .component import Component
from .latencies import Latencies
from .node import Node

__all__ = ["CommLine", "Network", "NoRoute"]


class NoRoute(Exception):
    """No path of up lines exists between two nodes."""

    def __init__(self, source: str, destination: str):
        super().__init__(f"no route from {source} to {destination}")
        self.source = source
        self.destination = destination


class CommLine(Component):
    """A bidirectional communication line between two nodes."""

    kind = "line"

    def __init__(
        self,
        env: Environment,
        a: str,
        b: str,
        latency: float,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(env, f"{a}--{b}", tracer)
        self.endpoints: Tuple[str, str] = (a, b)
        self.latency = latency

    def other_end(self, node_name: str) -> str:
        a, b = self.endpoints
        if node_name == a:
            return b
        if node_name == b:
            return a
        raise ValueError(f"{node_name} is not an endpoint of {self.name}")


class Network:
    """Topology and routing for a collection of Tandem nodes."""

    def __init__(
        self,
        env: Environment,
        latencies: Optional[Latencies] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.tracer = tracer
        self.latencies = latencies or Latencies()
        self.nodes: Dict[str, Node] = {}
        self.lines: List[CommLine] = []
        self._adjacency: Dict[str, List[CommLine]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name}")
        self.nodes[node.name] = node
        self._adjacency.setdefault(node.name, [])
        return node

    def connect(self, a: str, b: str, latency: Optional[float] = None) -> CommLine:
        """Install a line between nodes ``a`` and ``b``."""
        for name in (a, b):
            if name not in self.nodes:
                raise ValueError(f"unknown node {name}")
        if a == b:
            raise ValueError("cannot connect a node to itself")
        line = CommLine(
            self.env, a, b, latency or self.latencies.network_hop, self.tracer
        )
        self.lines.append(line)
        self._adjacency[a].append(line)
        self._adjacency[b].append(line)
        return line

    def connect_all(self, latency: Optional[float] = None) -> None:
        """Full mesh over all current nodes (the Figure 4 topology)."""
        names = sorted(self.nodes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                self.connect(a, b, latency)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, source: str, destination: str) -> List[CommLine]:
        """Best path (fewest hops, then lowest total latency) of up lines.

        Raises :class:`NoRoute` when the nodes are partitioned or an
        endpoint node is dead.
        """
        if source == destination:
            return []
        src = self.nodes.get(source)
        dst = self.nodes.get(destination)
        if src is None or dst is None:
            raise ValueError(f"unknown node in route {source}->{destination}")
        if not src.alive or not dst.alive:
            raise NoRoute(source, destination)
        best: Dict[str, Tuple[int, float, List[CommLine]]] = {
            source: (0, 0.0, [])
        }
        frontier = deque([source])
        while frontier:
            here = frontier.popleft()
            hops, cost, path = best[here]
            for line in self._adjacency[here]:
                if not line.up:
                    continue
                neighbour = line.other_end(here)
                if not self.nodes[neighbour].alive:
                    continue
                candidate = (hops + 1, cost + line.latency, path + [line])
                incumbent = best.get(neighbour)
                if incumbent is None or candidate[:2] < incumbent[:2]:
                    best[neighbour] = candidate
                    frontier.append(neighbour)
        if destination not in best:
            raise NoRoute(source, destination)
        return best[destination][2]

    def connected(self, source: str, destination: str) -> bool:
        if source == destination:
            return self.nodes[source].alive
        try:
            self.route(source, destination)
            return True
        except NoRoute:
            return False

    def latency(self, source: str, destination: str) -> float:
        """End-to-end latency of the current best path."""
        return sum(line.latency for line in self.route(source, destination))

    # ------------------------------------------------------------------
    # Failure drills
    # ------------------------------------------------------------------
    def lines_between(self, group_a: Iterable[str], group_b: Iterable[str]) -> List[CommLine]:
        set_a: Set[str] = set(group_a)
        set_b: Set[str] = set(group_b)
        crossing = []
        for line in self.lines:
            a, b = line.endpoints
            if (a in set_a and b in set_b) or (a in set_b and b in set_a):
                crossing.append(line)
        return crossing

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> List[CommLine]:
        """Fail every line crossing the two groups; returns those lines."""
        crossing = self.lines_between(group_a, group_b)
        for line in crossing:
            line.fail(reason="partition")
        return crossing

    def heal(self) -> None:
        """Restore every failed line."""
        for line in self.lines:
            line.restore()

    def isolate(self, node_name: str) -> List[CommLine]:
        """Fail every line touching ``node_name`` (complete comm loss)."""
        others = [name for name in self.nodes if name != node_name]
        return self.partition([node_name], others)

    def __repr__(self) -> str:
        return f"<Network nodes={sorted(self.nodes)} lines={len(self.lines)}>"
