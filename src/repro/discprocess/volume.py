"""The DISCPROCESS: a fault-tolerant storage server per disc volume.

"Implemented as an I/O process-pair per disc volume ... it protects the
structural integrity of individual files through active checkpointing of
process state and data, and recovery in the case of processor, I/O
channel, or disc drive failure ... The DISCPROCESS controls all access
to a logical disc volume."  (paper, §Data Base Management)

Fidelity notes:

* **Checkpoint-instead-of-WAL** (§Audit Trails): before an update's
  effects become visible, its audit images *and* the data blocks it
  wrote are checkpointed to the backup process.  Blocks written by an
  operation are *pinned* in the cache until that checkpoint completes,
  so a crash can never leave a half-applied operation on disc.  The
  backup (the new primary after takeover) therefore always holds either
  none or all of each operation's effects.
* **Locks live in the pair**: every grant/release is delta-checkpointed,
  so a takeover preserves all transaction locks (the paper's recovery is
  transparent to transactions not involved in the failed module).
* **Duplicate suppression**: the File System retries a request whose
  server died mid-operation, re-using the message id; completed replies
  are checkpointed so a retried-but-already-applied mutation answers
  from the record instead of re-executing.
* **Audit flow (BOXCAR)**: images are checkpointed into the pair's
  ``unforwarded`` table within each operation, then shipped to the
  volume's AUDITPROCESS *asynchronously* in batches by a per-volume
  boxcar coroutine (flush policy: :class:`~.boxcar.BoxcarPolicy`).
  Durability is unaffected: phase one of commit (and the quiesce that
  precedes a backout) sends an explicit :class:`~.ops.ForceBoxcar` that
  drains the boxcar before the trail force, so a transaction never
  completes phase one — and backout never runs — with its images still
  aboard.  With ``boxcar=False`` the legacy synchronous
  forward-per-operation behaviour is restored.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..guardian import ConcurrentPair, FileSystem, FileSystemError, Message, NodeOs, OsProcess
from ..hardware import MirroredVolume, VolumeUnavailable
from ..sim import Event, Tracer, fast_deepcopy
from .blocks import BlockKey
from .boxcar import (
    FLUSH_FORCE,
    FLUSH_MAX_RECORDS,
    FLUSH_TAKEOVER,
    FLUSH_TIMER,
    resolve_boxcar,
)
from .cache import BlockCache, CachedVolumeStore
from .index import StructuredFile
from .keyseq import DuplicateKey, KeyNotFound
from .locks import LockManager, LockTimeout
from .ops import (
    AppendAudit,
    AppendEntry,
    AppendSlot,
    AuditRecord,
    BackoutOp,
    CreateFile,
    DeleteRecord,
    FlushCache,
    ForceBoxcar,
    InsertRecord,
    LockFile,
    LockRecord,
    QuiesceTransaction,
    ReadEntry,
    ReadRecord,
    ReadSlot,
    ReadViaIndex,
    ReleaseLocks,
    ScanEntries,
    ScanRecords,
    UpdateRecord,
    VolumeStats,
    WriteSlot,
    op_name,
)
from .records import ENTRY_SEQUENCED, KEY_SEQUENCED, RELATIVE
from .relative import SlotError

__all__ = ["DiscProcess"]

_COMPLETED_LIMIT = 2048  # retained duplicate-suppression entries


def _err(code: str, **extra: Any) -> Dict[str, Any]:
    reply = {"ok": False, "error": code}
    reply.update(extra)
    return reply


class DiscProcess(ConcurrentPair):
    """The process-pair controlling one logical disc volume."""

    def __init__(
        self,
        node_os: NodeOs,
        name: str,
        primary_cpu: int,
        backup_cpu: int,
        volume: MirroredVolume,
        filesystem: FileSystem,
        audit_process: Optional[str] = None,
        tmf_registry: Any = None,
        cache_capacity: int = 256,
        tracer: Optional[Tracer] = None,
        boxcar: Any = True,
    ):
        self.volume = volume
        self.filesystem = filesystem
        self.audit_process = audit_process
        self.tmf_registry = tmf_registry
        self.cache_capacity = cache_capacity
        self.crashed = False
        self.boxcar = resolve_boxcar(boxcar)
        self._flushed_keys: List[BlockKey] = []
        self._completed_order: Deque[int] = deque(maxlen=_COMPLETED_LIMIT)
        #: plain counters surfaced by VolumeStats: AppendAudit batches
        #: shipped and the images they carried (records/batches > 1 is
        #: the boxcar's round-trip saving).
        self.audit_batches_sent = 0
        self.audit_records_forwarded = 0
        # Boxcar runtime (volatile; reset by _build_runtime on takeover):
        # the departure event of the batch currently on the wire (None =
        # idle), whether the departure timer is alive, and when the
        # oldest unforwarded image boarded.
        self._forward_event: Optional[Event] = None
        self._flusher_alive = False
        self._boxcar_oldest_at: Optional[float] = None
        # In-flight audited mutations per transid (volatile: handlers die
        # with the primary).  Lets QuiesceTransaction order backout after
        # every straggling operation of an aborting transaction.
        self._inflight: Dict[str, int] = {}
        # The physical disc serves one request at a time (single
        # actuator); concurrent operations queue FCFS.  Cache hits are
        # CPU-side and do not queue.
        self._disc_free_at = 0.0
        #: accumulated physical-disc service time (ms) and in-flight
        #: request count; the XRAY sampler derives utilization and
        #: queue depth from these.
        self.busy_ms = 0.0
        self.pending_requests = 0
        super().__init__(
            node_os,
            name,
            primary_cpu,
            backup_cpu,
            tracer,
            allowed_cpus=(primary_cpu, backup_cpu),
        )
        self._apply_state_defaults()
        self._build_runtime()

    def state_defaults(self) -> Dict[str, Any]:
        return {
            "files": {},
            "dirty": {},
            "locks": {},
            "completed": {},
            "unforwarded": {},
            "audit_seq": 0,
        }

    @property
    def audited(self) -> bool:
        return self.audit_process is not None

    # ------------------------------------------------------------------
    # Runtime (volatile) structures: cache, store, files, lock manager
    # ------------------------------------------------------------------
    def _build_runtime(self) -> None:
        self.cache = BlockCache(
            self.cache_capacity, metrics=self.env.metrics, name=self.name
        )
        self.store = CachedVolumeStore(
            self.cache,
            physical_read=self._physical_read,
            physical_write=self._physical_write,
            physical_delete=self._physical_delete,
            list_blocks=self._list_physical,
        )
        self.store.pin_writes = True
        self._flushed_keys = []
        # Blocks checkpointed but not yet on disc: the new primary's
        # knowledge of the data base beyond the platters.
        for key, block in self.state.get("dirty", {}).items():
            self.cache.install(key, block, dirty=True)
        self.files: Dict[str, StructuredFile] = {}
        for file_name, schema in self.state.get("files", {}).items():
            self.files[file_name] = StructuredFile(self.store, schema, create=False)
        self.locks = LockManager(self.env, self.name, self.tracer)
        for target, owner in self.state.get("locks", {}).items():
            self.locks._grant(owner, target)
        known = sorted(self.state.get("completed", {}))
        self._completed_order = deque(known, maxlen=_COMPLETED_LIMIT)
        for old in known[: max(0, len(known) - _COMPLETED_LIMIT)]:
            self.state["completed"].pop(old, None)
            self.backup_state.get("completed", {}).pop(old, None)
        # The unforwarded table is append-only by seq while a primary
        # lives — _forward_audit relies on that (it ships .values() in
        # insertion order).  Checkpoint mirroring preserves the order,
        # but re-establish it defensively after a takeover/restart.
        unforwarded = self.state.get("unforwarded")
        if unforwarded:
            self.state["unforwarded"] = dict(sorted(unforwarded.items()))
        # Boxcar coroutines died with the old primary.
        self._forward_event = None
        self._flusher_alive = False
        self._boxcar_oldest_at = None

    def _physical_read(self, key: BlockKey) -> Any:
        return self.volume.read_block(key)

    def _physical_write(self, key: BlockKey, block: Any) -> None:
        self.volume.write_block(key, block)
        if self.state["dirty"].get(key) is block:
            del self.state["dirty"][key]
            self._flushed_keys.append(key)

    def _physical_delete(self, key: BlockKey) -> None:
        self.volume.delete_block(key)

    def _list_physical(self, file_name: str) -> List[BlockKey]:
        return [key for key in self.volume.block_ids() if key[0] == file_name]

    def on_takeover(self) -> None:
        super().on_takeover()
        self._build_runtime()

    def on_start(self, proc: OsProcess) -> None:
        if self.state.get("unforwarded"):
            self._spawn_boxcar(self._reforward(proc), "reforward")

    def _reforward(self, proc: OsProcess) -> Generator:
        """Re-ship images a takeover inherited (checkpointed, unforwarded)."""
        try:
            yield from self._drain_boxcar(proc, FLUSH_TAKEOVER)
        except VolumeUnavailable:
            pass  # self-crash recorded; pending requests see volume_down

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def serve_request(self, proc: OsProcess, message: Message) -> Generator:
        if self.crashed:
            proc.reply(message, _err("volume_down"))
            return
        recorded = self.state["completed"].get(message.msg_id)
        if recorded is not None:
            proc.reply(message, recorded)
            return
        self.pending_requests += 1
        try:
            snapshot = self._io_snapshot()
            try:
                reply = yield from self._dispatch(proc, message)
            except LockTimeout:
                reply = _err("lock_timeout")
            except DuplicateKey:
                reply = _err("duplicate_key")
            except _NoSuchFile as exc:
                reply = _err("no_such_file", file=str(exc))
            except _AuditedWithoutTransaction:
                reply = _err("audit_requires_transaction")
            except _TxNotActive as exc:
                reply = _err("tx_not_active", transid=str(exc))
            except _SecurityViolation as exc:
                reply = _err("security_violation", detail=str(exc))
            except (KeyNotFound, SlotError):
                reply = _err("not_found")
            except VolumeUnavailable:
                self.crashed = True
                self._trace("volume_crashed")
                proc.reply(message, _err("volume_down"))
                return
            io_start = self.env.now
            yield from self._charge_io(snapshot)
            metrics = self.env.metrics
            if metrics is not None and metrics.enabled:
                metrics.inc(f"disc.ops.{op_name(message.payload)}")
                io_ms = self.env.now - io_start
                if io_ms > 0:
                    metrics.observe("disc.op_ms", io_ms)
                    if message.transid is not None:
                        metrics.spans.record(
                            str(message.transid),
                            "disc-io",
                            "disc",
                            io_start,
                            self.env.now,
                        )
            proc.reply(message, reply)
        finally:
            self.pending_requests -= 1

    _TRACKED_OPS = (
        InsertRecord,
        UpdateRecord,
        DeleteRecord,
        WriteSlot,
        AppendSlot,
        AppendEntry,
        ReadRecord,
        ReadSlot,
        LockRecord,
        LockFile,
    )

    def _dispatch(self, proc: OsProcess, message: Message) -> Generator:
        payload = message.payload
        if message.transid is not None and isinstance(payload, self._TRACKED_OPS):
            # Track the operation so an abort can quiesce behind it.
            tx_key = str(message.transid)
            self._inflight[tx_key] = self._inflight.get(tx_key, 0) + 1
            try:
                reply = yield from self._dispatch_inner(proc, message)
            finally:
                remaining = self._inflight.get(tx_key, 1) - 1
                if remaining <= 0:
                    self._inflight.pop(tx_key, None)
                else:
                    self._inflight[tx_key] = remaining
            return reply
        reply = yield from self._dispatch_inner(proc, message)
        return reply

    _READ_OPS = (ReadRecord, ScanRecords, ReadViaIndex, ReadSlot, ReadEntry, ScanEntries)
    _WRITE_OPS = (
        InsertRecord, UpdateRecord, DeleteRecord, WriteSlot, AppendSlot,
        AppendEntry, LockRecord, LockFile,
    )

    def _check_security(self, message: Message) -> None:
        """Enforce the file's access controls against the requester.

        The principal is the requesting process's network identity
        (node + process name), checked per function (read vs write) —
        §Data Base Management feature 5.
        """
        payload = message.payload
        if isinstance(payload, self._READ_OPS):
            function = "read"
        elif isinstance(payload, self._WRITE_OPS):
            function = "write"
        else:
            return  # system/administrative operations
        file = self.files.get(payload.file)
        if file is None:
            return  # existence errors handled downstream
        principal = f"{message.source_node}.{message.source_name}"
        if not file.schema.security.allows(function, principal):
            raise _SecurityViolation(
                f"{principal} may not {function} {payload.file}"
            )

    def _dispatch_inner(self, proc: OsProcess, message: Message) -> Generator:
        payload = message.payload
        self._check_security(message)
        if isinstance(payload, CreateFile):
            reply = yield from self._create_file(payload)
        elif isinstance(payload, ReadRecord):
            reply = yield from self._read_record(proc, message, payload)
        elif isinstance(payload, InsertRecord):
            reply = yield from self._insert(proc, message, payload)
        elif isinstance(payload, UpdateRecord):
            reply = yield from self._update(proc, message, payload)
        elif isinstance(payload, DeleteRecord):
            reply = yield from self._delete(proc, message, payload)
        elif isinstance(payload, ScanRecords):
            file = self._file(payload.file, KEY_SEQUENCED)
            rows = file.scan(payload.low, payload.high, payload.limit)
            reply = {"ok": True, "rows": fast_deepcopy(rows)}
        elif isinstance(payload, ReadViaIndex):
            file = self._file(payload.file, KEY_SEQUENCED)
            records = file.read_via_index(payload.field, payload.value)
            reply = {"ok": True, "records": fast_deepcopy(records)}
        elif isinstance(payload, (LockRecord, LockFile)):
            reply = yield from self._explicit_lock(proc, message, payload)
        elif isinstance(payload, ReadSlot):
            reply = yield from self._read_slot(proc, message, payload)
        elif isinstance(payload, WriteSlot):
            reply = yield from self._write_slot(proc, message, payload)
        elif isinstance(payload, AppendSlot):
            reply = yield from self._append_slot(proc, message, payload)
        elif isinstance(payload, AppendEntry):
            reply = yield from self._append_entry(proc, message, payload)
        elif isinstance(payload, ReadEntry):
            file = self._file(payload.file, ENTRY_SEQUENCED)
            reply = {"ok": True, "record": fast_deepcopy(file.read_entry(payload.esn))}
        elif isinstance(payload, ScanEntries):
            file = self._file(payload.file, ENTRY_SEQUENCED)
            reply = {
                "ok": True,
                "rows": fast_deepcopy(
                    file.scan_entries(payload.start_esn, payload.limit)
                ),
            }
        elif isinstance(payload, QuiesceTransaction):
            reply = yield from self._quiesce(proc, payload)
        elif isinstance(payload, ForceBoxcar):
            reply = yield from self._force_boxcar(proc, payload)
        elif isinstance(payload, ReleaseLocks):
            reply = yield from self._release_locks(payload)
        elif isinstance(payload, BackoutOp):
            reply = yield from self._backout(proc, message, payload)
        elif isinstance(payload, VolumeStats):
            reply = self._stats()
        elif isinstance(payload, FlushCache):
            written = self.store.flush()
            reply = {"ok": True, "blocks_written": written}
        else:
            reply = _err("bad_request", detail=repr(payload))
        return reply

    # ------------------------------------------------------------------
    # File management
    # ------------------------------------------------------------------
    def _create_file(self, payload: CreateFile) -> Generator:
        schema = payload.schema
        if schema.name in self.files:
            return _err("file_exists")
        if schema.audited and not self.audited:
            return _err(
                "bad_request",
                detail=f"audited file {schema.name} on unaudited volume {self.name}",
            )
        self.files[schema.name] = StructuredFile(self.store, schema, create=True)
        journal = self._take_journal()
        yield from self.checkpoint_update(
            "files", updates={schema.name: schema}
        )
        yield from self.checkpoint_update("dirty", updates=journal, _charge=False)
        self.store.unpin(journal)
        return {"ok": True}

    def _file(self, file_name: str, organization: Optional[str] = None) -> StructuredFile:
        file = self.files.get(file_name)
        if file is None:
            raise _NoSuchFile(file_name)
        if organization is not None and file.schema.organization != organization:
            raise _NoSuchFile(f"{file_name} is not {organization}")
        return file

    # ------------------------------------------------------------------
    # Reads and explicit locks
    # ------------------------------------------------------------------
    def _read_record(self, proc: OsProcess, message: Message, payload: ReadRecord) -> Generator:
        file = self._file(payload.file, KEY_SEQUENCED)
        lock_delta = {}
        if payload.lock:
            if message.transid is None:
                return _err("bad_request", detail="lock requires a transaction")
            self._check_tx_active(message.transid)
            self._register(message.transid)
            target = ("rec", payload.file, payload.key)
            yield from self.locks.acquire_record(
                message.transid, payload.file, payload.key, payload.lock_timeout
            )
            lock_delta[target] = message.transid
        record = file.read(payload.key)
        if lock_delta:
            yield from self.checkpoint_update("locks", updates=lock_delta)
        return {"ok": True, "record": fast_deepcopy(record)}

    def _explicit_lock(self, proc: OsProcess, message: Message, payload: Any) -> Generator:
        if message.transid is None:
            return _err("bad_request", detail="lock requires a transaction")
        self._check_tx_active(message.transid)
        self._register(message.transid)
        if isinstance(payload, LockFile):
            target: Tuple[Any, ...] = ("file", payload.file)
            yield from self.locks.acquire_file(
                message.transid, payload.file, payload.lock_timeout
            )
        else:
            target = ("rec", payload.file, payload.key)
            yield from self.locks.acquire_record(
                message.transid, payload.file, payload.key, payload.lock_timeout
            )
        yield from self.checkpoint_update("locks", updates={target: message.transid})
        return {"ok": True}

    def _read_slot(self, proc: OsProcess, message: Message, payload: ReadSlot) -> Generator:
        file = self._file(payload.file, RELATIVE)
        lock_delta = {}
        if payload.lock:
            if message.transid is None:
                return _err("bad_request", detail="lock requires a transaction")
            self._check_tx_active(message.transid)
            self._register(message.transid)
            target = ("rec", payload.file, payload.record_number)
            yield from self.locks.acquire_record(
                message.transid, payload.file, payload.record_number,
                payload.lock_timeout,
            )
            lock_delta[target] = message.transid
        record = file.read_slot(payload.record_number)
        if lock_delta:
            yield from self.checkpoint_update("locks", updates=lock_delta)
        return {"ok": True, "record": fast_deepcopy(record)}

    # ------------------------------------------------------------------
    # Mutations (key-sequenced)
    # ------------------------------------------------------------------
    def _insert(self, proc: OsProcess, message: Message, payload: InsertRecord) -> Generator:
        file = self._file(payload.file, KEY_SEQUENCED)
        transid = yield from self._mutation_preamble(file, message)
        record = fast_deepcopy(payload.record)
        file.schema.check_record(record)
        key = file.schema.key_of(record)
        lock_delta = {}
        if transid is not None:
            # "TMF automatically generates locks on all new records
            # inserted by a transaction."
            target = ("rec", payload.file, key)
            yield from self.locks.acquire_record(
                transid, payload.file, key, payload.lock_timeout
            )
            lock_delta[target] = transid
        file.insert(record)
        audit = self._make_audit(transid, file, "insert", key, None, record)
        reply = {"ok": True, "key": key}
        yield from self._finish_mutation(proc, message, audit, lock_delta, reply)
        return reply

    def _update(self, proc: OsProcess, message: Message, payload: UpdateRecord) -> Generator:
        file = self._file(payload.file, KEY_SEQUENCED)
        transid = yield from self._mutation_preamble(file, message)
        record = fast_deepcopy(payload.record)
        file.schema.check_record(record)
        key = file.schema.key_of(record)
        if transid is not None and not self._holds_lock(transid, payload.file, key):
            # "TMF verifies that all records updated or deleted by a
            # transaction have been previously locked."
            return _err("not_locked", key=key)
        old = file.update(record)
        audit = self._make_audit(transid, file, "update", key, old, record)
        reply = {"ok": True}
        yield from self._finish_mutation(proc, message, audit, {}, reply)
        return reply

    def _delete(self, proc: OsProcess, message: Message, payload: DeleteRecord) -> Generator:
        file = self._file(payload.file, KEY_SEQUENCED)
        transid = yield from self._mutation_preamble(file, message)
        if transid is not None and not self._holds_lock(transid, payload.file, payload.key):
            return _err("not_locked", key=payload.key)
        old = file.delete(payload.key)
        # The lock on the deleted key's value stays held by the transid
        # (it was acquired at read time) until release — exactly the
        # paper's "locks on the primary key values of all records
        # deleted".
        audit = self._make_audit(transid, file, "delete", payload.key, old, None)
        reply = {"ok": True, "record": old}
        yield from self._finish_mutation(proc, message, audit, {}, reply)
        return reply

    # ------------------------------------------------------------------
    # Mutations (relative / entry-sequenced)
    # ------------------------------------------------------------------
    def _write_slot(self, proc: OsProcess, message: Message, payload: WriteSlot) -> Generator:
        file = self._file(payload.file, RELATIVE)
        transid = yield from self._mutation_preamble(file, message)
        lock_delta = {}
        if transid is not None:
            target = ("rec", payload.file, payload.record_number)
            yield from self.locks.acquire_record(
                transid, payload.file, payload.record_number, payload.lock_timeout
            )
            lock_delta[target] = transid
        record = fast_deepcopy(payload.record)
        old = file.write_slot(payload.record_number, record)
        audit = self._make_audit(
            transid, file, "write_slot", payload.record_number, old, record
        )
        reply = {"ok": True, "old": old}
        yield from self._finish_mutation(proc, message, audit, lock_delta, reply)
        return reply

    def _append_slot(self, proc: OsProcess, message: Message, payload: AppendSlot) -> Generator:
        file = self._file(payload.file, RELATIVE)
        transid = yield from self._mutation_preamble(file, message)
        record = fast_deepcopy(payload.record)
        number = file.base.next_record_number
        lock_delta = {}
        if transid is not None:
            target = ("rec", payload.file, number)
            yield from self.locks.acquire_record(
                transid, payload.file, number, payload.lock_timeout
            )
            lock_delta[target] = transid
        file.write_slot(number, record)
        audit = self._make_audit(transid, file, "write_slot", number, None, record)
        reply = {"ok": True, "record_number": number}
        yield from self._finish_mutation(proc, message, audit, lock_delta, reply)
        return reply

    def _append_entry(self, proc: OsProcess, message: Message, payload: AppendEntry) -> Generator:
        file = self._file(payload.file, ENTRY_SEQUENCED)
        transid = yield from self._mutation_preamble(file, message)
        record = fast_deepcopy(payload.record)
        esn = file.append_entry(record)
        lock_delta = {}
        if transid is not None:
            target = ("rec", payload.file, esn)
            self.locks.try_acquire_record(transid, payload.file, esn)
            lock_delta[target] = transid
        audit = self._make_audit(transid, file, "append_entry", esn, None, record)
        reply = {"ok": True, "esn": esn}
        yield from self._finish_mutation(proc, message, audit, lock_delta, reply)
        return reply

    # ------------------------------------------------------------------
    # Transaction support
    # ------------------------------------------------------------------
    def _mutation_preamble(self, file: StructuredFile, message: Message) -> Generator:
        """Validate transactionality; returns the lock owner (or None)."""
        transid = message.transid
        if file.schema.audited:
            if transid is None:
                raise _AuditedWithoutTransaction()
            if not self.audited:
                raise VolumeUnavailable(
                    f"audited file {file.name} on unaudited volume {self.name}"
                )
            self._check_tx_active(transid)
            self._register(transid)
        elif transid is not None:
            self._check_tx_active(transid)
            self._register(transid)
        return transid
        yield  # pragma: no cover - generator marker

    def _check_tx_active(self, transid: Any) -> None:
        """Reject work for a transaction no longer in 'active' state.

        This is what the node-wide state broadcast of §Transaction State
        Change buys: every DISCPROCESS can locally see that a transid has
        entered 'ending'/'aborting' and refuse late updates from servers
        that have not yet learned of the failure.
        """
        if self.tmf_registry is None:
            return
        allowed = getattr(self.tmf_registry, "mutation_allowed", None)
        if allowed is not None and not allowed(transid):
            raise _TxNotActive(str(transid))

    def _quiesce(self, proc: OsProcess, payload: QuiesceTransaction) -> Generator:
        """Wait out in-flight operations of an aborting transaction."""
        tx_key = str(payload.transid)
        waited = 0.0
        while self._inflight.get(tx_key, 0) > 0 and waited < 10_000.0:
            yield self.env.timeout(2.0)
            waited += 2.0
        # Backout fetches the aborting transaction's images via GetAudit,
        # so they must be *at* the AUDITPROCESS, not aboard the boxcar.
        yield from self._drain_boxcar(proc, FLUSH_FORCE)
        return {"ok": True, "waited": waited}

    def _register(self, transid: Any) -> None:
        if self.tmf_registry is not None:
            self.tmf_registry.register_participant(
                transid, volume=self.name, audit_process=self.audit_process
            )

    def _holds_lock(self, transid: Any, file_name: str, key: Any) -> bool:
        return (
            self.locks.holder_of_record(file_name, key) == transid
            or self.locks.holder_of_file(file_name) == transid
        )

    def _make_audit(
        self,
        transid: Any,
        file: StructuredFile,
        op: str,
        key: Any,
        before: Any,
        after: Any,
    ) -> List[Any]:
        """Audit records for one logical update (audited files only)."""
        if not file.schema.audited or transid is None:
            return []
        seq = self.state["audit_seq"]
        self.state["audit_seq"] = seq + 1
        return [
            AuditRecord(
                transid=transid,
                volume=self.name,
                file=file.name,
                op=op,
                key=key,
                before=fast_deepcopy(before),
                after=fast_deepcopy(after),
                seq=seq,
            )
        ]

    def _finish_mutation(
        self,
        proc: OsProcess,
        message: Message,
        audit_records: List[Any],
        lock_delta: Dict[Any, Any],
        reply: Dict[str, Any],
    ) -> Generator:
        """Checkpoint, load the boxcar — the WAL-equivalent tail of an op."""
        journal = self._take_journal()
        prune = [key for key in self._flushed_keys if key not in journal]
        self._flushed_keys = []
        audit_updates = {record.seq: record for record in audit_records}
        # One physical checkpoint message carries data blocks, the
        # completed-reply record, lock grants, audit images, and the
        # audit cursor.
        parts: List[Tuple[str, Optional[Dict[Any, Any]], Any]] = [
            ("dirty", journal, prune),
            ("completed", {message.msg_id: reply}, ()),
        ]
        if lock_delta:
            parts.append(("locks", lock_delta, ()))
        scalars = None
        if audit_updates:
            parts.append(("unforwarded", audit_updates, ()))
            scalars = {"audit_seq": self.state["audit_seq"]}
        yield from self.checkpoint_multi(parts, scalars=scalars)
        self._remember_completed(message.msg_id)
        self.store.unpin(journal)
        if audit_updates:
            if self.boxcar is None:
                # Legacy synchronous mode: the forward round-trip stays
                # on the operation's critical path.
                yield from self._forward_audit(proc, FLUSH_FORCE)
            else:
                self._boxcar_note(proc)

    def _take_journal(self) -> Dict[BlockKey, Any]:
        journal = dict(self.store.journal)
        self.store.journal.clear()
        return journal

    def _remember_completed(self, msg_id: int) -> None:
        order = self._completed_order
        if len(order) == _COMPLETED_LIMIT:
            old = order[0]  # evicted by the append below (maxlen ring)
            self.state["completed"].pop(old, None)
            self.backup_state.get("completed", {}).pop(old, None)
        order.append(msg_id)

    # ------------------------------------------------------------------
    # BOXCAR: asynchronous batched audit forwarding
    # ------------------------------------------------------------------
    @property
    def audit_drain_needed(self) -> bool:
        """True while audit images are aboard the boxcar or on the wire.

        TMF's phase one consults this (node-local fast path) to skip the
        ForceBoxcar round-trip when there is provably nothing to drain.
        """
        return self._forward_event is not None or bool(self.state["unforwarded"])

    def _spawn_boxcar(self, generator: Generator, suffix: str) -> None:
        """Run a boxcar coroutine that dies with this primary (takeover-safe)."""
        run = self.env.process(generator, name=f"{self.name}.{suffix}")
        self._active_handlers.add(run)
        run.callbacks.append(lambda _event: self._active_handlers.discard(run))

    def _boxcar_note(self, proc: OsProcess) -> None:
        """Note freshly-checkpointed cargo; schedule its departure.

        Never blocks the operation that loaded the cargo — that is the
        point: the forward round-trip leaves the operation's critical
        path, and only an explicit force (phase one, quiesce) waits for
        the AUDITPROCESS.
        """
        pending = self.state["unforwarded"]
        if self._boxcar_oldest_at is None:
            self._boxcar_oldest_at = self.env.now
        metrics = self.env.metrics
        if metrics is not None and metrics.enabled:
            metrics.observe("boxcar.occupancy", len(pending))
        if (
            len(pending) >= self.boxcar.max_records
            and self._forward_event is None
        ):
            self._spawn_boxcar(self._flush_once(proc, FLUSH_MAX_RECORDS), "boxcar")
        elif not self._flusher_alive:
            self._flusher_alive = True
            self._spawn_boxcar(self._boxcar_timer(proc), "boxcar-timer")

    def _flush_once(self, proc: OsProcess, reason: str) -> Generator:
        try:
            yield from self._forward_audit(proc, reason)
        except VolumeUnavailable:
            pass  # self-crash recorded; pending requests see volume_down

    def _boxcar_timer(self, proc: OsProcess) -> Generator:
        """Departure timer: flush when the oldest cargo outwaits the policy."""
        try:
            while True:
                if (
                    self.crashed
                    or self.primary_process is not proc
                    or not self.state["unforwarded"]
                ):
                    return
                oldest = (
                    self._boxcar_oldest_at
                    if self._boxcar_oldest_at is not None
                    else self.env.now
                )
                deadline = oldest + self.boxcar.max_wait_ms
                if deadline > self.env.now:
                    yield self.env.timeout(deadline - self.env.now)
                    continue
                yield from self._forward_audit(proc, FLUSH_TIMER)
        except VolumeUnavailable:
            return
        finally:
            self._flusher_alive = False

    def _drain_boxcar(self, proc: OsProcess, reason: str) -> Generator:
        """Flush until nothing is aboard or on the wire; returns the count."""
        flushed = 0
        while self._forward_event is not None or self.state["unforwarded"]:
            flushed += yield from self._forward_audit(proc, reason)
        return flushed

    def _force_boxcar(self, proc: OsProcess, payload: ForceBoxcar) -> Generator:
        """Serve ForceBoxcar: phase one's explicit drain (group commit)."""
        start = self.env.now
        flushed = yield from self._drain_boxcar(proc, FLUSH_FORCE)
        metrics = self.env.metrics
        if metrics is not None and metrics.enabled:
            metrics.inc("boxcar.forces")
            if payload.transid is not None and self.env.now > start:
                metrics.spans.record(
                    str(payload.transid), "boxcar-drain", "disc",
                    start, self.env.now,
                )
        return {"ok": True, "flushed": flushed}

    def _forward_audit(self, proc: OsProcess, reason: str) -> Generator:
        """Ship every unforwarded audit image to the AUDITPROCESS.

        Single-flight: if a batch is already on the wire, wait for it to
        land and re-examine.  Concurrent callers therefore never
        interleave AppendAudit messages, and because ``unforwarded`` is
        append-only by seq, ``.values()`` is already the wire order — no
        sort.  Returns the number of images shipped by *this* call.
        """
        if self.audit_process is None:
            return 0
        while self._forward_event is not None:
            yield self._forward_event
        pending = self.state["unforwarded"]
        if not pending:
            return 0
        batch = tuple(pending.values())
        departed = self._forward_event = Event(self.env)
        try:
            result = yield from self.filesystem.send(
                proc,
                self.audit_process,
                AppendAudit(volume=self.name, records=batch),
                timeout=2000.0,
            )
        except FileSystemError as exc:
            # The AUDITPROCESS pair is down: a multi-module failure.  The
            # volume can no longer guarantee recoverability of audited
            # updates, so it crashes itself (ROLLFORWARD territory).
            self.crashed = True
            self._trace("volume_crashed", reason=f"audit unavailable: {exc}")
            raise VolumeUnavailable(str(exc)) from exc
        finally:
            self._forward_event = None
            departed.succeed()
        if result.get("ok"):
            yield from self.checkpoint_update(
                "unforwarded", removals=[record.seq for record in batch]
            )
            self.audit_batches_sent += 1
            self.audit_records_forwarded += len(batch)
            self._boxcar_oldest_at = (
                self.env.now if self.state["unforwarded"] else None
            )
            metrics = self.env.metrics
            if metrics is not None and metrics.enabled:
                metrics.inc(f"boxcar.flush.{reason}")
                metrics.inc("boxcar.records_forwarded", len(batch))
                if len(batch) > 1:
                    metrics.inc("boxcar.roundtrips_saved", len(batch) - 1)
                metrics.observe("boxcar.batch_records", len(batch))
            if self.tracer is not None:
                self._trace("boxcar_flush", reason=reason, records=len(batch))
        return len(batch)

    # ------------------------------------------------------------------
    # Lock release (phase two) and backout
    # ------------------------------------------------------------------
    def _release_locks(self, payload: ReleaseLocks) -> Generator:
        targets = self.locks.locks_held(payload.transid)
        released = self.locks.release_all(payload.transid)
        if targets:
            yield from self.checkpoint_update("locks", removals=list(targets))
        self._trace(
            "locks_released",
            transid=str(payload.transid),
            count=released,
            committed=payload.committed,
        )
        return {"ok": True, "released": released}

    def _backout(self, proc: OsProcess, message: Message, payload: BackoutOp) -> Generator:
        """Apply the inverse of one audit record (idempotently)."""
        record = payload.audit_record
        file = self._file(record.file)
        transid = record.transid
        op = record.op
        undone = True
        if op == "insert":
            try:
                file.delete(record.key)
            except KeyNotFound:
                undone = False  # already undone (retry after takeover)
        elif op == "update":
            try:
                file.update(fast_deepcopy(record.before))
            except KeyNotFound:
                undone = False
        elif op == "delete":
            try:
                file.insert(fast_deepcopy(record.before))
            except DuplicateKey:
                undone = False
        elif op == "write_slot":
            file.write_slot(record.key, fast_deepcopy(record.before))
        elif op == "append_entry":
            file.base.void(record.key)
        else:
            return _err("bad_request", detail=f"cannot back out op {op!r}")
        audit = self._make_audit(
            transid, file, "backout", record.key, record.after, record.before
        )
        reply = {"ok": True, "undone": undone}
        yield from self._finish_mutation(proc, message, audit, {}, reply)
        return reply

    # ------------------------------------------------------------------
    # Total-failure recovery support (used by ROLLFORWARD)
    # ------------------------------------------------------------------
    def cold_restart(self, primary_cpu: int, backup_cpu: Optional[int] = None) -> None:
        """Restart a pair whose both halves died.

        All process memory (checkpoint images included) is gone; only
        the platters survive.  The volume stays ``crashed`` until
        ROLLFORWARD reloads its contents.
        """
        self.state = {}
        self._apply_state_defaults()
        self.backup_state = fast_deepcopy(self.state)
        self.crashed = True
        self.restart(primary_cpu, backup_cpu)

    def load_contents(
        self,
        schemas: Dict[str, Any],
        content: Dict[str, Dict[Any, Any]],
        next_numbers: Dict[str, int],
        audit_seq: int,
    ) -> int:
        """Install reconstructed file contents (ROLLFORWARD's last step).

        Returns the number of physical block writes performed.
        """
        writes_before = self.store.counters.writes
        for file_name in sorted(set(schemas) | set(self.files)):
            for key in self._list_physical(file_name):
                self.volume.delete_block(key)
        self.cache.clear()
        self.store.journal.clear()
        self.files = {}
        self.state["files"] = dict(schemas)
        self.state["dirty"] = {}
        self.state["locks"] = {}
        self.state["completed"] = {}
        self.state["unforwarded"] = {}
        self.state["audit_seq"] = audit_seq
        self.locks = LockManager(self.env, self.name, self.tracer)
        for file_name, schema in schemas.items():
            structured = StructuredFile(self.store, schema, create=True)
            self.files[file_name] = structured
            rows = content.get(file_name, {})
            organization = schema.organization
            if organization == KEY_SEQUENCED:
                for key in sorted(rows):
                    if rows[key] is not None:
                        structured.base.insert(key, fast_deepcopy(rows[key]))
            elif organization == RELATIVE:
                for number in sorted(rows):
                    structured.base.write(number, fast_deepcopy(rows[number]))
                if next_numbers.get(file_name, 0) > structured.base.next_record_number:
                    header = structured.base._header()
                    header[1] = next_numbers[file_name]
                    structured.base.store.put(file_name, 0, header)
            else:
                top = next_numbers.get(file_name, 0)
                if rows:
                    top = max(top, max(rows) + 1)
                for esn in range(top):
                    structured.base.append(fast_deepcopy(rows.get(esn)))
        # Rebuild alternate indices (reload used base.insert directly, so
        # index maintenance did not run).
        for file_name, structured in self.files.items():
            if structured.schema.organization != KEY_SEQUENCED:
                continue
            for field_name, index in structured.indices.items():
                for key, record in structured.scan():
                    index.add(record, key)
        self.store.flush()
        self.store.journal.clear()
        self.cache.unpin(list(self.cache._entries))
        self.backup_state = fast_deepcopy(self.state)
        self.crashed = False
        self._trace("volume_recovered", files=sorted(schemas))
        return self.store.counters.writes - writes_before

    # ------------------------------------------------------------------
    # Statistics and I/O time
    # ------------------------------------------------------------------
    def _stats(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "volume": self.name,
            "cache": {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "hit_ratio": self.cache.stats.hit_ratio,
                "evictions": self.cache.stats.evictions,
                "size": len(self.cache),
            },
            "physical_reads": self.store.counters.reads,
            "physical_writes": self.store.counters.writes,
            "locks_held": self.locks.held_count(),
            "lock_waits": self.locks.waits,
            "lock_timeouts": self.locks.timeouts,
            "files": {
                name: file.record_count for name, file in self.files.items()
            },
            "compression": self._compression_stats(),
            "dirty_blocks": len(self.state["dirty"]),
            "takeovers": self.takeovers,
            "audit": {
                "batches_sent": self.audit_batches_sent,
                "records_forwarded": self.audit_records_forwarded,
                "unforwarded": len(self.state["unforwarded"]),
            },
        }

    def _compression_stats(self) -> Dict[str, float]:
        """Prefix-compression ratio of each key-sequenced file's keys.

        (Sampled over the first 1000 keys; §Data Base Management's
        "data and index compression" accounting.)
        """
        from .compress import compress_keys, encoded_key_size, plain_key_size

        ratios: Dict[str, float] = {}
        for name, file in self.files.items():
            if file.schema.organization != KEY_SEQUENCED:
                continue
            rows = file.scan(limit=1000)
            if not rows:
                continue
            keys = [key for key, _record in rows]
            plain = plain_key_size(keys)
            packed = encoded_key_size(compress_keys(keys))
            if packed:
                ratios[name] = plain / packed
        return ratios

    def _io_snapshot(self) -> Tuple[int, int, int]:
        return (
            self.cache.stats.hits,
            self.store.counters.reads,
            self.store.counters.writes,
        )

    def _charge_io(self, snapshot: Tuple[int, int, int]) -> Generator:
        hits, reads, writes = snapshot
        latencies = self.node_os.node.latencies
        physical = (
            (self.store.counters.reads - reads) * latencies.disc_read
            + (self.store.counters.writes - writes) * latencies.disc_write
        )
        if physical > 0:
            self.busy_ms += physical
            start = max(self.env.now, self._disc_free_at)
            self._disc_free_at = start + physical
            # Queueing delay + service time behind earlier requests.
            yield self.env.timeout(self._disc_free_at - self.env.now)
        hit_cost = (self.cache.stats.hits - hits) * latencies.cache_hit
        if hit_cost > 0:
            # Cache hits cost CPU in the DISCPROCESS's processor, not
            # disc-arm time.
            if self.primary_cpu is not None:
                self.node_os.node.cpus[self.primary_cpu].charge(hit_cost)
            yield self.env.timeout(hit_cost)


class _AuditedWithoutTransaction(Exception):
    pass


class _NoSuchFile(Exception):
    pass


class _TxNotActive(Exception):
    pass


class _SecurityViolation(Exception):
    pass
