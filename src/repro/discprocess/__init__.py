"""The ENCOMPASS data-base manager: DISCPROCESS and structured files.

Key-sequenced (B-tree), relative and entry-sequenced file organizations
with automatically-maintained alternate-key indices, prefix/value
compression, key-range partitioning, a write-back block cache, exclusive
record/file locking with timeout deadlock detection — all served by a
fault-tolerant DISCPROCESS process-pair per mirrored disc volume.
"""

from .blocks import BlockStore, MemoryBlockStore, VolumeBlockStore
from .boxcar import BoxcarPolicy, resolve_boxcar
from .cache import BlockCache, CachedVolumeStore, CacheStats
from .ddl import DdlError, install_ddl, parse_ddl
from .client import (
    DataDictionary,
    DuplicateKeyError,
    FileClient,
    FileError,
    FileUnavailableError,
    LockTimeoutError,
    NotFoundError,
    NotLockedError,
    SecurityViolationError,
)
from .entryseq import EntrySequencedFile
from .index import AlternateIndex, StructuredFile, TOP
from .keyseq import DuplicateKey, KeyNotFound, KeySequencedFile
from .locks import LockManager, LockTimeout
from .records import (
    ENTRY_SEQUENCED,
    KEY_SEQUENCED,
    RELATIVE,
    FileSchema,
    PartitionSpec,
    RecordError,
    SecuritySpec,
)
from .ops import ForceBoxcar
from .relative import RelativeFile, SlotError
from .volume import DiscProcess

__all__ = [
    "AlternateIndex",
    "BlockCache",
    "BlockStore",
    "BoxcarPolicy",
    "CacheStats",
    "CachedVolumeStore",
    "DataDictionary",
    "DdlError",
    "DiscProcess",
    "DuplicateKey",
    "DuplicateKeyError",
    "ENTRY_SEQUENCED",
    "EntrySequencedFile",
    "FileClient",
    "FileError",
    "FileSchema",
    "FileUnavailableError",
    "ForceBoxcar",
    "KEY_SEQUENCED",
    "KeyNotFound",
    "KeySequencedFile",
    "LockManager",
    "LockTimeout",
    "LockTimeoutError",
    "MemoryBlockStore",
    "NotFoundError",
    "NotLockedError",
    "PartitionSpec",
    "RELATIVE",
    "RecordError",
    "RelativeFile",
    "SecuritySpec",
    "SecurityViolationError",
    "SlotError",
    "StructuredFile",
    "TOP",
    "VolumeBlockStore",
    "install_ddl",
    "parse_ddl",
    "resolve_boxcar",
]
