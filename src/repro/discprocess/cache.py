"""The DISCPROCESS block cache.

"A cache buffering scheme designed to keep the most recently referenced
blocks of data in main memory."  (paper, §Data Base Management)

The cache is a write-back LRU sitting between the structured-file code
and the mirrored disc: reads hit the cache when possible; writes dirty
the cached copy and reach the platters on eviction or an explicit flush.
TMF is what makes write-back safe — an update is recoverable from its
audit images (checkpointed to the backup DISCPROCESS before the update,
forced to the audit trail at commit), so the data block itself need not
be forced.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Tuple

from .blocks import BlockKey, BlockStore, IoCounters

__all__ = ["BlockCache", "CacheStats", "CachedVolumeStore"]


class CacheStats:
    """Hit/miss/eviction tallies."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<CacheStats hits={self.hits} misses={self.misses} "
            f"ratio={self.hit_ratio:.3f} evictions={self.evictions}>"
        )


class BlockCache:
    """An LRU cache of blocks with dirty tracking."""

    def __init__(self, capacity: int = 256, metrics: Any = None, name: str = ""):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.name = name
        #: optional XRAY registry; hit/miss counters land there too so a
        #: measured run can watch cache behaviour over time.
        self.metrics = metrics
        # Whether a run is measured is fixed at construction (the cluster
        # installs the registry before any DISCPROCESS exists), so the
        # per-probe ``is not None and .enabled`` test collapses to one
        # pre-bound bool on the lookup fast path.
        self._measured = metrics is not None and metrics.enabled
        self._entries: "OrderedDict[BlockKey, Any]" = OrderedDict()
        self._dirty: set = set()
        self._pinned: set = set()
        self.stats = CacheStats()

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: BlockKey) -> Tuple[bool, Any]:
        """Return (hit, block)."""
        entries = self._entries
        block = entries.get(key)
        if block is not None or key in entries:
            entries.move_to_end(key)
            self.stats.hits += 1
            if self._measured:
                self.metrics.inc("cache.hits")
            return True, block
        self.stats.misses += 1
        if self._measured:
            self.metrics.inc("cache.misses")
        return False, None

    def install(
        self, key: BlockKey, block: Any, dirty: bool, pin: bool = False
    ) -> List[Tuple[BlockKey, Any]]:
        """Insert/refresh a block; returns dirty blocks evicted to disc.

        Pinned blocks are never evicted: the DISCPROCESS pins the blocks
        an in-flight operation writes until their images have been
        checkpointed to the backup, so a half-checkpointed operation can
        never leak partial state onto the platters.  The cache may
        temporarily exceed capacity while pins are outstanding.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = block
        if dirty:
            self._dirty.add(key)
        if pin:
            self._pinned.add(key)
        return self._enforce_capacity()

    def unpin(self, keys) -> List[Tuple[BlockKey, Any]]:
        """Release pins; returns dirty blocks evicted if over capacity."""
        for key in keys:
            self._pinned.discard(key)
        return self._enforce_capacity()

    def _enforce_capacity(self) -> List[Tuple[BlockKey, Any]]:
        evicted: List[Tuple[BlockKey, Any]] = []
        if len(self._entries) <= self.capacity:
            return evicted
        for old_key in list(self._entries):
            if len(self._entries) <= self.capacity:
                break
            if old_key in self._pinned:
                continue
            old_block = self._entries.pop(old_key)
            self.stats.evictions += 1
            if old_key in self._dirty:
                self._dirty.discard(old_key)
                self.stats.dirty_writebacks += 1
                evicted.append((old_key, old_block))
        return evicted

    def discard(self, key: BlockKey) -> None:
        self._entries.pop(key, None)
        self._dirty.discard(key)
        self._pinned.discard(key)

    def dirty_entries(self) -> List[Tuple[BlockKey, Any]]:
        return [(key, self._entries[key]) for key in list(self._dirty)]

    def mark_clean(self, key: BlockKey) -> None:
        self._dirty.discard(key)

    def clear(self) -> None:
        """Lose all cached content (CPU failure)."""
        self._entries.clear()
        self._dirty.clear()
        self._pinned.clear()

    def dirty_count(self) -> int:
        return len(self._dirty)


class CachedVolumeStore(BlockStore):
    """A :class:`BlockStore` over cache + a physical backing store.

    ``physical_read``/``physical_write`` callbacks let the owner count
    actual disc operations (for simulated I/O time) while the structured
    file code stays synchronous and oblivious.
    """

    def __init__(
        self,
        cache: BlockCache,
        physical_read: Callable[[BlockKey], Any],
        physical_write: Callable[[BlockKey, Any], None],
        physical_delete: Callable[[BlockKey], None],
        list_blocks: Callable[[str], List[BlockKey]],
    ):
        self.cache = cache
        self._physical_read = physical_read
        self._physical_write = physical_write
        self._physical_delete = physical_delete
        self._list_blocks = list_blocks
        self.counters = IoCounters()
        #: blocks written since the caller last cleared it — the
        #: DISCPROCESS uses this as the per-operation write journal it
        #: checkpoints to its backup.  Valid because an operation's
        #: apply phase is synchronous (no interleaving).
        self.journal: Dict[BlockKey, Any] = {}
        self.pin_writes = False

    def get(self, file_name: str, block_number: int) -> Any:
        key = (file_name, block_number)
        hit, block = self.cache.lookup(key)
        if hit:
            return block
        self.counters.reads += 1
        block = self._physical_read(key)
        if block is not None:
            for old_key, old_block in self.cache.install(key, block, dirty=False):
                self.counters.writes += 1
                self._physical_write(old_key, old_block)
        return block

    def put(self, file_name: str, block_number: int, block: Any) -> None:
        key = (file_name, block_number)
        self.journal[key] = block
        for old_key, old_block in self.cache.install(
            key, block, dirty=True, pin=self.pin_writes
        ):
            self.counters.writes += 1
            self._physical_write(old_key, old_block)

    def unpin(self, keys) -> None:
        """Release write pins after their checkpoint completed."""
        for old_key, old_block in self.cache.unpin(keys):
            self.counters.writes += 1
            self._physical_write(old_key, old_block)

    def delete(self, file_name: str, block_number: int) -> None:
        key = (file_name, block_number)
        self.cache.discard(key)
        self._physical_delete(key)

    def blocks_of(self, file_name: str):
        # Union of cached and on-disc blocks for this file.
        on_disc = set(self._list_blocks(file_name))
        cached = {key for key in self.cache._entries if key[0] == file_name}
        return iter(sorted(on_disc | cached))

    def flush(self) -> int:
        """Force every dirty block to disc; returns blocks written."""
        written = 0
        for key, block in self.cache.dirty_entries():
            self.counters.writes += 1
            self._physical_write(key, block)
            self.cache.mark_clean(key)
            written += 1
        return written
