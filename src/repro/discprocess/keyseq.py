"""Key-sequenced files: a block-oriented B-tree.

The primary structured-file organization of ENCOMPASS.  Records are
stored in primary-key order in leaf blocks; internal blocks hold
separator keys.  Blocks live in a :class:`~repro.discprocess.blocks.BlockStore`
so the same code runs over a plain dict (unit tests) or the DISCPROCESS
cache + mirrored disc (full system), with physical I/O counted by the
store.

Deletion is *lazy* (common in production engines): records are removed
from their leaf but underfull leaves are not merged; an empty leaf is
reclaimed only when the tree root collapses.  All invariants that matter
to correctness — sorted leaves, consistent separators, every record
reachable — are preserved and property-tested.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, List, Optional, Tuple

from .blocks import BlockStore

__all__ = ["KeySequencedFile", "DuplicateKey", "KeyNotFound"]

Key = Tuple[Any, ...]

# Block layouts (plain lists so they copy cheaply):
#   header (block 0):  ["H", root_id, next_block_number, record_count]
#   internal:          ["I", [sep_key, ...], [child_id, ...]]  (len(children) == len(keys)+1)
#   leaf:              ["L", [key, ...], [record, ...]]
_HEADER = 0


class DuplicateKey(KeyError):
    """Insert of a primary key that already exists."""


class KeyNotFound(KeyError):
    """Update/delete of a primary key that does not exist."""


class KeySequencedFile:
    """A B-tree keyed file over a block store."""

    def __init__(
        self,
        store: BlockStore,
        name: str,
        leaf_capacity: int = 16,
        fanout: int = 16,
        create: bool = False,
    ):
        if leaf_capacity < 2 or fanout < 3:
            raise ValueError("leaf_capacity >= 2 and fanout >= 3 required")
        self.store = store
        self.name = name
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        if create:
            root = ["L", [], []]
            self.store.put(name, 1, root)
            self.store.put(name, _HEADER, ["H", 1, 2, 0])

    # ------------------------------------------------------------------
    # Header helpers
    # ------------------------------------------------------------------
    def _header(self) -> List[Any]:
        header = self.store.get(self.name, _HEADER)
        if header is None:
            raise KeyNotFound(f"file {self.name} does not exist")
        return header

    def _save_header(self, header: List[Any]) -> None:
        self.store.put(self.name, _HEADER, header)

    def _alloc(self, header: List[Any]) -> int:
        number = header[2]
        header[2] += 1
        return number

    @property
    def record_count(self) -> int:
        return self._header()[3]

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def read(self, key: Key) -> Optional[Any]:
        """The record stored under ``key``, or None."""
        block = self._find_leaf(self._header()[1], key)
        keys = block[1]
        idx = bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            return block[2][idx]
        return None

    def insert(self, key: Key, record: Any) -> None:
        """Store a new record; raises :class:`DuplicateKey` if present."""
        header = self._header()
        split = self._insert(header, header[1], key, record)
        if split is not None:
            sep_key, new_child = split
            new_root = self._alloc(header)
            self.store.put(self.name, new_root, ["I", [sep_key], [header[1], new_child]])
            header[1] = new_root
        header[3] += 1
        self._save_header(header)

    def update(self, key: Key, record: Any) -> Any:
        """Replace the record under ``key``; returns the old record."""
        leaf_id, block = self._find_leaf_id(self._header()[1], key)
        keys = block[1]
        idx = bisect_left(keys, key)
        if idx >= len(keys) or keys[idx] != key:
            raise KeyNotFound(f"{self.name}: {key}")
        old = block[2][idx]
        new_block = ["L", list(keys), list(block[2])]
        new_block[2][idx] = record
        self.store.put(self.name, leaf_id, new_block)
        return old

    def delete(self, key: Key) -> Any:
        """Remove the record under ``key``; returns it."""
        header = self._header()
        leaf_id, block = self._find_leaf_id(header[1], key)
        keys = block[1]
        idx = bisect_left(keys, key)
        if idx >= len(keys) or keys[idx] != key:
            raise KeyNotFound(f"{self.name}: {key}")
        old = block[2][idx]
        new_block = ["L", list(keys), list(block[2])]
        del new_block[1][idx]
        del new_block[2][idx]
        self.store.put(self.name, leaf_id, new_block)
        header[3] -= 1
        self._save_header(header)
        return old

    def upsert(self, key: Key, record: Any) -> Optional[Any]:
        """Insert or replace; returns the old record if one existed."""
        try:
            return self.update(key, record)
        except KeyNotFound:
            self.insert(key, record)
            return None

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def scan(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[Key, Any]]:
        """Records with low <= key <= high, in key order."""
        out: List[Tuple[Key, Any]] = []
        self._scan(self._header()[1], low, high, limit, out)
        return out

    def keys(self) -> List[Key]:
        return [key for key, _record in self.scan()]

    def first(self) -> Optional[Tuple[Key, Any]]:
        rows = self.scan(limit=1)
        return rows[0] if rows else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find_leaf(self, block_id: int, key: Key) -> List[Any]:
        return self._find_leaf_id(block_id, key)[1]

    def _find_leaf_id(self, block_id: int, key: Key) -> Tuple[int, List[Any]]:
        block = self.store.get(self.name, block_id)
        while block[0] == "I":
            idx = bisect_right(block[1], key)
            block_id = block[2][idx]
            block = self.store.get(self.name, block_id)
        return block_id, block

    def _insert(
        self, header: List[Any], block_id: int, key: Key, record: Any
    ) -> Optional[Tuple[Key, int]]:
        block = self.store.get(self.name, block_id)
        if block[0] == "L":
            keys = block[1]
            idx = bisect_left(keys, key)
            if idx < len(keys) and keys[idx] == key:
                raise DuplicateKey(f"{self.name}: {key}")
            new_block = ["L", list(keys), list(block[2])]
            new_block[1].insert(idx, key)
            new_block[2].insert(idx, record)
            if len(new_block[1]) <= self.leaf_capacity:
                self.store.put(self.name, block_id, new_block)
                return None
            mid = len(new_block[1]) // 2
            right = ["L", new_block[1][mid:], new_block[2][mid:]]
            left = ["L", new_block[1][:mid], new_block[2][:mid]]
            right_id = self._alloc(header)
            self.store.put(self.name, block_id, left)
            self.store.put(self.name, right_id, right)
            return right[1][0], right_id

        idx = bisect_right(block[1], key)
        split = self._insert(header, block[2][idx], key, record)
        if split is None:
            return None
        sep_key, new_child = split
        new_block = ["I", list(block[1]), list(block[2])]
        new_block[1].insert(idx, sep_key)
        new_block[2].insert(idx + 1, new_child)
        if len(new_block[1]) < self.fanout:
            self.store.put(self.name, block_id, new_block)
            return None
        mid = len(new_block[1]) // 2
        up_key = new_block[1][mid]
        right = ["I", new_block[1][mid + 1:], new_block[2][mid + 1:]]
        left = ["I", new_block[1][:mid], new_block[2][:mid + 1]]
        right_id = self._alloc(header)
        self.store.put(self.name, block_id, left)
        self.store.put(self.name, right_id, right)
        return up_key, right_id

    def _scan(
        self,
        block_id: int,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
        out: List[Tuple[Key, Any]],
    ) -> bool:
        """Collect in-range rows; returns False when the scan should stop."""
        block = self.store.get(self.name, block_id)
        if block[0] == "L":
            keys = block[1]
            start = 0 if low is None else bisect_left(keys, low)
            for idx in range(start, len(keys)):
                if high is not None and keys[idx] > high:
                    return False
                out.append((keys[idx], block[2][idx]))
                if limit is not None and len(out) >= limit:
                    return False
            return True
        seps = block[1]
        start = 0 if low is None else bisect_right(seps, low)
        for idx in range(start, len(block[2])):
            if idx > 0 and high is not None and seps[idx - 1] > high:
                return False
            if not self._scan(block[2][idx], low, high, limit, out):
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection / invariant checking (used by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Walk the whole tree and assert structural invariants."""
        header = self._header()
        count = self._check_block(header[1], None, None)
        assert count == header[3], (
            f"{self.name}: header count {header[3]} != actual {count}"
        )

    def _check_block(self, block_id: int, low: Optional[Key], high: Optional[Key]) -> int:
        block = self.store.get(self.name, block_id)
        assert block is not None, f"{self.name}: dangling block {block_id}"
        if block[0] == "L":
            keys = block[1]
            assert keys == sorted(keys), f"{self.name}: unsorted leaf {block_id}"
            assert len(keys) == len(set(keys)), f"{self.name}: dup keys in {block_id}"
            assert len(keys) <= self.leaf_capacity
            for key in keys:
                assert low is None or key >= low, f"{self.name}: leaf key below range"
                assert high is None or key < high, f"{self.name}: leaf key above range"
            return len(keys)
        seps = block[1]
        children = block[2]
        assert len(children) == len(seps) + 1
        assert seps == sorted(seps)
        assert len(seps) <= self.fanout
        total = 0
        bounds = [low] + list(seps) + [high]
        for idx, child in enumerate(children):
            total += self._check_block(child, bounds[idx], bounds[idx + 1])
        return total

    def depth(self) -> int:
        depth = 1
        block = self.store.get(self.name, self._header()[1])
        while block[0] == "I":
            depth += 1
            block = self.store.get(self.name, block[2][0])
        return depth
