"""Record and file-schema definitions (the data-definition layer).

ENCOMPASS provides "a data definition language [and] a data dictionary";
here a :class:`FileSchema` plays both roles: it names the file, fixes
its organization (key-sequenced / relative / entry-sequenced), its
primary key, its automatically-maintained alternate keys, whether it is
TMF-audited, and where it lives (one volume, or key-range partitions
across several — possibly on different nodes).

Records themselves are plain dicts of field name → value; keys are
tuples of field values, which sort correctly for range operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "KEY_SEQUENCED",
    "RELATIVE",
    "ENTRY_SEQUENCED",
    "FileSchema",
    "PartitionSpec",
    "Record",
    "RecordError",
    "SecuritySpec",
    "primary_key_of",
]

KEY_SEQUENCED = "key-sequenced"
RELATIVE = "relative"
ENTRY_SEQUENCED = "entry-sequenced"

_ORGANIZATIONS = (KEY_SEQUENCED, RELATIVE, ENTRY_SEQUENCED)

Record = Dict[str, Any]


class RecordError(ValueError):
    """A record does not fit its schema."""


@dataclass(frozen=True)
class PartitionSpec:
    """One key-range partition of a file.

    ``low_key`` is the inclusive lower bound of primary keys stored in
    this partition (``None`` for the first partition).  Partitions are
    ordered by ``low_key``; a key belongs to the last partition whose
    ``low_key`` is <= the key.
    """

    node: str
    volume: str
    low_key: Optional[Tuple[Any, ...]] = None


@dataclass(frozen=True)
class SecuritySpec:
    """Access control for a file (§Data Base Management, feature 5).

    "Security controls by function, user class, network node,
    application program, and specified terminal."  A principal is the
    requesting process's network identity, ``node.$name`` (which covers
    node, application program, and — for TCP-mediated access — the
    terminal's TCP).  Patterns are ``fnmatch`` globs; controls are per
    *function*: read vs. write.  ``("*",)`` (the default) allows all.
    """

    read: Tuple[str, ...] = ("*",)
    write: Tuple[str, ...] = ("*",)

    def allows(self, function: str, principal: str) -> bool:
        patterns = self.read if function == "read" else self.write
        return any(fnmatchcase(principal, pattern) for pattern in patterns)


@dataclass(frozen=True)
class FileSchema:
    """Data-dictionary entry for one logical file."""

    name: str
    organization: str
    primary_key: Tuple[str, ...] = ()
    alternate_keys: Tuple[str, ...] = ()
    audited: bool = False
    partitions: Tuple[PartitionSpec, ...] = ()
    security: SecuritySpec = SecuritySpec()

    def __post_init__(self) -> None:
        if self.organization not in _ORGANIZATIONS:
            raise RecordError(
                f"unknown organization {self.organization!r} for {self.name}"
            )
        if self.organization == KEY_SEQUENCED and not self.primary_key:
            raise RecordError(f"key-sequenced file {self.name} needs a primary key")
        if self.organization != KEY_SEQUENCED and self.alternate_keys:
            raise RecordError(
                f"{self.name}: alternate keys require a key-sequenced file"
            )
        if not self.partitions:
            raise RecordError(f"{self.name}: at least one partition (location) required")
        lows = [p.low_key for p in self.partitions]
        if lows[0] is not None:
            raise RecordError(f"{self.name}: first partition must have low_key=None")
        if any(low is None for low in lows[1:]):
            raise RecordError(f"{self.name}: only the first partition may omit low_key")
        for earlier, later in zip(lows[1:], lows[2:]):
            if not earlier < later:
                raise RecordError(f"{self.name}: partition low keys must ascend")

    @property
    def partitioned(self) -> bool:
        return len(self.partitions) > 1

    def partition_for(self, key: Tuple[Any, ...]) -> PartitionSpec:
        """The partition holding ``key``."""
        chosen = self.partitions[0]
        for spec in self.partitions[1:]:
            if spec.low_key is not None and key >= spec.low_key:
                chosen = spec
            else:
                break
        return chosen

    def key_of(self, record: Record) -> Tuple[Any, ...]:
        return primary_key_of(record, self.primary_key)

    def check_record(self, record: Record) -> None:
        if not isinstance(record, dict):
            raise RecordError(f"{self.name}: record must be a dict, got {type(record)}")
        for fname in self.primary_key:
            if fname not in record:
                raise RecordError(f"{self.name}: record missing key field {fname!r}")
        for fname in self.alternate_keys:
            if fname not in record:
                raise RecordError(
                    f"{self.name}: record missing alternate key field {fname!r}"
                )


def primary_key_of(record: Record, key_fields: Tuple[str, ...]) -> Tuple[Any, ...]:
    """Extract the primary-key tuple from a record."""
    try:
        return tuple(record[fname] for fname in key_fields)
    except KeyError as exc:
        raise RecordError(f"record missing key field {exc}") from exc
