"""Per-volume lock manager.

"Two granularities of locking are provided ...: file and record.
Record level locking operates on the primary key ... All locks are
exclusive mode.  Each DISCPROCESS maintains the locking control
information for those records and files resident on its volume only.
Thus, concurrency control ... is decentralized ...; no central lock
manager exists.  Deadlock detection is by timeout, the interval being
specified as part of the lock request."  (paper, §Data Base Management)

The manager is sim-integrated: ``acquire_record``/``acquire_file`` are
generator helpers that suspend the caller until the lock is granted or
the caller's timeout expires (:class:`LockTimeout` — the signal that
drives RESTART-TRANSACTION at the application level).

A waits-for-graph deadlock detector is also provided, *not* used by the
reproduction's normal path, as the ablation baseline for bench E4.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ..sim import AnyOf, Environment, Event, Tracer

__all__ = ["LockManager", "LockTimeout", "LockTarget"]

# ('rec', file_name, key) or ('file', file_name)
LockTarget = Tuple[Any, ...]


class LockTimeout(Exception):
    """A lock request waited past its timeout (presumed deadlock)."""

    def __init__(self, transid: Any, target: LockTarget):
        super().__init__(f"lock timeout: {transid} waiting for {target}")
        self.transid = transid
        self.target = target


class _Waiter:
    __slots__ = ("event", "transid", "target", "since")

    def __init__(self, event: Event, transid: Any, target: LockTarget,
                 since: float = 0.0):
        self.event = event
        self.transid = transid
        self.target = target
        self.since = since  # enqueue time (the watchdog's wait horizon)


class LockManager:
    """Exclusive record and file locks for one disc volume."""

    def __init__(self, env: Environment, name: str = "", tracer: Optional[Tracer] = None):
        self.env = env
        self.name = name
        self.tracer = tracer
        self._record_owners: Dict[Tuple[str, Any], Any] = {}
        self._file_owners: Dict[str, Any] = {}
        self._records_per_file: Dict[str, Counter] = {}
        self._held: Dict[Any, Set[LockTarget]] = {}
        self._queues: Dict[LockTarget, Deque[_Waiter]] = {}
        self.grants = 0
        self.waits = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # Conflict rules (exclusive mode only)
    # ------------------------------------------------------------------
    def _record_conflict(self, transid: Any, file_name: str, key: Any) -> Optional[Any]:
        file_owner = self._file_owners.get(file_name)
        if file_owner is not None and file_owner != transid:
            return file_owner
        record_owner = self._record_owners.get((file_name, key))
        if record_owner is not None and record_owner != transid:
            return record_owner
        return None

    def _file_conflict(self, transid: Any, file_name: str) -> Optional[Any]:
        file_owner = self._file_owners.get(file_name)
        if file_owner is not None and file_owner != transid:
            return file_owner
        for other, count in self._records_per_file.get(file_name, Counter()).items():
            if other != transid and count > 0:
                return other
        return None

    def _conflict(self, transid: Any, target: LockTarget) -> Optional[Any]:
        if target[0] == "rec":
            return self._record_conflict(transid, target[1], target[2])
        return self._file_conflict(transid, target[1])

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire_record(self, transid: Any, file_name: str, key: Any, timeout: float):
        """Acquire an exclusive record lock.  (Generator helper.)"""
        yield from self._acquire(transid, ("rec", file_name, key), timeout)

    def acquire_file(self, transid: Any, file_name: str, timeout: float):
        """Acquire an exclusive file lock.  (Generator helper.)"""
        yield from self._acquire(transid, ("file", file_name), timeout)

    def try_acquire_record(self, transid: Any, file_name: str, key: Any) -> bool:
        """Non-blocking record-lock attempt."""
        if self._record_conflict(transid, file_name, key) is not None:
            return False
        self._grant(transid, ("rec", file_name, key))
        return True

    def _acquire(self, transid: Any, target: LockTarget, timeout: float):
        conflict = self._conflict(transid, target)
        if conflict is None:
            self._grant(transid, target)
            return
        if timeout <= 0:
            self.timeouts += 1
            raise LockTimeout(transid, target)
        self.waits += 1
        waiter = _Waiter(Event(self.env), transid, target, since=self.env.now)
        self._queues.setdefault(target, deque()).append(waiter)
        self._trace("lock_wait", transid=str(transid), target=target)
        wait_start = self.env.now
        deadline = self.env.timeout(timeout)
        outcome = yield AnyOf(self.env, [waiter.event, deadline])
        if waiter.event in outcome:
            self._observe_wait(transid, wait_start, timed_out=False)
            return  # granted by a release
        self._remove_waiter(waiter)
        self.timeouts += 1
        self._trace("lock_timeout", transid=str(transid), target=target)
        self._observe_wait(transid, wait_start, timed_out=True)
        raise LockTimeout(transid, target)

    def _observe_wait(self, transid: Any, wait_start: float, timed_out: bool) -> None:
        metrics = self.env.metrics
        if metrics is None or not metrics.enabled:
            return
        waited = self.env.now - wait_start
        metrics.observe("lock.wait_ms", waited)
        if timed_out:
            metrics.inc("lock.timeouts")
        if waited > 0:
            metrics.spans.record(
                str(transid), "lock-wait", "lock", wait_start, self.env.now
            )

    def _grant(self, transid: Any, target: LockTarget) -> None:
        if target[0] == "rec":
            _tag, file_name, key = target
            self._record_owners[(file_name, key)] = transid
            self._records_per_file.setdefault(file_name, Counter())[transid] += 1
        else:
            self._file_owners[target[1]] = transid
        self._held.setdefault(transid, set()).add(target)
        self.grants += 1

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release_all(self, transid: Any) -> int:
        """Release every lock held by ``transid``; returns count released.

        Iteration is in a canonical order (targets sorted by repr): the
        wake order decides which waiter is granted first, and set order
        is hash-randomized across processes — the simulation must not be.
        """
        targets = sorted(self._held.pop(transid, set()), key=repr)
        files_touched: Set[str] = set()
        for target in targets:
            if target[0] == "rec":
                _tag, file_name, key = target
                self._record_owners.pop((file_name, key), None)
                counter = self._records_per_file.get(file_name)
                if counter is not None:
                    counter[transid] -= 1
                    if counter[transid] <= 0:
                        del counter[transid]
                files_touched.add(file_name)
            else:
                self._file_owners.pop(target[1], None)
                files_touched.add(target[1])
        for target in targets:
            self._wake(target)
        # A released file lock may unblock record waiters; re-check every
        # queue touching the released files (canonical order again).
        for target in sorted(self._queues, key=repr):
            if target[1] in files_touched:
                self._wake(target)
        return len(targets)

    def _wake(self, target: LockTarget) -> None:
        queue = self._queues.get(target)
        if not queue:
            self._queues.pop(target, None)
            return
        while queue:
            waiter = queue[0]
            if waiter.event.triggered:
                queue.popleft()  # timed out meanwhile
                continue
            if self._conflict(waiter.transid, waiter.target) is not None:
                break
            queue.popleft()
            self._grant(waiter.transid, waiter.target)
            waiter.event.succeed()
            self._trace("lock_granted_after_wait", transid=str(waiter.transid),
                        target=waiter.target)
        if not queue:
            self._queues.pop(target, None)

    def _remove_waiter(self, waiter: _Waiter) -> None:
        queue = self._queues.get(waiter.target)
        if queue is None:
            return
        try:
            queue.remove(waiter)
        except ValueError:
            pass
        if not queue:
            self._queues.pop(waiter.target, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holder_of_record(self, file_name: str, key: Any) -> Optional[Any]:
        return self._record_owners.get((file_name, key))

    def holder_of_file(self, file_name: str) -> Optional[Any]:
        return self._file_owners.get(file_name)

    def locks_held(self, transid: Any) -> Set[LockTarget]:
        return set(self._held.get(transid, set()))

    def held_count(self) -> int:
        return sum(len(targets) for targets in self._held.values())

    # ------------------------------------------------------------------
    # Waits-for-graph deadlock detection (ablation baseline, bench E4)
    # ------------------------------------------------------------------
    def waits_for_edges(self) -> List[Tuple[Any, Any]]:
        """(waiter_transid, owner_transid) edges of the waits-for graph."""
        edges = []
        for queue in self._queues.values():
            for waiter in queue:
                if waiter.event.triggered:
                    continue
                owner = self._conflict(waiter.transid, waiter.target)
                if owner is not None:
                    edges.append((waiter.transid, owner))
        return edges

    def find_deadlock_cycle(self) -> Optional[List[Any]]:
        """A cycle in the waits-for graph, or None.

        The paper's TMF does *not* do this (deadlock detection is by
        timeout); it exists as the ablation comparator.
        """
        graph: Dict[Any, List[Any]] = {}
        for waiter, owner in self.waits_for_edges():
            graph.setdefault(waiter, []).append(owner)
        visiting: Set[Any] = set()
        done: Set[Any] = set()
        stack: List[Any] = []

        def visit(node: Any) -> Optional[List[Any]]:
            visiting.add(node)
            stack.append(node)
            for neighbour in graph.get(node, []):
                if neighbour in visiting:
                    return stack[stack.index(neighbour):]
                if neighbour not in done:
                    found = visit(neighbour)
                    if found is not None:
                        return found
            visiting.discard(node)
            done.add(node)
            stack.pop()
            return None

        for node in list(graph):
            if node not in done:
                found = visit(node)
                if found is not None:
                    return found
        return None

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, volume=self.name, **fields)
