"""Alternate-key (secondary) indices with automatic maintenance.

"Multi-key access to records with automatic maintenance of the indices
during file update."  (paper, §Data Base Management)

Each alternate key of a key-sequenced file is backed by its own B-tree
whose keys are ``(alternate_value, primary_key)`` — non-unique by
construction — mapping to the primary key.  :class:`StructuredFile`
wraps a base file and its indices and keeps them consistent across
insert / update / delete.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .blocks import BlockStore
from .entryseq import EntrySequencedFile
from .keyseq import KeySequencedFile
from .records import (
    ENTRY_SEQUENCED,
    KEY_SEQUENCED,
    RELATIVE,
    FileSchema,
    Record,
)
from .relative import RelativeFile

__all__ = ["AlternateIndex", "StructuredFile", "TOP"]

Key = Tuple[Any, ...]


class _TopType:
    """A sentinel that compares greater than every other value.

    Used as the last component of a range bound so an index scan over
    ``(value, primary_key)`` entries stops right after the last entry for
    ``value`` instead of walking to the end of the tree.
    """

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return other is TOP

    def __gt__(self, other: Any) -> bool:
        return other is not TOP

    def __ge__(self, other: Any) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TOP>"


TOP = _TopType()


class AlternateIndex:
    """One alternate-key index over a key-sequenced base file."""

    def __init__(self, store: BlockStore, base_name: str, field: str, create: bool = False):
        self.field = field
        self.tree = KeySequencedFile(
            store, f"{base_name}#{field}", create=create
        )

    def entry_key(self, record: Record, primary_key: Key) -> Key:
        return (record[self.field], primary_key)

    def add(self, record: Record, primary_key: Key) -> None:
        self.tree.insert(self.entry_key(record, primary_key), primary_key)

    def remove(self, record: Record, primary_key: Key) -> None:
        self.tree.delete(self.entry_key(record, primary_key))

    def lookup(self, value: Any) -> List[Key]:
        """Primary keys of records whose indexed field equals ``value``."""
        rows = self.tree.scan(low=(value,), high=(value, TOP))
        return [primary_key for _entry, primary_key in rows]

    def lookup_range(self, low: Any, high: Any) -> List[Key]:
        """Primary keys with low <= field <= high (in field order)."""
        rows = self.tree.scan(low=(low,), high=(high, TOP))
        return [primary_key for _entry, primary_key in rows]


class StructuredFile:
    """A schema-typed file plus its automatically-maintained indices.

    This is the object a DISCPROCESS holds per resident file (or file
    partition).  For key-sequenced files it returns *undo/redo images*
    from each mutation so the caller can generate TMF audit records.
    """

    def __init__(self, store: BlockStore, schema: FileSchema, create: bool = False):
        self.schema = schema
        self.store = store
        self.indices: Dict[str, AlternateIndex] = {}
        if schema.organization == KEY_SEQUENCED:
            self.base: Any = KeySequencedFile(store, schema.name, create=create)
            for field in schema.alternate_keys:
                self.indices[field] = AlternateIndex(
                    store, schema.name, field, create=create
                )
        elif schema.organization == RELATIVE:
            self.base = RelativeFile(store, schema.name, create=create)
        else:
            self.base = EntrySequencedFile(store, schema.name, create=create)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def record_count(self) -> int:
        return self.base.record_count

    # ------------------------------------------------------------------
    # Key-sequenced operations (with index maintenance)
    # ------------------------------------------------------------------
    def read(self, key: Key) -> Optional[Record]:
        self._require(KEY_SEQUENCED)
        return self.base.read(key)

    def insert(self, record: Record) -> Key:
        self._require(KEY_SEQUENCED)
        self.schema.check_record(record)
        key = self.schema.key_of(record)
        self.base.insert(key, record)
        for index in self.indices.values():
            index.add(record, key)
        return key

    def update(self, record: Record) -> Record:
        """Replace the record with this primary key; returns the old one."""
        self._require(KEY_SEQUENCED)
        self.schema.check_record(record)
        key = self.schema.key_of(record)
        old = self.base.update(key, record)
        for index in self.indices.values():
            if old[index.field] != record[index.field]:
                index.remove(old, key)
                index.add(record, key)
        return old

    def delete(self, key: Key) -> Record:
        self._require(KEY_SEQUENCED)
        old = self.base.delete(key)
        for index in self.indices.values():
            index.remove(old, key)
        return old

    def scan(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[Key, Record]]:
        self._require(KEY_SEQUENCED)
        return self.base.scan(low, high, limit)

    def read_via_index(self, field: str, value: Any) -> List[Record]:
        """All records whose alternate key ``field`` equals ``value``."""
        self._require(KEY_SEQUENCED)
        index = self.indices[field]
        return [self.base.read(pk) for pk in index.lookup(value)]

    # ------------------------------------------------------------------
    # Relative / entry-sequenced operations
    # ------------------------------------------------------------------
    def read_slot(self, record_number: int) -> Optional[Record]:
        self._require(RELATIVE)
        return self.base.read(record_number)

    def write_slot(self, record_number: int, record: Optional[Record]) -> Optional[Record]:
        self._require(RELATIVE)
        return self.base.write(record_number, record)

    def append_slot(self, record: Record) -> int:
        self._require(RELATIVE)
        return self.base.append(record)

    def append_entry(self, record: Record) -> int:
        self._require(ENTRY_SEQUENCED)
        return self.base.append(record)

    def read_entry(self, esn: int) -> Optional[Record]:
        self._require(ENTRY_SEQUENCED)
        return self.base.read(esn)

    def scan_entries(self, start_esn: int = 0, limit: Optional[int] = None):
        self._require(ENTRY_SEQUENCED)
        return self.base.scan(start_esn, limit)

    def scan_slots(self, limit: Optional[int] = None):
        self._require(RELATIVE)
        return self.base.scan(limit)

    # ------------------------------------------------------------------
    def _require(self, organization: str) -> None:
        if self.schema.organization != organization:
            raise TypeError(
                f"{self.name} is {self.schema.organization}, "
                f"operation requires {organization}"
            )
