"""Relative files: records addressed by record number.

The second ENCOMPASS file organization.  Record numbers map directly to
(block, slot) positions, so access is a single block probe.  Writing
past the end extends the file; deleted slots read as None and may be
rewritten.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .blocks import BlockStore

__all__ = ["RelativeFile", "SlotError"]

_HEADER = 0
# header: ["H", next_record_number, record_count]
# data block n (numbered n+1): ["R", [slot, ...]] of length slots_per_block


class SlotError(KeyError):
    """Access to a record number that is out of range or empty."""


class RelativeFile:
    """A record-number addressed file over a block store."""

    def __init__(
        self,
        store: BlockStore,
        name: str,
        slots_per_block: int = 16,
        create: bool = False,
    ):
        if slots_per_block < 1:
            raise ValueError("slots_per_block must be >= 1")
        self.store = store
        self.name = name
        self.slots_per_block = slots_per_block
        if create:
            self.store.put(name, _HEADER, ["H", 0, 0])

    def _header(self) -> List[Any]:
        header = self.store.get(self.name, _HEADER)
        if header is None:
            raise SlotError(f"file {self.name} does not exist")
        return header

    def _locate(self, record_number: int) -> Tuple[int, int]:
        if record_number < 0:
            raise SlotError(f"{self.name}: negative record number {record_number}")
        block_number = record_number // self.slots_per_block + 1
        slot = record_number % self.slots_per_block
        return block_number, slot

    @property
    def record_count(self) -> int:
        return self._header()[2]

    @property
    def next_record_number(self) -> int:
        return self._header()[1]

    def read(self, record_number: int) -> Optional[Any]:
        """The record at ``record_number``, or None if empty/past EOF."""
        block_number, slot = self._locate(record_number)
        block = self.store.get(self.name, block_number)
        if block is None:
            return None
        return block[1][slot]

    def write(self, record_number: int, record: Any) -> Optional[Any]:
        """Store ``record`` at ``record_number``; returns the old value."""
        header = self._header()
        block_number, slot = self._locate(record_number)
        block = self.store.get(self.name, block_number)
        if block is None:
            block = ["R", [None] * self.slots_per_block]
        old = block[1][slot]
        new_block = ["R", list(block[1])]
        new_block[1][slot] = record
        self.store.put(self.name, block_number, new_block)
        if old is None and record is not None:
            header[2] += 1
        elif old is not None and record is None:
            header[2] -= 1
        if record_number >= header[1]:
            header[1] = record_number + 1
        self.store.put(self.name, _HEADER, header)
        return old

    def append(self, record: Any) -> int:
        """Store ``record`` at the next free record number; returns it."""
        number = self._header()[1]
        self.write(number, record)
        return number

    def delete(self, record_number: int) -> Any:
        """Empty the slot; returns the old record (raises if empty)."""
        old = self.read(record_number)
        if old is None:
            raise SlotError(f"{self.name}: slot {record_number} is empty")
        self.write(record_number, None)
        return old

    def scan(self, limit: Optional[int] = None) -> List[Tuple[int, Any]]:
        """All (record_number, record) pairs in position order."""
        out: List[Tuple[int, Any]] = []
        for number in range(self._header()[1]):
            record = self.read(number)
            if record is not None:
                out.append((number, record))
                if limit is not None and len(out) >= limit:
                    break
        return out
