"""Client-side file access: the application's view of the data base.

Application servers do not talk to DISCPROCESSes directly; they use a
:class:`FileClient`, which plays the role of the file-system record
interface in the paper:

* resolves a file name through the data dictionary to the partition
  (volume, node) holding the requested key — "partitioning of files by
  key value range across multiple disc volumes (possibly on multiple
  nodes)" is invisible to the caller;
* sends the request through the File System, which appends the caller's
  current transid and handles retry over DISCPROCESS takeovers;
* converts error replies into typed exceptions
  (:class:`LockTimeoutError` is the one applications act on — it is the
  presumed-deadlock signal that should trigger RESTART-TRANSACTION).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..guardian import FileSystem, FileSystemError, OsProcess
from .ops import (
    AppendEntry,
    AppendSlot,
    CreateFile,
    DEFAULT_LOCK_TIMEOUT,
    DeleteRecord,
    FlushCache,
    InsertRecord,
    LockFile,
    LockRecord,
    ReadEntry,
    ReadRecord,
    ReadSlot,
    ReadViaIndex,
    ScanEntries,
    ScanRecords,
    UpdateRecord,
    VolumeStats,
    WriteSlot,
)
from .records import FileSchema, PartitionSpec

__all__ = [
    "DataDictionary",
    "FileClient",
    "FileError",
    "LockTimeoutError",
    "NotLockedError",
    "DuplicateKeyError",
    "NotFoundError",
    "FileUnavailableError",
    "SecurityViolationError",
]


class FileError(Exception):
    """Base class for data-base access failures."""

    def __init__(self, code: str, detail: Any = None):
        super().__init__(f"{code}: {detail}" if detail is not None else code)
        self.code = code
        self.detail = detail


class LockTimeoutError(FileError):
    """Presumed deadlock — the application should restart the transaction."""


class NotLockedError(FileError):
    """Update/delete without holding the record's lock (TMF protocol violation)."""


class DuplicateKeyError(FileError):
    pass


class NotFoundError(FileError):
    pass


class FileUnavailableError(FileError):
    """Volume down / file missing / audit subsystem unavailable."""


class SecurityViolationError(FileError):
    """The requesting process is not authorized for this function."""


_ERROR_CLASSES = {
    "lock_timeout": LockTimeoutError,
    "not_locked": NotLockedError,
    "tx_not_active": FileError,
    "security_violation": SecurityViolationError,
    "duplicate_key": DuplicateKeyError,
    "not_found": NotFoundError,
    "no_such_file": FileUnavailableError,
    "volume_down": FileUnavailableError,
    "audit_unavailable": FileUnavailableError,
    "audit_requires_transaction": FileError,
    "file_exists": FileError,
    "bad_request": FileError,
}


def _check(reply: Dict[str, Any]) -> Dict[str, Any]:
    if reply.get("ok"):
        return reply
    code = reply.get("error", "bad_request")
    raise _ERROR_CLASSES.get(code, FileError)(code, reply.get("detail"))


class DataDictionary:
    """The cluster-wide catalog of file schemas (static per run)."""

    def __init__(self) -> None:
        self._schemas: Dict[str, FileSchema] = {}

    def define(self, schema: FileSchema) -> FileSchema:
        if schema.name in self._schemas:
            raise ValueError(f"file {schema.name} already defined")
        self._schemas[schema.name] = schema
        return schema

    def schema(self, file_name: str) -> FileSchema:
        try:
            return self._schemas[file_name]
        except KeyError:
            raise FileUnavailableError("no_such_file", file_name) from None

    def files(self) -> List[str]:
        return sorted(self._schemas)


class FileClient:
    """Record-level data base access for one node's processes."""

    def __init__(
        self,
        filesystem: FileSystem,
        dictionary: DataDictionary,
        request_timeout: float = 5000.0,
    ):
        self.filesystem = filesystem
        self.dictionary = dictionary
        self.request_timeout = request_timeout

    # ------------------------------------------------------------------
    # Destination resolution
    # ------------------------------------------------------------------
    def _destination(self, spec: PartitionSpec) -> str:
        if spec.node == self.filesystem.node_name:
            return spec.volume
        return f"\\{spec.node}.{spec.volume}"

    def _dest_for_key(self, schema: FileSchema, key: Tuple[Any, ...]) -> str:
        return self._destination(schema.partition_for(key))

    def _single_partition(self, schema: FileSchema) -> str:
        if schema.partitioned:
            raise FileError(
                "bad_request",
                f"{schema.name}: operation not supported on partitioned files",
            )
        return self._destination(schema.partitions[0])

    def _send(self, proc: OsProcess, destination: str, payload: Any, transid: Any) -> Generator:
        try:
            reply = yield from self.filesystem.send(
                proc, destination, payload, transid=transid, timeout=self.request_timeout
            )
        except FileSystemError as exc:
            # The DISCPROCESS pair (or the path to it) is gone — the
            # multi-module failure case.
            raise FileUnavailableError("volume_down", str(exc)) from exc
        return _check(reply)

    # ------------------------------------------------------------------
    # Key-sequenced operations
    # ------------------------------------------------------------------
    def read(
        self,
        proc: OsProcess,
        file_name: str,
        key: Tuple[Any, ...],
        transid: Any = None,
        lock: bool = False,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> Generator:
        """Read one record by primary key (optionally locking it)."""
        schema = self.dictionary.schema(file_name)
        destination = self._dest_for_key(schema, key)
        reply = yield from self._send(
            proc,
            destination,
            ReadRecord(file_name, key, lock=lock, lock_timeout=lock_timeout),
            transid,
        )
        return reply["record"]

    def insert(self, proc: OsProcess, file_name: str, record: Dict[str, Any], transid: Any = None) -> Generator:
        schema = self.dictionary.schema(file_name)
        key = schema.key_of(record)
        reply = yield from self._send(
            proc, self._dest_for_key(schema, key), InsertRecord(file_name, record), transid
        )
        return reply["key"]

    def update(self, proc: OsProcess, file_name: str, record: Dict[str, Any], transid: Any = None) -> Generator:
        schema = self.dictionary.schema(file_name)
        key = schema.key_of(record)
        yield from self._send(
            proc, self._dest_for_key(schema, key), UpdateRecord(file_name, record), transid
        )

    def delete(self, proc: OsProcess, file_name: str, key: Tuple[Any, ...], transid: Any = None) -> Generator:
        schema = self.dictionary.schema(file_name)
        reply = yield from self._send(
            proc, self._dest_for_key(schema, key), DeleteRecord(file_name, key), transid
        )
        return reply["record"]

    def lock_record(
        self,
        proc: OsProcess,
        file_name: str,
        key: Tuple[Any, ...],
        transid: Any,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> Generator:
        schema = self.dictionary.schema(file_name)
        yield from self._send(
            proc,
            self._dest_for_key(schema, key),
            LockRecord(file_name, key, lock_timeout),
            transid,
        )

    def lock_file(
        self,
        proc: OsProcess,
        file_name: str,
        transid: Any,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> Generator:
        """Lock every partition of the file, in partition order."""
        schema = self.dictionary.schema(file_name)
        for spec in schema.partitions:
            yield from self._send(
                proc,
                self._destination(spec),
                LockFile(file_name, lock_timeout),
                transid,
            )

    def scan(
        self,
        proc: OsProcess,
        file_name: str,
        low: Optional[Tuple[Any, ...]] = None,
        high: Optional[Tuple[Any, ...]] = None,
        limit: Optional[int] = None,
        transid: Any = None,
    ) -> Generator:
        """Browse records across all partitions covering [low, high]."""
        schema = self.dictionary.schema(file_name)
        rows: List[Tuple[Tuple[Any, ...], Dict[str, Any]]] = []
        for spec in schema.partitions:
            if limit is not None and len(rows) >= limit:
                break
            remaining = None if limit is None else limit - len(rows)
            reply = yield from self._send(
                proc,
                self._destination(spec),
                ScanRecords(file_name, low, high, remaining),
                transid,
            )
            rows.extend(reply["rows"])
        return rows

    def read_via_index(
        self, proc: OsProcess, file_name: str, field: str, value: Any, transid: Any = None
    ) -> Generator:
        """All records (across partitions) whose alternate key matches."""
        schema = self.dictionary.schema(file_name)
        records: List[Dict[str, Any]] = []
        for spec in schema.partitions:
            reply = yield from self._send(
                proc, self._destination(spec), ReadViaIndex(file_name, field, value), transid
            )
            records.extend(reply["records"])
        return records

    # ------------------------------------------------------------------
    # Relative / entry-sequenced operations (single-partition files)
    # ------------------------------------------------------------------
    def read_slot(
        self,
        proc: OsProcess,
        file_name: str,
        record_number: int,
        transid: Any = None,
        lock: bool = False,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> Generator:
        schema = self.dictionary.schema(file_name)
        reply = yield from self._send(
            proc,
            self._single_partition(schema),
            ReadSlot(file_name, record_number, lock, lock_timeout),
            transid,
        )
        return reply["record"]

    def write_slot(
        self, proc: OsProcess, file_name: str, record_number: int, record: Any, transid: Any = None
    ) -> Generator:
        schema = self.dictionary.schema(file_name)
        reply = yield from self._send(
            proc,
            self._single_partition(schema),
            WriteSlot(file_name, record_number, record),
            transid,
        )
        return reply["old"]

    def append_slot(self, proc: OsProcess, file_name: str, record: Any, transid: Any = None) -> Generator:
        schema = self.dictionary.schema(file_name)
        reply = yield from self._send(
            proc, self._single_partition(schema), AppendSlot(file_name, record), transid
        )
        return reply["record_number"]

    def append_entry(self, proc: OsProcess, file_name: str, record: Any, transid: Any = None) -> Generator:
        schema = self.dictionary.schema(file_name)
        reply = yield from self._send(
            proc, self._single_partition(schema), AppendEntry(file_name, record), transid
        )
        return reply["esn"]

    def read_entry(self, proc: OsProcess, file_name: str, esn: int, transid: Any = None) -> Generator:
        schema = self.dictionary.schema(file_name)
        reply = yield from self._send(
            proc, self._single_partition(schema), ReadEntry(file_name, esn), transid
        )
        return reply["record"]

    def scan_entries(
        self,
        proc: OsProcess,
        file_name: str,
        start_esn: int = 0,
        limit: Optional[int] = None,
        transid: Any = None,
    ) -> Generator:
        schema = self.dictionary.schema(file_name)
        reply = yield from self._send(
            proc,
            self._single_partition(schema),
            ScanEntries(file_name, start_esn, limit),
            transid,
        )
        return reply["rows"]

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------
    def create_file(self, proc: OsProcess, schema: FileSchema) -> Generator:
        """Create the file on every partition volume (DDL)."""
        for spec in schema.partitions:
            yield from self._send(
                proc, self._destination(spec), CreateFile(schema), None
            )

    def volume_stats(self, proc: OsProcess, destination: str) -> Generator:
        reply = yield from self._send(proc, destination, VolumeStats(), None)
        return reply

    def flush_volume(self, proc: OsProcess, destination: str) -> Generator:
        reply = yield from self._send(proc, destination, FlushCache(), None)
        return reply["blocks_written"]
