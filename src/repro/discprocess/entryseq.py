"""Entry-sequenced files: append-only logs of records.

The third ENCOMPASS file organization, used for history/journal data
(and, internally, for TMF's audit-trail files).  Each appended record
gets a monotonically increasing *entry sequence number* (ESN); records
are never moved, and reads are by ESN or sequential scan.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .blocks import BlockStore

__all__ = ["EntrySequencedFile"]

_HEADER = 0
# header: ["H", next_esn]
# data block n (numbered n+1): ["E", [record, ...]]


class EntrySequencedFile:
    """An append-only file over a block store."""

    def __init__(
        self,
        store: BlockStore,
        name: str,
        entries_per_block: int = 32,
        create: bool = False,
    ):
        if entries_per_block < 1:
            raise ValueError("entries_per_block must be >= 1")
        self.store = store
        self.name = name
        self.entries_per_block = entries_per_block
        if create:
            self.store.put(name, _HEADER, ["H", 0])

    def _header(self) -> List[Any]:
        header = self.store.get(self.name, _HEADER)
        if header is None:
            raise KeyError(f"file {self.name} does not exist")
        return header

    @property
    def record_count(self) -> int:
        return self._header()[1]

    def append(self, record: Any) -> int:
        """Add ``record`` at the end; returns its ESN."""
        header = self._header()
        esn = header[1]
        block_number = esn // self.entries_per_block + 1
        block = self.store.get(self.name, block_number)
        if block is None:
            block = ["E", []]
        new_block = ["E", list(block[1]) + [record]]
        self.store.put(self.name, block_number, new_block)
        header[1] = esn + 1
        self.store.put(self.name, _HEADER, header)
        return esn

    def void(self, esn: int) -> Optional[Any]:
        """Tombstone the entry at ``esn`` (transaction backout of an append).

        Entry-sequenced files are append-only for applications; the
        record stays physically allocated but reads as absent.  Returns
        the old record.
        """
        if esn < 0 or esn >= self._header()[1]:
            raise KeyError(f"{self.name}: esn {esn} out of range")
        block_number = esn // self.entries_per_block + 1
        block = self.store.get(self.name, block_number)
        if block is None:
            return None
        offset = esn % self.entries_per_block
        if offset >= len(block[1]):
            return None
        old = block[1][offset]
        new_block = ["E", list(block[1])]
        new_block[1][offset] = None
        self.store.put(self.name, block_number, new_block)
        return old

    def read(self, esn: int) -> Optional[Any]:
        """The record with entry sequence number ``esn``, or None."""
        if esn < 0 or esn >= self._header()[1]:
            return None
        block_number = esn // self.entries_per_block + 1
        block = self.store.get(self.name, block_number)
        if block is None:
            return None
        offset = esn % self.entries_per_block
        if offset >= len(block[1]):
            return None
        return block[1][offset]

    def scan(
        self, start_esn: int = 0, limit: Optional[int] = None
    ) -> List[Tuple[int, Any]]:
        """(esn, record) pairs from ``start_esn`` onward."""
        out: List[Tuple[int, Any]] = []
        end = self._header()[1]
        for esn in range(max(start_esn, 0), end):
            record = self.read(esn)
            if record is not None:
                out.append((esn, record))
                if limit is not None and len(out) >= limit:
                    break
        return out
