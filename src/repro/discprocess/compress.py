"""Data and index compression.

"Data and index compression" is feature (3) of the ENCOMPASS data-base
manager.  Two schemes are implemented, matching the techniques of the
era:

* **prefix key compression** — within a block, each key is stored as
  (length of prefix shared with the previous key, remaining suffix);
  sorted keys compress very well;
* **field value compression** — a record is stored as the set of fields
  that differ from a per-block *model record* (useful for files whose
  records share many equal fields, e.g. status columns).

Both are exact (lossless) codecs with encode/decode round-trip tests;
the DISCPROCESS uses the codec's size accounting in its storage
statistics (bench E7 reports compression ratios).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "compress_keys",
    "decompress_keys",
    "compress_records",
    "decompress_records",
    "encoded_key_size",
    "plain_key_size",
]


def _common_prefix_len(a: str, b: str) -> int:
    limit = min(len(a), len(b))
    idx = 0
    while idx < limit and a[idx] == b[idx]:
        idx += 1
    return idx


def _key_to_str(key: Sequence[Any]) -> str:
    """Canonical string form of a key tuple (order-preserving per field)."""
    return "\x00".join(str(part) for part in key)


def compress_keys(keys: Sequence[Sequence[Any]]) -> List[Tuple[int, str]]:
    """Prefix-compress a sorted run of key tuples.

    Returns (shared_prefix_length, suffix) pairs over the canonical
    string form of each key.
    """
    out: List[Tuple[int, str]] = []
    previous = ""
    for key in keys:
        text = _key_to_str(key)
        shared = _common_prefix_len(previous, text)
        out.append((shared, text[shared:]))
        previous = text
    return out


def decompress_keys(entries: Sequence[Tuple[int, str]]) -> List[str]:
    """Invert :func:`compress_keys` (to canonical string form)."""
    out: List[str] = []
    previous = ""
    for shared, suffix in entries:
        text = previous[:shared] + suffix
        out.append(text)
        previous = text
    return out


def plain_key_size(keys: Sequence[Sequence[Any]]) -> int:
    """Bytes to store the keys uncompressed (canonical form)."""
    return sum(len(_key_to_str(key)) for key in keys)


def encoded_key_size(entries: Sequence[Tuple[int, str]]) -> int:
    """Bytes to store prefix-compressed keys (1 length byte + suffix)."""
    return sum(1 + len(suffix) for _shared, suffix in entries)


def compress_records(
    records: Sequence[Dict[str, Any]]
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Delta-compress records against the block's most common values.

    Returns (model_record, deltas): each delta holds only the fields
    where the record differs from the model.  Fields absent from a
    record are encoded with the sentinel stored under ``"__absent__"``
    keys — but since our records are schema-complete dicts, absence only
    arises for heterogeneous blocks, which we encode explicitly.
    """
    model: Dict[str, Any] = {}
    if records:
        # Most common value per field across the block.
        field_values: Dict[str, Dict[Any, int]] = {}
        for record in records:
            for fname, value in record.items():
                try:
                    counts = field_values.setdefault(fname, {})
                    counts[value] = counts.get(value, 0) + 1
                except TypeError:
                    continue  # unhashable value: never modelled
        for fname, counts in field_values.items():
            best = max(counts.items(), key=lambda item: item[1])
            if best[1] > 1:
                model[fname] = best[0]
    deltas: List[Dict[str, Any]] = []
    for record in records:
        delta = {
            fname: value
            for fname, value in record.items()
            if fname not in model or not _safe_eq(model[fname], value)
        }
        missing = [fname for fname in model if fname not in record]
        if missing:
            delta["__absent__"] = missing
        deltas.append(delta)
    return model, deltas


def _safe_eq(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except (TypeError, ValueError):
        # An exotic __eq__ (or __bool__ on its result) that refuses the
        # comparison: treat the values as unequal so the field stays in
        # the delta and decompression reproduces it verbatim.
        return False


def decompress_records(
    model: Dict[str, Any], deltas: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Invert :func:`compress_records`."""
    out: List[Dict[str, Any]] = []
    for delta in deltas:
        absent = set(delta.get("__absent__", ()))
        record = {
            fname: value for fname, value in model.items() if fname not in absent
        }
        record.update(
            {fname: value for fname, value in delta.items() if fname != "__absent__"}
        )
        out.append(record)
    return out
