"""Block-level storage interfaces.

All structured files (key-sequenced, relative, entry-sequenced) are
organized as *blocks* identified by ``(file_name, block_number)``.  The
data structures are written against the small :class:`BlockStore`
interface so the same B-tree code runs over a plain dict in unit tests
and over the DISCPROCESS cache + mirrored discs in the full system.

Stores count logical reads and writes; the DISCPROCESS converts those
counts into simulated I/O time and cache traffic.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

__all__ = [
    "BlockStore",
    "MemoryBlockStore",
    "VolumeBlockStore",
    "BlockKey",
    "IoCounters",
]

BlockKey = Tuple[str, int]


class IoCounters:
    """Read/write tallies for one store."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:
        return f"<IoCounters reads={self.reads} writes={self.writes}>"


class BlockStore:
    """Abstract block container."""

    def get(self, file_name: str, block_number: int) -> Any:
        raise NotImplementedError

    def put(self, file_name: str, block_number: int, block: Any) -> None:
        raise NotImplementedError

    def delete(self, file_name: str, block_number: int) -> None:
        raise NotImplementedError

    def blocks_of(self, file_name: str) -> Iterator[BlockKey]:
        raise NotImplementedError

    def drop_file(self, file_name: str) -> None:
        for key in list(self.blocks_of(file_name)):
            self.delete(*key)


class VolumeBlockStore(BlockStore):
    """A block store writing directly to a mirrored disc volume.

    Every ``get``/``put`` is a *physical* disc operation (counted in
    ``counters``); used where durability is wanted per write — audit
    trails, archives — as opposed to the DISCPROCESS's write-back cache.
    """

    def __init__(self, volume: Any):
        self.volume = volume
        self.counters = IoCounters()

    def get(self, file_name: str, block_number: int) -> Any:
        self.counters.reads += 1
        return self.volume.read_block((file_name, block_number))

    def put(self, file_name: str, block_number: int, block: Any) -> None:
        self.counters.writes += 1
        self.volume.write_block((file_name, block_number), block)

    def delete(self, file_name: str, block_number: int) -> None:
        self.volume.delete_block((file_name, block_number))

    def blocks_of(self, file_name: str) -> Iterator[BlockKey]:
        return iter(
            [key for key in self.volume.block_ids() if key[0] == file_name]
        )


class MemoryBlockStore(BlockStore):
    """A dict-backed store for unit tests and in-memory structures."""

    def __init__(self) -> None:
        self._blocks: Dict[BlockKey, Any] = {}
        self.counters = IoCounters()

    def get(self, file_name: str, block_number: int) -> Any:
        self.counters.reads += 1
        return self._blocks.get((file_name, block_number))

    def put(self, file_name: str, block_number: int, block: Any) -> None:
        self.counters.writes += 1
        self._blocks[(file_name, block_number)] = block

    def delete(self, file_name: str, block_number: int) -> None:
        self._blocks.pop((file_name, block_number), None)

    def blocks_of(self, file_name: str) -> Iterator[BlockKey]:
        return iter([key for key in self._blocks if key[0] == file_name])

    def __len__(self) -> int:
        return len(self._blocks)
