"""Request payloads and error vocabulary of the DISCPROCESS protocol.

Every interaction with a DISCPROCESS is a request/reply exchange whose
payload is one of the frozen dataclasses below.  Replies are dicts:
``{"ok": True, ...}`` on success, ``{"ok": False, "error": <code>}`` on
failure, with the error codes of :data:`ERROR_CODES`.  The client-side
wrapper (:mod:`repro.discprocess.client`) converts error replies into
typed exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..sim import fast_deepcopy, register_fastcopy
from .records import FileSchema

__all__ = [
    "CreateFile",
    "QuiesceTransaction",
    "ReadRecord",
    "InsertRecord",
    "UpdateRecord",
    "DeleteRecord",
    "ScanRecords",
    "ReadViaIndex",
    "LockFile",
    "LockRecord",
    "ReadSlot",
    "WriteSlot",
    "AppendSlot",
    "AppendEntry",
    "ReadEntry",
    "ScanEntries",
    "ReleaseLocks",
    "BackoutOp",
    "AuditRecord",
    "AppendAudit",
    "ForceBoxcar",
    "VolumeStats",
    "FlushCache",
    "ERROR_CODES",
    "op_name",
]


def op_name(payload: Any) -> str:
    """The protocol name of a request payload (used as a metric key)."""
    return type(payload).__name__

#: every error code a DISCPROCESS reply may carry
ERROR_CODES = (
    "lock_timeout",        # deadlock presumed: restart the transaction
    "not_locked",          # update/delete without a prior record lock
    "tx_not_active",       # transid not in 'active' state (per the
                           # broadcast state table): op rejected
    "duplicate_key",
    "not_found",
    "no_such_file",
    "file_exists",
    "audit_requires_transaction",
    "audit_unavailable",   # the volume's AUDITPROCESS pair is down
    "volume_down",         # both drives / catastrophic failure
    "bad_request",
)

DEFAULT_LOCK_TIMEOUT = 400.0  # ms; "the interval being specified as part
                              # of the lock request"


@dataclass(frozen=True)
class CreateFile:
    schema: FileSchema


@dataclass(frozen=True)
class ReadRecord:
    file: str
    key: Tuple[Any, ...]
    lock: bool = False
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT


@dataclass(frozen=True)
class InsertRecord:
    file: str
    record: Any
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT


@dataclass(frozen=True)
class UpdateRecord:
    file: str
    record: Any


@dataclass(frozen=True)
class DeleteRecord:
    file: str
    key: Tuple[Any, ...]


@dataclass(frozen=True)
class ScanRecords:
    """Browse access: no locks, may see uncommitted data (paper clause
    (d) of §Concurrency Control is recommended, not enforced)."""

    file: str
    low: Optional[Tuple[Any, ...]] = None
    high: Optional[Tuple[Any, ...]] = None
    limit: Optional[int] = None


@dataclass(frozen=True)
class ReadViaIndex:
    file: str
    field: str
    value: Any


@dataclass(frozen=True)
class LockFile:
    file: str
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT


@dataclass(frozen=True)
class LockRecord:
    file: str
    key: Tuple[Any, ...]
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT


@dataclass(frozen=True)
class ReadSlot:
    file: str
    record_number: int
    lock: bool = False
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT


@dataclass(frozen=True)
class WriteSlot:
    file: str
    record_number: int
    record: Any
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT


@dataclass(frozen=True)
class AppendSlot:
    file: str
    record: Any
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT


@dataclass(frozen=True)
class AppendEntry:
    file: str
    record: Any


@dataclass(frozen=True)
class ReadEntry:
    file: str
    esn: int


@dataclass(frozen=True)
class ScanEntries:
    file: str
    start_esn: int = 0
    limit: Optional[int] = None


@dataclass(frozen=True)
class QuiesceTransaction:
    """Wait until no operation of ``transid`` is in flight on this volume.

    Sent by TMF after broadcasting the *aborting* state (which stops new
    operations) and before backout, so the BACKOUTPROCESS sees the
    complete audit stream.
    """

    transid: Any


@dataclass(frozen=True)
class ReleaseLocks:
    """Phase two: drop every lock the transaction holds on this volume."""

    transid: Any
    committed: bool


@dataclass(frozen=True)
class BackoutOp:
    """Apply the inverse of one audit record (BACKOUTPROCESS only)."""

    audit_record: Any


@dataclass(frozen=True)
class AuditRecord:
    """One before/after image of a logical data base update.

    Produced by the DISCPROCESS ("Each DISCPROCESS ... automatically
    provides 'before-images' and 'after-images' of data base updates"),
    consumed by the AUDITPROCESS and ROLLFORWARD above it — which is why
    the carrier lives here, at the layer that writes it.
    """

    transid: Any               # core.transid.Transid (typed Any: the
                               # DISCPROCESS never inspects it)
    volume: str
    file: str
    op: str                    # insert | update | delete | write_slot |
                               # append_entry | backout
    key: Any                   # primary key tuple / record number / esn
    before: Any                # record image prior to the update (or None)
    after: Any                 # record image after the update (or None)
    seq: int                   # per-volume audit sequence number


# Audit images are checkpointed and archived constantly; a custom copier
# keeps them on fast_deepcopy's plain-data path.  Only ``before``/
# ``after`` (record images) are mutable — every other field is a scalar
# or a Transid, shared as-is.
register_fastcopy(
    AuditRecord,
    lambda r: AuditRecord(
        r.transid, r.volume, r.file, r.op, r.key,
        fast_deepcopy(r.before), fast_deepcopy(r.after), r.seq,
    ),
)


@dataclass(frozen=True)
class AppendAudit:
    """Ship a batch of audit images to an AUDITPROCESS."""

    volume: str
    records: Tuple[AuditRecord, ...]


@dataclass(frozen=True)
class ForceBoxcar:
    """Drain the volume's audit boxcar (phase-one / quiesce force).

    The reply arrives only after every audit image the volume had
    accumulated — for any transaction — has been accepted by its
    AUDITPROCESS, which is what lets TMF's subsequent ``ForceAudit``
    guarantee the trail holds the committing transaction's images.
    ``transid`` identifies the requester for tracing only; the drain is
    volume-wide (that is the group-commit effect: one transaction's
    force pays the forward cost for everyone's cargo).
    """

    transid: Any = None


@dataclass(frozen=True)
class VolumeStats:
    pass


@dataclass(frozen=True)
class FlushCache:
    pass
