"""BOXCAR: group-commit batching policy for the audit forward path.

The paper's §Audit Trails has audit images *buffered* at the
AUDITPROCESS and forced only during phase one of commit — nothing in the
protocol requires each operation to pay a forward round-trip of its own.
BOXCAR exploits that: the DISCPROCESS accumulates unforwarded audit
images (already checkpointed, so a takeover re-forwards them) and ships
them to the AUDITPROCESS asynchronously in batches, leaving only two
forces on the commit critical path — the boxcar drain and the trail
force — exactly the "which log forces matter" split of Gray & Lamport's
*Consensus on Transaction Commit*.

:class:`BoxcarPolicy` is the flush policy knob:

* ``max_records`` — flush as soon as this many images are unforwarded;
* ``max_wait_ms`` — flush at most this long after the oldest unflushed
  image arrived (the boxcar never idles with cargo);
* an explicit **force** (phase-one drain, abort quiesce, takeover
  re-forward) always flushes immediately and synchronously.

``resolve_boxcar`` normalizes the user-facing spellings (``True`` /
``False`` / a policy instance) used by ``SystemBuilder(boxcar=...)`` and
``DiscProcess(boxcar=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "BoxcarPolicy",
    "FLUSH_FORCE",
    "FLUSH_MAX_RECORDS",
    "FLUSH_TAKEOVER",
    "FLUSH_TIMER",
    "resolve_boxcar",
]

#: flush reasons, used as XRAY counter suffixes and TRACE fields.
FLUSH_MAX_RECORDS = "max_records"
FLUSH_TIMER = "timer"
FLUSH_FORCE = "force"
FLUSH_TAKEOVER = "takeover"


@dataclass(frozen=True)
class BoxcarPolicy:
    """When an asynchronous audit boxcar departs on its own.

    The defaults are deliberately small: a boxcar exists to absorb the
    per-operation round-trip, not to delay phase one (which drains it
    explicitly anyway, so ``max_wait_ms`` only bounds how stale the
    AUDITPROCESS's buffered view of a volume may get).
    """

    max_records: int = 16
    max_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_records < 1:
            raise ValueError("max_records must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")


def resolve_boxcar(boxcar: Any) -> Optional[BoxcarPolicy]:
    """Normalize a ``boxcar=`` argument to a policy (or None = synchronous).

    ``True`` means the default policy, ``False``/``None`` the legacy
    synchronous forward-per-operation behaviour, and a
    :class:`BoxcarPolicy` is taken as-is.
    """
    if boxcar is None or boxcar is False:
        return None
    if boxcar is True:
        return BoxcarPolicy()
    if isinstance(boxcar, BoxcarPolicy):
        return boxcar
    raise TypeError(
        f"boxcar must be True, False, None, or a BoxcarPolicy, not {boxcar!r}"
    )
