"""A data-definition language for the data dictionary.

"The data base management component of ENCOMPASS provides a data
definition language, a data dictionary, ..." (§Data Base Management).
This module is the textual front end to :class:`FileSchema`: DDL text is
parsed into schemas and installed into a :class:`DataDictionary`.

Syntax (one statement per ``DEFINE ... ;`` block, ``--`` comments)::

    DEFINE FILE account
        ORGANIZATION key-sequenced
        KEY (account_id)
        ALTERNATE KEY (branch_id)
        AUDITED
        PARTITION ON alpha.$data
        PARTITION ON beta.$data FROM (100)
        SECURE READ "alpha.*" WRITE "alpha.$bank-*";

    DEFINE FILE history
        ORGANIZATION entry-sequenced
        AUDITED
        PARTITION ON alpha.$data;

Organizations: ``key-sequenced`` (requires KEY), ``relative``,
``entry-sequenced``.  ``FROM (v [, v ...])`` gives a partition's
inclusive low key; the first partition must omit it.  Key-component
literals are integers or ``"strings"``.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from .client import DataDictionary
from .records import (
    ENTRY_SEQUENCED,
    KEY_SEQUENCED,
    RELATIVE,
    FileSchema,
    PartitionSpec,
    SecuritySpec,
)

__all__ = ["DdlError", "parse_ddl", "install_ddl"]

_ORGANIZATIONS = {
    "key-sequenced": KEY_SEQUENCED,
    "relative": RELATIVE,
    "entry-sequenced": ENTRY_SEQUENCED,
}


class DdlError(Exception):
    """A data-definition statement could not be parsed."""


_TOKEN = re.compile(
    r"""\s*(
        "(?:[^"\\]|\\.)*"   |   # string literal
        \( | \) | , | ;     |
        [A-Za-z_][\w.\$\-]* |   # identifier (may contain . and $)
        \$[\w\-]+           |   # volume name
        -?\d+
    )""",
    re.VERBOSE,
)


def _tokenize(source: str) -> List[str]:
    text = re.sub(r"--[^\n]*", "", source)
    tokens, position = [], 0
    text = text.strip()
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise DdlError(f"cannot tokenize near: {text[position:position + 30]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    @property
    def done(self) -> bool:
        return self.position >= len(self.tokens)

    def peek(self) -> Optional[str]:
        if self.done:
            return None
        return self.tokens[self.position]

    def next(self) -> str:
        if self.done:
            raise DdlError("unexpected end of DDL")
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, *words: str) -> str:
        token = self.next()
        if token.upper() not in words:
            raise DdlError(f"expected {' / '.join(words)}, got {token!r}")
        return token

    def accept(self, word: str) -> bool:
        if not self.done and self.tokens[self.position].upper() == word:
            self.position += 1
            return True
        return False

    # ------------------------------------------------------------------
    def parse_statements(self) -> List[FileSchema]:
        schemas = []
        while not self.done:
            schemas.append(self.parse_define())
        return schemas

    def parse_define(self) -> FileSchema:
        self.expect("DEFINE")
        self.expect("FILE")
        name = self.next()
        organization: Optional[str] = None
        primary_key: Tuple[str, ...] = ()
        alternate_keys: List[str] = []
        audited = False
        partitions: List[PartitionSpec] = []
        security = SecuritySpec()
        while True:
            token = self.next()
            upper = token.upper()
            if upper == ";":
                break
            if upper == "ORGANIZATION":
                organization_word = self.next().lower()
                if organization_word not in _ORGANIZATIONS:
                    raise DdlError(f"unknown organization {organization_word!r}")
                organization = _ORGANIZATIONS[organization_word]
            elif upper == "KEY":
                primary_key = tuple(self._parse_name_list())
            elif upper == "ALTERNATE":
                self.expect("KEY")
                alternate_keys.extend(self._parse_name_list())
            elif upper == "AUDITED":
                audited = True
            elif upper == "PARTITION":
                self.expect("ON")
                location = self.next()
                if "." not in location:
                    raise DdlError(
                        f"partition location must be node.volume, got {location!r}"
                    )
                node, _, volume = location.partition(".")
                low_key: Optional[Tuple[Any, ...]] = None
                if self.accept("FROM"):
                    low_key = tuple(self._parse_literal_list())
                partitions.append(PartitionSpec(node, volume, low_key=low_key))
            elif upper == "SECURE":
                read = ("*",)
                write = ("*",)
                while self.peek() and self.peek().upper() in ("READ", "WRITE"):
                    which = self.next().upper()
                    patterns = [self._parse_string()]
                    while self.accept(","):
                        patterns.append(self._parse_string())
                    if which == "READ":
                        read = tuple(patterns)
                    else:
                        write = tuple(patterns)
                security = SecuritySpec(read=read, write=write)
            else:
                raise DdlError(f"unknown DDL clause {token!r}")
        if organization is None:
            raise DdlError(f"{name}: ORGANIZATION is required")
        return FileSchema(
            name=name,
            organization=organization,
            primary_key=primary_key,
            alternate_keys=tuple(alternate_keys),
            audited=audited,
            partitions=tuple(partitions),
            security=security,
        )

    # ------------------------------------------------------------------
    def _parse_name_list(self) -> List[str]:
        self.expect("(")
        names = [self.next()]
        while self.accept(","):
            names.append(self.next())
        self.expect(")")
        return names

    def _parse_literal_list(self) -> List[Any]:
        self.expect("(")
        values = [self._parse_literal()]
        while self.accept(","):
            values.append(self._parse_literal())
        self.expect(")")
        return values

    def _parse_literal(self) -> Any:
        token = self.next()
        if token.startswith('"'):
            return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        try:
            return int(token)
        except ValueError:
            raise DdlError(f"bad literal {token!r}") from None

    def _parse_string(self) -> str:
        token = self.next()
        if not token.startswith('"'):
            raise DdlError(f"expected a quoted pattern, got {token!r}")
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")


def parse_ddl(source: str) -> List[FileSchema]:
    """Parse DDL text into file schemas (validated by FileSchema)."""
    return _Parser(_tokenize(source)).parse_statements()


def install_ddl(source: str, dictionary: DataDictionary) -> List[FileSchema]:
    """Parse DDL and define every file in the dictionary."""
    schemas = parse_ddl(source)
    for schema in schemas:
        dictionary.define(schema)
    return schemas
