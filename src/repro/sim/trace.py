"""Structured tracing and counters for experiments.

The hardware, OS and TMF layers emit trace records through a shared
:class:`Tracer`.  Experiments assert on the records (e.g. "every state
transition observed is an edge of Figure 3") and the benchmark harness
aggregates the counters (message counts, forced writes, takeovers).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        # Dunder lookups (``__deepcopy__``, ``__getstate__``, ...) must
        # fail fast: copy/pickle probe them on instances whose ``fields``
        # attribute may not exist yet (e.g. mid-unpickle), and delegating
        # would recurse through ``self.fields`` forever.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        try:
            return self.__dict__["fields"][name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Collects trace records and counters for one simulation run.

    Recording full records can be disabled (``keep_records=False``) for
    long benchmark runs where only the counters matter.
    """

    def __init__(self, keep_records: bool = True):
        self.keep_records = keep_records
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        # Per-kind index over ``records``: experiment assertions select by
        # kind over and over, and a linear scan of a long run's full
        # record list per assertion is O(total records) each time.
        self._by_kind: Dict[str, List[TraceRecord]] = {}

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an occurrence of ``kind`` at simulated ``time``."""
        self.counters[kind] += 1
        if not self.keep_records and not self._subscribers:
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if self.keep_records:
            self.records.append(record)
            self._by_kind.setdefault(kind, []).append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Stop invoking ``callback``.  Unknown callbacks are ignored.

        Dropping the last subscriber matters on ``keep_records=False``
        runs: while any subscriber is registered every emit must
        materialize a :class:`TraceRecord`, so a stale subscriber
        silently re-enables the record-allocation cost that
        ``keep_records=False`` was meant to avoid.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def capture(self, kind: Optional[str] = None, **criteria: Any) -> "_Capture":
        """Context manager collecting matching records while active::

            with tracer.capture("takeover", node="alpha") as records:
                ...  # run some simulation
            assert len(records) == 1

        The subscription is removed on exit, so captures are safe on
        ``keep_records=False`` runs.
        """
        return _Capture(self, kind, criteria)

    def count(self, kind: str) -> int:
        return self.counters[kind]

    def select(self, kind: str, **criteria: Any) -> List[TraceRecord]:
        """Records of ``kind`` whose fields match all ``criteria``."""
        return list(self.iter(kind, **criteria))

    def iter(self, kind: Optional[str] = None, **criteria: Any) -> Iterator[TraceRecord]:
        pool = self.records if kind is None else self._by_kind.get(kind, [])
        for record in pool:
            if all(record.fields.get(k) == v for k, v in criteria.items()):
                yield record

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()
        self._by_kind.clear()


class _Capture:
    """Subscription-backed record collector (see :meth:`Tracer.capture`)."""

    def __init__(self, tracer: Tracer, kind: Optional[str], criteria: Dict[str, Any]):
        self.tracer = tracer
        self.kind = kind
        self.criteria = criteria
        self.records: List[TraceRecord] = []

    def _on_record(self, record: TraceRecord) -> None:
        if self.kind is not None and record.kind != self.kind:
            return
        if all(record.fields.get(k) == v for k, v in self.criteria.items()):
            self.records.append(record)

    def __enter__(self) -> List[TraceRecord]:
        self.tracer.subscribe(self._on_record)
        return self.records

    def __exit__(self, *exc_info: Any) -> None:
        self.tracer.unsubscribe(self._on_record)
