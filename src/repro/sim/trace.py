"""Structured tracing and counters for experiments.

The hardware, OS and TMF layers emit trace records through a shared
:class:`Tracer`.  Experiments assert on the records (e.g. "every state
transition observed is an edge of Figure 3") and the benchmark harness
aggregates the counters (message counts, forced writes, takeovers).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Collects trace records and counters for one simulation run.

    Recording full records can be disabled (``keep_records=False``) for
    long benchmark runs where only the counters matter.
    """

    def __init__(self, keep_records: bool = True):
        self.keep_records = keep_records
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an occurrence of ``kind`` at simulated ``time``."""
        self.counters[kind] += 1
        if not self.keep_records and not self._subscribers:
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if self.keep_records:
            self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record."""
        self._subscribers.append(callback)

    def count(self, kind: str) -> int:
        return self.counters[kind]

    def select(self, kind: str, **criteria: Any) -> List[TraceRecord]:
        """Records of ``kind`` whose fields match all ``criteria``."""
        return list(self.iter(kind, **criteria))

    def iter(self, kind: Optional[str] = None, **criteria: Any) -> Iterator[TraceRecord]:
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if all(record.fields.get(k) == v for k, v in criteria.items()):
                yield record

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()
