"""Named, seeded random streams.

Every stochastic element of the simulation (arrival times, service times,
key choices, failure schedules) draws from its own named stream derived
from a single master seed.  This keeps runs reproducible and lets one
element's draw count change without perturbing the others.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Sequence

__all__ = ["RandomStreams", "zipf_weights"]


class RandomStreams:
    """A factory of independent ``random.Random`` streams.

    Streams are derived as ``crc32(name) ^ master_seed`` so that the same
    (seed, name) pair always yields the same sequence across processes and
    Python versions (``hash(str)`` is salted; ``crc32`` is not).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            derived = (zlib.crc32(name.encode("utf-8")) ^ self.seed) & 0xFFFFFFFF
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)


def zipf_weights(n: int, skew: float) -> Sequence[float]:
    """Weights of a Zipf(``skew``) distribution over ``n`` ranks.

    ``skew == 0`` degenerates to uniform.  Used by workload generators to
    model hot-record contention.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]
