"""FIFO channels (mailboxes) for process communication.

A :class:`Channel` is an unbounded FIFO queue of items.  ``put`` never
blocks; ``get`` returns an event that succeeds with the oldest item as
soon as one is available.  Getters are served in request order.

Channels are the building block of the message system: every OS process
owns one as its inbox.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Environment
from .events import Event

__all__ = ["Channel", "ChannelClosed"]


class ChannelClosed(Exception):
    """Raised into getters when the channel is closed (owner died)."""

    def __init__(self, reason: Any = None):
        super().__init__(reason)
        self.reason = reason


class Channel:
    """An unbounded FIFO queue connecting simulation processes."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed: Optional[ChannelClosed] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed is not None

    def put(self, item: Any) -> bool:
        """Deposit ``item``; returns False if the channel is closed."""
        if self._closed is not None:
            return False
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue  # getter gave up (e.g. timed out) meanwhile
            getter.succeed(item)
            return True
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event yielding the next item."""
        event = Event(self.env)
        if self._closed is not None:
            event.fail(self._closed)
            event.defused = True
            return event
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending getter (used after a timeout won a race)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def close(self, reason: Any = None) -> None:
        """Close the channel; pending and future getters fail."""
        if self._closed is not None:
            return
        self._closed = ChannelClosed(reason)
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.defused = True
                getter.fail(self._closed)

    def drain(self) -> list:
        """Remove and return all queued items (without waking getters)."""
        items = list(self._items)
        self._items.clear()
        return items
