"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which the entire Tandem NonStop /
ENCOMPASS reproduction runs: a seeded, single-threaded event loop with
generator-coroutine processes, FIFO channels, named random streams, and
structured tracing.
"""

from .channel import Channel, ChannelClosed
from .engine import EmptySchedule, Environment
from .fastcopy import (
    ATOMIC_TYPES,
    fast_deepcopy,
    register_fastcopy,
    register_immutable,
)
from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Timeout,
)
from .rng import RandomStreams, zipf_weights
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "SimulationError",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "ATOMIC_TYPES",
    "fast_deepcopy",
    "register_fastcopy",
    "register_immutable",
    "zipf_weights",
]
