"""Event primitives for the discrete-event simulation kernel.

The kernel follows the SimPy model: a simulation *process* is a Python
generator that yields :class:`Event` objects.  Yielding an event suspends
the process until the event *triggers*; the process is then resumed with
the event's value (or the event's exception is thrown into it).

Only the small subset of machinery needed by this project is implemented:
plain events, timeouts, processes, and ``AnyOf``/``AllOf`` composition.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "ProcessKilled",
    "SimulationError",
]


class _Pending:
    """Sentinel for the value of an event that has not yet triggered."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel itself."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary description of why the process was
    interrupted (e.g. the component whose failure woke it up).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """The failure value of a process terminated by :meth:`Process.kill`."""

    def __init__(self, reason: Any = None):
        super().__init__(reason)
        self.reason = reason


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*; it may later *succeed* with a value or
    *fail* with an exception.  Callbacks registered on the event run when
    the environment processes it.

    Events are the unit allocation of the hot loop — tens of thousands
    per simulated second — so the whole hierarchy is ``__slots__``-only.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event has not triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Flattened Event.__init__ + env.schedule: a timeout is born
        # triggered, and this constructor runs tens of thousands of
        # times per simulated second.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self.defused = False
        self.delay = delay
        env._eid += 1
        heappush(env._queue, (env._now + delay, 0, env._eid, self))


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that triggers when the generator
    returns (success, with the return value) or raises (failure).
    """

    __slots__ = ("name", "_generator", "_target", "_kill_pending")

    def __init__(self, env: "Environment", generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {generator!r}"
            )
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None
        self._kill_pending: Optional[Any] = None
        # Kick off the generator at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            return
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=-1)

    def kill(self, reason: Any = None) -> None:
        """Terminate the process without resuming it.

        Used to model crash failures: the process simply stops executing.
        The process event fails with :class:`ProcessKilled` but is marked
        ``defused`` so an unobserved kill does not abort the simulation.
        """
        if self.triggered:
            return
        if self.env._active_process is self:
            # A process causing its own CPU's failure kills itself while
            # executing; the generator cannot be closed from within.
            # Defer: it dies at its next yield without being resumed.
            self._kill_pending = reason
            return
        self._detach()
        generator, self._generator = self._generator, None
        if generator is not None:
            generator.close()
        self._ok = False
        self._value = ProcessKilled(reason)
        self.defused = True
        self.env.schedule(self)

    def _detach(self) -> None:
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.callbacks:
                # The killed process was the only observer: if the target
                # later fails (e.g. a reply error racing the kill), there
                # is nobody left to handle it — don't abort the run.
                target.defused = True

    def _resume(self, event: Event) -> None:
        if self._generator is None:
            return  # killed while a resume was already scheduled
        self._detach()
        self.env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event.defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            self._finish(False, exc)
            return
        finally:
            self.env._active_process = None
        if self._kill_pending is not None:
            reason, self._kill_pending = self._kill_pending, None
            generator, self._generator = self._generator, None
            if generator is not None:
                generator.close()
            self._ok = False
            self._value = ProcessKilled(reason)
            self.defused = True
            self.env.schedule(self)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._generator.close()
            self._finish(False, exc)
            return
        if target.callbacks is None:
            # Already processed: resume immediately (next step, same time).
            immediate = Event(self.env)
            immediate._ok = target._ok
            immediate._value = target._value
            if not target._ok:
                target.defused = True
            immediate.defused = True
            immediate.callbacks.append(self._resume)
            self.env.schedule(immediate)
        else:
            self._target = target
            target.callbacks.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._generator = None
        self._ok = ok
        self._value = value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name!r} {state}>"


class Condition(Event):
    """Base for events composed of other events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        self._pending = 0
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                self._pending += 1
                event.callbacks.append(self._on_trigger)
        if not self.triggered:
            self._maybe_finish()

    def _on_trigger(self, event: Event) -> None:
        self._pending -= 1
        if not event._ok:
            # The condition owns its constituents' failures: a late
            # failure (after the condition already triggered) must not
            # abort the simulation as "unhandled".
            event.defused = True
        if not self.triggered:
            self._check(event)
            if not self.triggered:
                self._maybe_finish()

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _maybe_finish(self) -> None:
        raise NotImplementedError


class AnyOf(Condition):
    """Triggers as soon as any constituent event does.

    Succeeds with a dict mapping each already-triggered event to its value;
    fails if the first triggering event failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())

    def _maybe_finish(self) -> None:
        if not self.events:
            self.succeed({})

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }


class AllOf(Condition):
    """Triggers when every constituent event has; fails on first failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            event.defused = True
            self.fail(event._value)

    def _maybe_finish(self) -> None:
        if self._pending == 0:
            self.succeed({event: event._value for event in self.events})
