"""Fast deep copies of plain-data trees (the checkpoint hot path).

Profiling the debit/credit workload shows the simulator spending more
than half its wall-clock inside :func:`copy.deepcopy`: every checkpoint
mirrors record images into the backup process's memory, every
DISCPROCESS reply isolates records from later in-place mutation, and
every audit image carries before/after record copies.  The values being
copied are overwhelmingly *plain data* — dicts, lists, tuples and
scalars (records are dicts of field values; B-tree blocks are nested
lists) — for which the generic ``deepcopy`` machinery (memo dict,
reduce protocol, per-object dispatch) is pure overhead.

:func:`fast_deepcopy` handles exactly those shapes with direct
recursion and falls back to :func:`copy.deepcopy` for anything it does
not recognize, so it is a drop-in replacement wherever the copied value
has *value semantics* (no reliance on aliasing within the copied tree,
no cycles).  Checkpoint images, record replies and audit images all
qualify: the copy exists precisely so the original can be mutated
independently.

Layers above ``sim`` register their own value-like carrier types:

* :func:`register_immutable` — the type is deeply immutable (e.g. a
  frozen dataclass of scalars); instances are returned as-is.
* :func:`register_fastcopy` — a custom copier for a type whose fields
  are themselves plain data (e.g. an audit record carrying two record
  images).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Type

__all__ = [
    "ATOMIC_TYPES",
    "fast_deepcopy",
    "register_immutable",
    "register_fastcopy",
]

#: exact types returned as-is (deeply immutable).  Registered frozen
#: dataclasses of scalars join this set via :func:`register_immutable`.
_ATOMIC = {
    type(None), bool, int, float, complex, str, bytes, type, range,
}

#: public alias (the same live set) for callers that want to inline the
#: "is it atomic?" test at their own hot sites before paying the call.
ATOMIC_TYPES = _ATOMIC

#: exact type -> copier, for registered carrier types.
_COPIERS: dict = {}


def register_immutable(cls: Type) -> Type:
    """Mark ``cls`` as deeply immutable: instances are shared, not copied.

    Usable as a class decorator.  Only exact instances are recognized
    (subclasses still take the generic fallback).
    """
    _ATOMIC.add(cls)
    return cls


def register_fastcopy(cls: Type, copier: Callable[[Any], Any]) -> None:
    """Register ``copier`` as the fast copier for exact instances of ``cls``."""
    _COPIERS[cls] = copier


def fast_deepcopy(obj: Any) -> Any:
    """A deep copy of ``obj``, specialized for plain-data trees.

    Equivalent to :func:`copy.deepcopy` for acyclic value data; shared
    sub-objects are duplicated rather than kept shared (the memo of the
    generic machinery is what this function exists to avoid).  Dict keys
    are hashable — immutable for plain data — and are shared.
    """
    cls = obj.__class__
    if cls in _ATOMIC:
        return obj
    # Containers inline the atomic test for each element: the leaves of
    # record trees are overwhelmingly scalars, and skipping a recursive
    # call per scalar is most of this module's win.
    atomic = _ATOMIC
    if cls is dict:
        return {
            key: value if value.__class__ in atomic else fast_deepcopy(value)
            for key, value in obj.items()
        }
    if cls is list:
        return [
            item if item.__class__ in atomic else fast_deepcopy(item)
            for item in obj
        ]
    if cls is tuple:
        return tuple(
            item if item.__class__ in atomic else fast_deepcopy(item)
            for item in obj
        )
    if cls is set:
        return {
            item if item.__class__ in atomic else fast_deepcopy(item)
            for item in obj
        }
    if cls is frozenset:
        return frozenset(
            item if item.__class__ in atomic else fast_deepcopy(item)
            for item in obj
        )
    copier = _COPIERS.get(cls)
    if copier is not None:
        return copier(obj)
    return copy.deepcopy(obj)
