"""The discrete-event simulation environment.

Time is a float; by convention throughout this project it is measured in
**milliseconds** of simulated wall-clock time.  The environment is fully
deterministic: events scheduled for the same instant are processed in
(priority, insertion-order) sequence, so a run with the same seeds always
produces the same history.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
)

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment for a single simulation run.

    ``__slots__`` keeps the per-step attribute traffic (``_now``,
    ``_queue``, ``events_processed``, the ``metrics``/``trace`` probe
    reads) on the fast path; the slot list is the complete attribute
    surface of an environment.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "metrics",
        "trace",
        "events_processed",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: metrics registry of the owning run (set by the cluster when
        #: measurement is enabled; None means unmeasured — probe sites
        #: throughout the stack guard on this).
        self.metrics: Optional[Any] = None
        #: trace hub of the owning run (set by the cluster when causal
        #: tracing is enabled; None means untraced — same guard pattern
        #: as ``metrics``).
        self.trace: Optional[Any] = None
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = 0) -> None:
        """Queue ``event`` for processing ``delay`` time units from now."""
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise EmptySchedule()
        self._now, _, _, event = heappop(self._queue)
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if not callbacks:
            # Zero-listener fast path (bare timeouts nobody awaited yet,
            # defensively re-stepped events): nothing to run, and a
            # failure with no listener is handled below.
            if callbacks is None:
                return  # event was already processed (defensive)
        else:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event.defused:
            # A failure nobody handled: abort the simulation loudly rather
            # than silently dropping an error.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value or raising its exception).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        # The loop binds the queue once and inlines :meth:`step`'s body:
        # at tens of thousands of iterations per run the attribute
        # lookups, the ``peek()`` indirection, and the per-event call
        # are all measurable.  Keep this block in lockstep with step().
        queue = self._queue
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                if stop_event.ok:
                    return stop_event.value
                stop_event.defused = True
                raise stop_event.value
            if not queue:
                if stop_event is not None:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        f"event {stop_event!r} triggered"
                    )
                if stop_time != float("inf"):
                    self._now = stop_time
                break
            if queue[0][0] > stop_time:
                self._now = stop_time
                break
            self._now, _, _, event = heappop(queue)
            self.events_processed += 1
            callbacks = event.callbacks
            if callbacks is None:
                continue  # already processed (defensive re-step)
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event.defused:
                raise event._value
        return None
