"""Failure schedules: deterministic and randomized fault injection."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence, Tuple

from ..hardware import VolumeUnavailable

__all__ = ["FailureEvent", "FailureSchedule", "random_failure_schedule"]


@dataclass(frozen=True)
class FailureEvent:
    """Fail ``component`` at ``at``; restore at ``restore_at`` (optional)."""

    at: float
    component: Any
    restore_at: Optional[float] = None


class FailureSchedule:
    """Executes failure events against a cluster as simulated time passes."""

    def __init__(self, cluster: Any, events: Sequence[FailureEvent]):
        self.cluster = cluster
        self.events = sorted(events, key=lambda e: e.at)
        self.injected: List[Tuple[float, str]] = []
        self.process = cluster.env.process(self._run(), name="failure-schedule")

    def _run(self) -> Generator:
        env = self.cluster.env
        timeline: List[Tuple[float, str, Any]] = []
        for event in self.events:
            timeline.append((event.at, "fail", event.component))
            if event.restore_at is not None:
                timeline.append((event.restore_at, "restore", event.component))
        timeline.sort(key=lambda item: item[0])
        for at, action, component in timeline:
            if at > env.now:
                yield env.timeout(at - env.now)
            if action == "fail":
                component.fail(reason="failure schedule")
            else:
                component.restore()
                # A restored drive needs a revive from its mirror before
                # it can serve; find its volume if any.
                if getattr(component, "stale", False):
                    self._try_revive(component)
            self.injected.append((env.now, f"{action}:{component.full_name}"))

    def _try_revive(self, drive: Any) -> None:
        for node_os in self.cluster.oses.values():
            for volume in node_os.node.volumes.values():
                if drive in volume.drives:
                    try:
                        volume.revive()
                    except VolumeUnavailable:
                        # Mirror also down: leave the drive stale until a
                        # later restore gives revive a source to copy from.
                        pass
                    return


def random_failure_schedule(
    cluster: Any,
    rng: Optional[random.Random],
    duration: float,
    count: int,
    kinds: Sequence[str] = ("cpu", "bus", "controller", "drive", "line"),
    outage: float = 500.0,
    protect: Sequence[Any] = (),
) -> List[FailureEvent]:
    """``count`` random single-component failures over ``duration`` ms.

    Components are restored ``outage`` ms after failing, so the schedule
    exercises takeover *and* re-protection.  ``protect`` lists components
    that must not be chosen (e.g. to keep at least one mirror alive).
    ``rng=None`` draws from the cluster's ``workload.failures`` stream.
    """
    rng = rng or cluster.streams.stream("workload.failures")
    candidates = []
    for node_os in cluster.oses.values():
        for component in node_os.node.components():
            if component.kind in kinds and component not in protect:
                candidates.append(component)
    for line in cluster.network.lines:
        if "line" in kinds and line not in protect:
            candidates.append(line)
    if not candidates:
        return []
    events = []
    for _ in range(count):
        at = rng.uniform(duration * 0.05, duration * 0.85)
        component = rng.choice(candidates)
        events.append(
            FailureEvent(at=at, component=component, restore_at=at + outage)
        )
    return events
