"""Parameter sweeps and result tables for the benchmark harness."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List

# Re-exported for the benchmark harness; the single implementation
# lives with the XRAY screen's other renderers.
from ..measure.tables import format_table

__all__ = ["sweep", "format_table"]


def sweep(
    parameter_values: Iterable[Any],
    run: Callable[[Any], Dict[str, Any]],
    parameter_name: str = "param",
) -> List[Dict[str, Any]]:
    """Run ``run(value)`` for each value; returns one row per value."""
    rows = []
    for value in parameter_values:
        row = {parameter_name: value}
        row.update(run(value))
        rows.append(row)
    return rows


