"""Closed-loop workload drivers and transaction metrics.

A *closed loop* of N simulated users: each user submits a terminal
input, waits for the reply, thinks, and repeats — the standard OLTP
load model.  The driver collects per-transaction latency and outcome,
from which the benchmark harness derives throughput and percentiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..measure.registry import Histogram

__all__ = ["LoadResult", "TransactionMetrics", "run_closed_loop"]


@dataclass
class TransactionMetrics:
    """Outcome record of one driven transaction unit."""

    start: float
    end: float
    ok: bool
    attempts: int = 1
    error: Optional[str] = None

    @property
    def latency(self) -> float:
        return self.end - self.start


@dataclass
class LoadResult:
    """Aggregate of one closed-loop run."""

    metrics: List[TransactionMetrics] = field(default_factory=list)
    duration: float = 0.0

    @property
    def committed(self) -> int:
        return sum(1 for m in self.metrics if m.ok)

    @property
    def failed(self) -> int:
        return sum(1 for m in self.metrics if not m.ok)

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.committed / (self.duration / 1000.0)

    @property
    def restarts(self) -> int:
        return sum(m.attempts - 1 for m in self.metrics if m.ok)

    def latency_histogram(self) -> Histogram:
        """Committed-transaction latencies as an XRAY histogram.

        The single percentile implementation of the repository lives in
        :class:`repro.measure.registry.Histogram`; both the closed-loop
        driver and the online metrics report through it.
        """
        histogram = Histogram(name="load.latency_ms")
        for m in self.metrics:
            if m.ok:
                histogram.record(m.latency)
        return histogram

    def latency_percentile(self, q: float) -> float:
        return self.latency_histogram().percentile(q)

    @property
    def mean_latency(self) -> float:
        return self.latency_histogram().mean


def run_closed_loop(
    system: Any,
    node: str,
    tcp_name: str,
    terminal_ids: List[str],
    make_input: Callable[[random.Random, str, int], Any],
    duration: float,
    think_time: float = 20.0,
    rng: Optional[random.Random] = None,
    start_cpu: int = 0,
) -> LoadResult:
    """Drive ``terminal_ids`` in a closed loop for ``duration`` ms.

    ``make_input(rng, terminal_id, iteration)`` builds each input
    screen.  Returns the aggregated :class:`LoadResult`.
    """
    # The silent fallback derives from the cluster's named-stream factory
    # rather than a private random.Random(0), so the driver's draws are
    # tied to the run seed like every other stochastic element.
    rng = rng or system.cluster.streams.stream("workload.drivers")
    result = LoadResult()
    env = system.env
    start_time = env.now
    deadline = start_time + duration

    def user(proc, terminal_id):
        iteration = 0
        while env.now < deadline:
            data = make_input(rng, terminal_id, iteration)
            begin = env.now
            try:
                reply = yield from system.terminal_request(
                    proc, node, tcp_name, terminal_id, data
                )
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                result.metrics.append(
                    TransactionMetrics(begin, env.now, False, error=str(exc))
                )
                yield env.timeout(think_time)
                continue
            result.metrics.append(
                TransactionMetrics(
                    begin,
                    env.now,
                    bool(reply.get("ok")),
                    attempts=reply.get("attempts", 1),
                    error=reply.get("error"),
                )
            )
            iteration += 1
            yield env.timeout(think_time * (0.5 + rng.random()))

    node_os = system.cluster.os(node)
    cpu_numbers = node_os.alive_cpu_numbers()
    users = []
    for index, terminal_id in enumerate(terminal_ids):
        cpu = cpu_numbers[(start_cpu + index) % len(cpu_numbers)]
        users.append(
            node_os.spawn(
                f"$user-{terminal_id}",
                cpu,
                (lambda tid: lambda proc: user(proc, tid))(terminal_id),
                register=False,
            )
        )
    from ..sim import ProcessKilled

    for user_proc in users:
        try:
            system.cluster.run(user_proc.sim_process)
        except ProcessKilled:
            # The user's CPU failed: that terminal's session is lost.
            # (Drive users from a node outside the failure-injection
            # set to model terminals, which live off the host node.)
            continue
    result.duration = max(env.now - start_time, 1e-9)
    return result
