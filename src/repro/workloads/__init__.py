"""Synthetic workload generation, failure injection, and sweeps.

No 1981 Tandem production traces exist; these seeded generators drive
the identical code paths (locking, audit, commit, backout) with
controlled arrival processes, key skew, and failure schedules — the
substitution recorded in DESIGN.md.
"""

from .drivers import LoadResult, TransactionMetrics, run_closed_loop
from .failures import FailureEvent, FailureSchedule, random_failure_schedule
from .keys import KeyChooser
from .sweep import format_table, sweep

__all__ = [
    "FailureEvent",
    "FailureSchedule",
    "KeyChooser",
    "LoadResult",
    "TransactionMetrics",
    "format_table",
    "random_failure_schedule",
    "run_closed_loop",
    "sweep",
]
