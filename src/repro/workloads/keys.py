"""Key-distribution choosers for synthetic workloads."""

from __future__ import annotations

import random
from typing import List, Sequence, Union

from ..sim import RandomStreams, zipf_weights

__all__ = ["KeyChooser"]


class KeyChooser:
    """Draws keys 0..n-1 either uniformly or Zipf-skewed.

    ``skew=0`` is uniform; larger skews concentrate traffic on a few hot
    keys (the contention knob of the locking experiments).  Passing a
    :class:`~repro.sim.rng.RandomStreams` derives the chooser's own
    ``workload.keys`` stream, so key draws never perturb other
    consumers of the run seed.
    """

    def __init__(
        self, rng: Union[random.Random, RandomStreams], n: int, skew: float = 0.0
    ):
        if n <= 0:
            raise ValueError("n must be positive")
        if isinstance(rng, RandomStreams):
            rng = rng.stream("workload.keys")
        self.rng = rng
        self.n = n
        self.skew = skew
        self._weights: Sequence[float] = zipf_weights(n, skew) if skew > 0 else ()
        self._cumulative: List[float] = []
        if self._weights:
            total = 0.0
            for weight in self._weights:
                total += weight
                self._cumulative.append(total)

    def choose(self) -> int:
        if not self._cumulative:
            return self.rng.randrange(self.n)
        import bisect
        point = self.rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)

    def choose_distinct(self, count: int) -> List[int]:
        """``count`` distinct keys (for multi-record transactions)."""
        if count > self.n:
            raise ValueError("cannot draw more distinct keys than exist")
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            key = self.choose()
            if key not in seen:
                seen.add(key)
                chosen.append(key)
        return chosen
