"""Additional kernel, RNG, and tracer coverage."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    ProcessKilled,
    RandomStreams,
    SimulationError,
    Tracer,
    zipf_weights,
)


class TestRandomStreams:
    def test_streams_are_independent(self):
        streams = RandomStreams(seed=1)
        a1 = [streams["arrivals"].random() for _ in range(5)]
        streams2 = RandomStreams(seed=1)
        # Draw from another stream first: 'arrivals' must be unaffected.
        [streams2["failures"].random() for _ in range(100)]
        a2 = [streams2["arrivals"].random() for _ in range(5)]
        assert a1 == a2

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1)["x"].random()
        b = RandomStreams(seed=2)["x"].random()
        assert a != b

    def test_same_name_same_stream_object(self):
        streams = RandomStreams(seed=0)
        assert streams["s"] is streams["s"]


class TestTracer:
    def test_counters_without_records(self):
        tracer = Tracer(keep_records=False)
        tracer.emit(1.0, "tick", n=1)
        tracer.emit(2.0, "tick", n=2)
        assert tracer.count("tick") == 2
        assert tracer.records == []

    def test_select_filters_fields(self):
        tracer = Tracer()
        tracer.emit(1.0, "msg", node="a")
        tracer.emit(2.0, "msg", node="b")
        tracer.emit(3.0, "other", node="a")
        assert [r.time for r in tracer.select("msg", node="a")] == [1.0]

    def test_subscription(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(lambda record: seen.append(record.kind))
        tracer.emit(1.0, "x")
        tracer.emit(2.0, "y")
        assert seen == ["x", "y"]

    def test_record_attribute_access(self):
        tracer = Tracer()
        tracer.emit(1.0, "k", value=42)
        record = tracer.records[0]
        assert record.value == 42
        with pytest.raises(AttributeError):
            record.missing

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "x")
        tracer.clear()
        assert tracer.count("x") == 0 and tracer.records == []


class TestKernelEdges:
    def test_self_kill_via_cpu_failure_is_safe(self):
        """A process triggering a failure that kills itself dies at its
        next yield instead of crashing the kernel."""
        from repro.guardian import Cluster

        cluster = Cluster(seed=1)
        cluster.add_node("alpha", cpu_count=2)
        progressed = []

        def suicidal(proc):
            yield cluster.env.timeout(1)
            cluster.node("alpha").fail_cpu(proc.cpu.number)
            progressed.append("returned from fail()")
            yield cluster.env.timeout(1)
            progressed.append("should never run")

        proc = cluster.os("alpha").spawn("$s", 0, suicidal, register=False)
        cluster.run(until=100)
        assert progressed == ["returned from fail()"]
        assert isinstance(proc.sim_process.value, ProcessKilled)

    def test_allof_fails_on_constituent_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(2)
            raise ValueError("x")

        def waiter():
            ok = env.timeout(5)
            bad = env.process(failing())
            try:
                yield AllOf(env, [ok, bad])
            except ValueError:
                return env.now

        assert env.run(env.process(waiter())) == 2

    def test_interrupt_has_no_effect_on_finished_process(self):
        env = Environment()

        def quick():
            yield env.timeout(1)
            return "done"

        p = env.process(quick())
        env.run(p)
        p.interrupt("late")  # no-op
        assert p.value == "done"

    def test_event_cannot_trigger_twice(self):
        env = Environment()
        event = Event(env)
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        with pytest.raises(SimulationError):
            event.fail(RuntimeError())

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Event(env).fail("not an exception")

    def test_interrupt_carries_cause_and_leaves_target_pending(self):
        env = Environment()
        target = Event(env)
        seen = {}

        def proc():
            try:
                yield target
            except Interrupt as intr:
                seen["cause"] = intr.cause
            return "after"

        p = env.process(proc())
        env.run(until=1)
        p.interrupt({"why": "test"})
        assert env.run(p) == "after"
        assert seen["cause"] == {"why": "test"}
        assert not target.triggered

    def test_nested_process_chain_value(self):
        env = Environment()

        def level(n):
            if n == 0:
                yield env.timeout(1)
                return 0
            value = yield env.process(level(n - 1))
            return value + 1

        assert env.run(env.process(level(5))) == 5
        assert env.now == 1  # only the innermost waited

    def test_peek_and_empty(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7
