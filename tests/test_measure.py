"""The XRAY measurement subsystem (repro.measure).

Four properties pin the design:

* the log-scale histogram tracks a sorted-sample oracle — count, min,
  max and mean exactly, percentiles within one bucket's relative width;
* span trees fold into the documented critical-path breakdown (children
  charged in full, uncovered root time to ``cpu``), with first-closer
  semantics for distributed transactions;
* measurement is deterministic: two same-seed measured runs produce a
  byte-identical JSON report;
* measurement never perturbs the simulation: the measured run commits
  exactly what the unmeasured same-seed run commits, and unmeasured
  runs carry no registry at all.
"""

import math
import random

from repro.apps.banking import (
    debit_credit_program,
    install_banking,
    populate_banking,
)
from repro.encompass import SystemBuilder
from repro.measure import NULL_REGISTRY, Histogram, MetricsRegistry
from repro.measure.spans import CATEGORIES, SpanLog
from repro.workloads import run_closed_loop


# ---------------------------------------------------------------------------
# Histogram vs. a sorted-sample oracle
# ---------------------------------------------------------------------------

def _oracle_percentile(sorted_samples, q):
    rank = min(max(int(math.ceil(q * len(sorted_samples))), 1),
               len(sorted_samples))
    return sorted_samples[rank - 1]


def _check_against_oracle(samples, buckets_per_decade=50):
    hist = Histogram("t", buckets_per_decade=buckets_per_decade)
    for value in samples:
        hist.record(value)
    ordered = sorted(samples)
    assert hist.count == len(samples)
    assert hist.min == ordered[0]
    assert hist.max == ordered[-1]
    assert hist.mean == sum(samples) / len(samples)
    growth = 10 ** (1.0 / buckets_per_decade)
    for q in (0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
        exact = _oracle_percentile(ordered, q)
        approx = hist.percentile(q)
        # Clamping to [min, max] means the bound holds even at the tails.
        assert exact / growth <= approx <= exact * growth, (
            f"q={q}: approx={approx} vs exact={exact}"
        )
    assert hist.percentile(1.0) == ordered[-1]


def test_histogram_tracks_sorted_sample_oracle():
    rng = random.Random(42)
    lognormal = [math.exp(rng.gauss(3.0, 1.5)) for _ in range(5000)]
    uniform = [rng.uniform(0.5, 800.0) for _ in range(2000)]
    _check_against_oracle(lognormal)
    _check_against_oracle(uniform)
    _check_against_oracle(uniform, buckets_per_decade=10)


def test_histogram_edges_and_merge():
    hist = Histogram("edges", lo=1.0, hi=1000.0)
    for value in (0.001, 0.5, 1.0):      # at-or-below lo -> underflow bucket
        hist.record(value)
    hist.record(5e6)                      # above hi -> overflow bucket
    assert hist.count == 4
    assert hist.min == 0.001 and hist.max == 5e6
    assert hist.percentile(0.25) <= 1.0   # underflow reads back clamped low
    assert hist.percentile(1.0) == 5e6    # overflow reads back as max
    empty = Histogram("empty", lo=1.0, hi=1000.0)
    assert empty.percentile(0.5) == 0.0
    assert empty.summary() == {"count": 0}
    other = Histogram("other", lo=1.0, hi=1000.0)
    for value in (2.0, 30.0, 400.0):
        other.record(value)
    hist.merge(other)
    assert hist.count == 7
    assert hist.max == 5e6 and hist.min == 0.001
    assert math.isclose(hist.total, 0.001 + 0.5 + 1.0 + 5e6 + 432.0)


# ---------------------------------------------------------------------------
# Span nesting and critical-path accounting
# ---------------------------------------------------------------------------

def test_span_breakdown_charges_children_and_cpu_residue():
    log = SpanLog()
    log.begin_tx("t1", 0.0)
    log.begin_tx("t1", 5.0)               # idempotent: first begin wins
    log.record("t1", "disc-io", "disc", 10.0, 22.0)
    lock = log.record("t1", "lock-wait", "lock", 30.0, 45.0)
    # Nesting: a span attached to an explicit parent contributes its
    # duration to its own category and shrinks the parent's self time.
    log.record("t1", "escalation", "bus", 40.0, 44.0, parent=lock)
    record = log.end_tx("t1", 100.0, "committed")
    assert record is not None
    assert record.latency == 100.0
    assert record.breakdown["disc"] == 12.0
    assert record.breakdown["lock"] == 11.0        # 15 minus the 4ms child
    assert record.breakdown["bus"] == 4.0
    assert record.breakdown["audit"] == 0.0
    # Root residue -> cpu: 100 - (12 + 15) directly-attached child time.
    assert record.breakdown["cpu"] == 100.0 - 12.0 - 15.0
    assert math.isclose(sum(record.breakdown.values()), 100.0)
    shares = record.shares()
    assert math.isclose(sum(shares.values()), 1.0)
    assert set(shares) == set(CATEGORIES)


def test_span_first_closer_wins_and_unattributed():
    log = SpanLog()
    log.begin_tx("d1", 0.0)
    assert log.is_open("d1")
    first = log.end_tx("d1", 50.0, "committed")
    second = log.end_tx("d1", 60.0, "aborted")     # late participant
    assert first is not None and second is None
    assert log.finished == 1
    assert log.outcomes == {"committed": 1}
    # Background work (no open transaction) lands in ``unattributed``.
    assert log.record("nobody", "audit-force", "audit", 0.0, 8.0) is None
    assert log.unattributed == {"audit-force": 8.0}
    aggregate = log.aggregate()
    assert aggregate["transactions"] == 1
    assert aggregate["total_latency_ms"] == 50.0
    assert aggregate["unattributed_ms"] == {"audit-force": 8.0}


def test_registry_tx_hooks_feed_latency_histogram():
    registry = MetricsRegistry()
    registry.tx_begin("t1", 0.0)
    registry.tx_end("t1", 40.0, "committed")
    registry.tx_begin("t2", 10.0)
    registry.tx_end("t2", 100.0, "aborted")
    registry.tx_end("t2", 120.0, "aborted")        # ignored (already closed)
    assert registry.counter_value("tx.committed") == 1
    assert registry.counter_value("tx.aborted") == 1
    hist = registry.histograms["tx.latency_ms"]
    assert hist.count == 2
    assert hist.min == 40.0 and hist.max == 90.0


# ---------------------------------------------------------------------------
# Measured banking runs: determinism and non-perturbation
# ---------------------------------------------------------------------------

def _run_banking(measure):
    builder = SystemBuilder(seed=11, keep_trace=False, measure=measure,
                            sample_interval=100.0)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_banking(builder, "alpha", "$data", server_instances=2)
    builder.add_tcp("alpha", "$tcp1", cpus=(2, 3))
    builder.add_program("alpha", "$tcp1", "post", debit_credit_program)
    terminals = [f"T{i}" for i in range(4)]
    for terminal in terminals:
        builder.add_terminal("alpha", "$tcp1", terminal, "post")
    system = builder.build()
    populate_banking(system, "alpha", branches=2, tellers_per_branch=2,
                     accounts=8)

    def make_input(rng, terminal_id, iteration):
        return {
            "account_id": rng.randrange(8),
            "teller_id": rng.randrange(4),
            "branch_id": rng.randrange(2),
            "amount": rng.choice([5, -5, 10]),
            "allow_overdraft": True,
        }

    result = run_closed_loop(
        system, "alpha", "$tcp1", terminals, make_input,
        duration=1500.0, think_time=10.0, rng=random.Random(3),
    )
    return system, result


def test_same_seed_measured_runs_are_byte_identical():
    system1, result1 = _run_banking(measure=True)
    system2, result2 = _run_banking(measure=True)
    blob1, blob2 = system1.xray_json(), system2.xray_json()
    assert blob1 == blob2
    assert result1.committed == result2.committed
    # And the report actually measured something.
    report = system1.xray_report()
    assert report["transactions"]["transactions"] > 0
    assert report["histograms"]["tx.latency_ms"]["count"] > 0
    assert system1.sampler is not None and len(system1.metrics.samples) > 0


def test_measurement_does_not_perturb_the_simulation():
    measured, result_measured = _run_banking(measure=True)
    unmeasured, result_unmeasured = _run_banking(measure=False)
    assert result_measured.committed == result_unmeasured.committed
    assert result_measured.failed == result_unmeasured.failed
    assert [m.end for m in result_measured.metrics] == [
        m.end for m in result_unmeasured.metrics
    ]
    # Unmeasured runs carry no registry at all on the environment...
    assert unmeasured.env.metrics is None
    assert unmeasured.sampler is None
    # ...and the system-level accessor degrades to the shared null
    # registry, whose verbs are free no-ops.
    assert unmeasured.metrics is NULL_REGISTRY
    assert not unmeasured.metrics.enabled
    unmeasured.metrics.inc("anything")
    unmeasured.metrics.observe("anything", 1.0)
    assert unmeasured.metrics.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    # The unmeasured report renders, with the metric sections empty.
    report = unmeasured.xray_report()
    assert report["meta"]["measured"] is False
    assert report["transactions"]["transactions"] == 0
    assert report["histograms"] == {}
    assert "XRAY RUN REPORT" in unmeasured.xray_screen()
