"""Tests of GUARDRAIL, the repo's static-analysis suite (repro.lint).

Each rule gets a fixture tree shaped like the real layout
(``<tmp>/repro/<package>/<module>.py``) with one deliberate violation,
plus a clean twin proving the rule doesn't overfire.  The framework
tests cover suppression comments, the baseline file, deterministic JSON
output, and the CLI's CI-facing exit codes.  The last test is the
acceptance criterion: the shipped ``src/`` tree lints clean.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Severity,
    all_rules,
    findings_to_json,
    render_findings,
    run_lint,
)
from repro.lint.__main__ import main

SRC = Path(__file__).resolve().parent.parent / "src"


def write_tree(root, files):
    """Write ``{relative/path.py: source}`` under ``root``; return root."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(root, **kwargs):
    return run_lint([str(root)], **kwargs)


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_wall_clock_and_entropy_calls(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/clocky.py": """\
                import time
                import uuid


                def stamp():
                    return time.time(), uuid.uuid4()
                """,
        })
        result = lint(tmp_path, select=["determinism"])
        messages = [f.message for f in result.findings]
        assert len(result.findings) == 2
        assert any("wall-clock" in m for m in messages)
        assert any("ambient entropy" in m for m in messages)

    def test_aliased_import_still_resolves(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/aliased.py": """\
                from datetime import datetime as dt


                def now():
                    return dt.now()
                """,
        })
        result = lint(tmp_path, select=["determinism"])
        assert len(result.findings) == 1
        assert "datetime.datetime.now" in result.findings[0].message

    def test_module_level_random_and_unseeded_instance(self, tmp_path):
        write_tree(tmp_path, {
            "repro/workloads/draws.py": """\
                import random


                def draw():
                    return random.random()


                def unseeded():
                    return random.Random()


                def seeded_is_legal():
                    return random.Random(7)
                """,
        })
        result = lint(tmp_path, select=["determinism"])
        assert len(result.findings) == 2
        assert {f.line for f in result.findings} == {5, 9}

    def test_id_ordering(self, tmp_path):
        write_tree(tmp_path, {
            "repro/guardian/ordering.py": """\
                def order(items):
                    return sorted(items, key=id)


                def stable(items):
                    return sorted(items, key=lambda item: item.name)
                """,
            # The stream factory itself is exempt by charter.
            "repro/sim/rng.py": """\
                def order(items):
                    return sorted(items, key=id)
                """,
        })
        result = lint(tmp_path, select=["determinism"])
        assert len(result.findings) == 1
        assert result.findings[0].path.endswith("guardian/ordering.py")


# ----------------------------------------------------------------------
# layering
# ----------------------------------------------------------------------
class TestLayeringRule:
    def test_upward_import(self, tmp_path):
        write_tree(tmp_path, {
            "repro/hardware/widget.py": """\
                from repro.guardian.cluster import Cluster
                """,
        })
        result = lint(tmp_path, select=["layering"])
        assert len(result.findings) == 1
        assert "upward import" in result.findings[0].message

    def test_downward_import_is_legal(self, tmp_path):
        write_tree(tmp_path, {
            "repro/guardian/widget.py": """\
                from repro.hardware import Node
                from repro.sim import Environment
                """,
        })
        assert not lint(tmp_path, select=["layering"]).findings

    def test_relative_upward_import_resolves(self, tmp_path):
        write_tree(tmp_path, {
            "repro/hardware/widget.py": """\
                from ..guardian import cluster
                """,
        })
        result = lint(tmp_path, select=["layering"])
        assert len(result.findings) == 1

    def test_probe_package_needs_allowlist(self, tmp_path):
        write_tree(tmp_path, {
            "repro/core/probing.py": """\
                from repro.measure import MetricsRegistry
                """,
            # cluster.py is a composition root: it installs the probes.
            "repro/guardian/cluster.py": """\
                from repro.measure import MetricsRegistry
                """,
        })
        result = lint(tmp_path, select=["layering"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.path.endswith("core/probing.py")
        assert "env.metrics" in finding.message

    def test_runtime_must_not_import_lint(self, tmp_path):
        write_tree(tmp_path, {
            "repro/sim/meta.py": """\
                import repro.lint
                """,
        })
        result = lint(tmp_path, select=["layering"])
        assert len(result.findings) == 1
        assert "tooling" in result.findings[0].message


# ----------------------------------------------------------------------
# figure3
# ----------------------------------------------------------------------
class TestFigure3Rule:
    def test_unknown_member(self, tmp_path):
        write_tree(tmp_path, {
            "repro/core/typo.py": """\
                from repro.core.states import TxState


                def f():
                    return TxState.PREPARED
                """,
        })
        result = lint(tmp_path, select=["figure3"])
        assert len(result.findings) == 1
        assert "not a Figure-3 state" in result.findings[0].message

    def test_illegal_guarded_broadcast(self, tmp_path):
        write_tree(tmp_path, {
            "repro/core/edges.py": """\
                from repro.core.states import TxState


                def resurrect(broadcaster, transid, current):
                    if current == TxState.ENDED:
                        broadcaster.broadcast(transid, TxState.ACTIVE)


                def legal(broadcaster, transid, current):
                    if current == TxState.ENDING:
                        broadcaster.broadcast(transid, TxState.ENDED)
                """,
        })
        result = lint(tmp_path, select=["figure3"])
        assert len(result.findings) == 1
        assert "ENDED -> ACTIVE" in result.findings[0].message

    def test_membership_guard_and_assignment(self, tmp_path):
        write_tree(tmp_path, {
            "repro/core/tables.py": """\
                from repro.core.states import TxState


                def skip_ending(table, transid, current):
                    if current in (TxState.ACTIVE, TxState.ENDING):
                        table[transid] = TxState.ENDED
                """,
        })
        result = lint(tmp_path, select=["figure3"])
        # ACTIVE -> ENDED skips the ending state; ENDING -> ENDED is legal.
        assert len(result.findings) == 1
        assert "ACTIVE -> ENDED" in result.findings[0].message

    def test_literal_table_must_be_subgraph(self, tmp_path):
        write_tree(tmp_path, {
            "repro/encompass/mytable.py": """\
                from repro.core.states import TxState

                SHORTCUTS = {
                    TxState.ACTIVE: (TxState.ENDED,),
                    TxState.ENDING: (TxState.ENDED,),
                }
                """,
        })
        result = lint(tmp_path, select=["figure3"])
        assert len(result.findings) == 1
        assert "literal transition table" in result.findings[0].message

    def test_unguarded_sites_are_left_to_runtime(self, tmp_path):
        write_tree(tmp_path, {
            "repro/core/runtimeonly.py": """\
                from repro.core.states import TxState


                def f(broadcaster, transid, state):
                    broadcaster.broadcast(transid, state)
                """,
        })
        assert not lint(tmp_path, select=["figure3"]).findings


# ----------------------------------------------------------------------
# probe-coverage
# ----------------------------------------------------------------------
class TestProbeCoverageRule:
    def test_unprobed_send_path(self, tmp_path):
        write_tree(tmp_path, {
            "repro/guardian/sender.py": """\
                class Sender:
                    def dispatch(self, payload):
                        self.node.buses.record_transfer(1.0)
                """,
        })
        result = lint(tmp_path, select=["probe-coverage"])
        assert len(result.findings) == 1
        assert "Sender.dispatch()" in result.findings[0].message

    def test_direct_probe_covers(self, tmp_path):
        write_tree(tmp_path, {
            "repro/guardian/sender.py": """\
                class Sender:
                    def dispatch(self, payload):
                        metrics = self.env.metrics
                        if metrics is not None and metrics.enabled:
                            metrics.inc("sender.dispatches")
                        self.node.buses.record_transfer(1.0)
                """,
        })
        assert not lint(tmp_path, select=["probe-coverage"]).findings

    def test_coverage_propagates_through_callees(self, tmp_path):
        # The probe lives in the delegate, even in another file.
        write_tree(tmp_path, {
            "repro/guardian/outer.py": """\
                class Outer:
                    def send(self, payload):
                        message = Message(payload)
                        self.delegate.charge_transit(message)
                """,
            "repro/guardian/inner.py": """\
                class Inner:
                    def charge_transit(self, message):
                        hub = self.env.trace
                        if hub is not None:
                            hub.on_send(message, 0)
                """,
        })
        assert not lint(tmp_path, select=["probe-coverage"]).findings

    def test_generic_names_carry_no_credit(self, tmp_path):
        # `append` collides with probed functions elsewhere; the chain
        # through it must not launder coverage onto the send path.
        write_tree(tmp_path, {
            "repro/guardian/leaky.py": """\
                class Log:
                    def append(self, record):
                        hub = self.env.trace
                        if hub is not None:
                            hub.emit(record)


                class Sender:
                    def dispatch(self, payload):
                        self.log.append(payload)
                        self.node.buses.record_transfer(1.0)
                """,
        })
        result = lint(tmp_path, select=["probe-coverage"])
        assert len(result.findings) == 1
        assert "Sender.dispatch()" in result.findings[0].message

    def test_outside_guardian_is_out_of_scope(self, tmp_path):
        write_tree(tmp_path, {
            "repro/hardware/bus.py": """\
                class Bus:
                    def push(self, payload):
                        self.record_transfer(1.0)
                """,
        })
        assert not lint(tmp_path, select=["probe-coverage"]).findings

    def test_unprobed_boxcar_coroutine(self, tmp_path):
        # BOXCAR scope: a discprocess flush coroutine with no probe on
        # any call path is invisible — and nothing waits on it to notice.
        write_tree(tmp_path, {
            "repro/discprocess/flush.py": """\
                class Volume:
                    def _boxcar_timer(self, proc):
                        yield self.env.timeout(5.0)
                        yield from self.push_cargo(proc)

                    def push_cargo(self, proc):
                        yield from self.filesystem.send(proc, "$aud", {})
                """,
        })
        result = lint(tmp_path, select=["probe-coverage"])
        assert len(result.findings) == 1
        assert "Volume._boxcar_timer()" in result.findings[0].message

    def test_audit_ship_requires_probe(self, tmp_path):
        write_tree(tmp_path, {
            "repro/discprocess/ship.py": """\
                class Volume:
                    def _forward(self, proc):
                        op = AppendAudit(volume=self.name, records=())
                        yield from self.filesystem.send(proc, "$aud", op)
                """,
        })
        result = lint(tmp_path, select=["probe-coverage"])
        assert len(result.findings) == 1
        assert "Volume._forward()" in result.findings[0].message

    def test_boxcar_coroutine_covered_via_ship_delegate(self, tmp_path):
        # The probe lives on the AppendAudit sender; the coroutines that
        # merely decide *when* to flush inherit coverage through it.
        write_tree(tmp_path, {
            "repro/discprocess/flush.py": """\
                class Volume:
                    def _boxcar_timer(self, proc):
                        yield self.env.timeout(5.0)
                        yield from self._forward_cargo(proc)

                    def _forward_cargo(self, proc):
                        op = AppendAudit(volume=self.name, records=())
                        metrics = self.env.metrics
                        if metrics is not None and metrics.enabled:
                            metrics.inc("boxcar.flushes")
                        yield from self.filesystem.send(proc, "$aud", op)
                """,
        })
        assert not lint(tmp_path, select=["probe-coverage"]).findings

    def test_boxcar_policy_helpers_out_of_scope(self, tmp_path):
        # Plain functions (no yield) that just mention boxcar — policy
        # resolution, validation — are not send paths.
        write_tree(tmp_path, {
            "repro/discprocess/policy.py": """\
                def resolve_boxcar(boxcar):
                    if boxcar is False or boxcar is None:
                        return None
                    return boxcar
                """,
        })
        assert not lint(tmp_path, select=["probe-coverage"]).findings


# ----------------------------------------------------------------------
# exception-hygiene
# ----------------------------------------------------------------------
class TestExceptionHygieneRule:
    def test_bare_except(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/swallow.py": """\
                def f(work):
                    try:
                        work()
                    except:
                        return None
                """,
        })
        result = lint(tmp_path, select=["exception-hygiene"])
        assert len(result.findings) == 1
        assert "bare except" in result.findings[0].message

    def test_broad_except_needs_justification(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/broad.py": """\
                def unjustified(work):
                    try:
                        work()
                    except Exception:
                        return None


                def justified(work):
                    try:
                        work()
                    except Exception:  # noqa: BLE001 - surfaced to the caller
                        return None
                """,
        })
        result = lint(tmp_path, select=["exception-hygiene"])
        assert len(result.findings) == 1
        assert result.findings[0].line == 4

    def test_noqa_code_alone_is_not_a_justification(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/codeonly.py": """\
                def f(work):
                    try:
                        work()
                    except Exception:  # noqa: BLE001
                        return None
                """,
        })
        assert len(lint(tmp_path, select=["exception-hygiene"]).findings) == 1

    def test_recovery_path_may_not_swallow_silently(self, tmp_path):
        write_tree(tmp_path, {
            "repro/guardian/pair.py": """\
                def takeover(work):
                    try:
                        work()
                    except Exception:  # noqa: BLE001 - backup also gone
                        pass
                """,
        })
        result = lint(tmp_path, select=["exception-hygiene"])
        assert len(result.findings) == 1
        assert "swallows" in result.findings[0].message


# ----------------------------------------------------------------------
# framework: suppression, baseline, output, CLI
# ----------------------------------------------------------------------
class TestSuppression:
    def test_inline_and_line_above(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/suppressed.py": """\
                import time


                def inline():
                    return time.time()  # repro: allow[determinism]


                def above():
                    # repro: allow[determinism]
                    return time.time()


                def unsuppressed():
                    return time.time()
                """,
        })
        result = lint(tmp_path, select=["determinism"])
        assert len(result.findings) == 1
        assert result.findings[0].line == 14
        assert result.suppressed == 2

    def test_suppression_is_per_rule(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/wrongrule.py": """\
                import time


                def f():
                    return time.time()  # repro: allow[layering]
                """,
        })
        assert len(lint(tmp_path, select=["determinism"]).findings) == 1


class TestBaseline:
    def test_round_trip_absorbs_existing_findings(self, tmp_path):
        root = write_tree(tmp_path / "tree", {
            "repro/apps/legacy.py": """\
                import time


                def f():
                    return time.time()
                """,
        })
        first = lint(root, select=["determinism"])
        assert len(first.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)

        second = run_lint(
            [str(root)], select=["determinism"],
            baseline=Baseline.load(baseline_path),
        )
        assert not second.findings
        assert second.baselined == 1

    def test_new_findings_pierce_the_baseline(self, tmp_path):
        root = write_tree(tmp_path / "tree", {
            "repro/apps/legacy.py": """\
                import time


                def f():
                    return time.time()
                """,
        })
        baseline = Baseline.from_findings(
            lint(root, select=["determinism"]).findings
        )
        write_tree(root, {
            "repro/apps/fresh.py": """\
                import time


                def g():
                    return time.time()
                """,
        })
        result = run_lint([str(root)], select=["determinism"], baseline=baseline)
        assert len(result.findings) == 1
        assert result.findings[0].path.endswith("fresh.py")


class TestOutput:
    def test_json_is_deterministic_and_parseable(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/one.py": """\
                import time


                def f():
                    return time.time()
                """,
        })
        result = lint(tmp_path, select=["determinism"])
        first = findings_to_json(result)
        second = findings_to_json(lint(tmp_path, select=["determinism"]))
        assert first == second
        payload = json.loads(first)
        assert payload["version"] == 1
        assert payload["rules"] == ["determinism"]
        (finding,) = payload["findings"]
        assert finding["rule"] == "determinism"
        assert finding["severity"] == "error"
        assert finding["code"] == "return time.time()"

    def test_text_render_mentions_rule_and_location(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/one.py": """\
                import time


                def f():
                    return time.time()
                """,
        })
        text = render_findings(lint(tmp_path, select=["determinism"]))
        assert "[determinism]" in text
        assert "one.py:5:" in text

    def test_parse_error_becomes_a_finding(self, tmp_path):
        write_tree(tmp_path, {
            "repro/apps/broken.py": "def f(:\n",
        })
        result = lint(tmp_path)
        assert rules_fired(result) == ["parse"]
        assert result.findings[0].severity is Severity.ERROR


class TestCli:
    VIOLATION = {
        "repro/apps/bad.py": """\
            import time


            def f():
                return time.time()
            """,
    }

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_tree(tmp_path, {"repro/apps/ok.py": "X = 1\n"})
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        write_tree(tmp_path, self.VIOLATION)
        assert main([str(tmp_path)]) == 1
        assert "[determinism]" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule_or_severity(self, tmp_path):
        assert main(["--select", "no-such-rule", str(tmp_path)]) == 2
        assert main(["--severity", "loud", str(tmp_path)]) == 2
        assert main(["--baseline", str(tmp_path / "missing.json"),
                     str(tmp_path)]) == 2

    def test_ignore_disarms_a_rule(self, tmp_path):
        write_tree(tmp_path, self.VIOLATION)
        assert main(["--ignore", "determinism", str(tmp_path)]) == 0

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, self.VIOLATION)
        baseline = tmp_path / "baseline.json"
        assert main(["--baseline", str(baseline), "--write-baseline",
                     str(tmp_path)]) == 0
        assert baseline.exists()
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 0
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        write_tree(tmp_path, self.VIOLATION)
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in all_rules():
            assert cls.name in out


# ----------------------------------------------------------------------
# acceptance: the shipped tree lints clean
# ----------------------------------------------------------------------
class TestSourceTree:
    @pytest.mark.skipif(not SRC.is_dir(), reason="src tree not present")
    def test_src_lints_clean_at_default_severity(self):
        result = run_lint([str(SRC)])
        assert result.files_scanned > 50
        offenders = [
            f for f in result.findings if f.severity >= Severity.WARNING
        ]
        assert offenders == [], render_findings(result)
