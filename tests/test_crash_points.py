"""Crash-point sweep: kill the DISCPROCESS primary at every moment of a
mutation stream and verify exactly-once semantics against a ledger.

The checkpoint discipline's claim is binary: whatever the crash instant,
a retried operation is applied exactly once, and an acknowledged
operation is never lost.  We sweep the failure time over a fine grid
covering the whole pipeline (lock wait → apply → checkpoint → audit
forward → reply) and compare the file against a client-side model built
only from acknowledged replies.
"""

import pytest

from repro.core import Transid
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec

from conftest import StorageRig


def build_rig():
    rig = StorageRig(cpu_count=4)
    rig.add_volume("$data", cpus=(0, 1))
    rig.dictionary.define(
        FileSchema(
            name="ledger",
            organization=KEY_SEQUENCED,
            primary_key=("k",),
            partitions=(PartitionSpec("alpha", "$data"),),
        )
    )
    return rig


def run_crash_at(crash_ms, restore=True):
    """Drive 8 upsert-like ops; fail cpu0 at ``crash_ms``; return state."""
    rig = build_rig()
    client = rig.client
    env = rig.cluster.env
    acked = []

    def chaos():
        yield env.timeout(crash_ms)
        rig.cluster.node("alpha").fail_cpu(0)
        if restore:
            yield env.timeout(40)
            rig.cluster.node("alpha").restore_cpu(0)

    env.process(chaos(), name="chaos")

    def body(proc):
        yield from client.create_file(proc, rig.dictionary.schema("ledger"))
        for i in range(8):
            yield from client.insert(proc, "ledger", {"k": i, "v": 0})
            acked.append(("insert", i))
        for i in range(8):
            yield from client.update(proc, "ledger", {"k": i, "v": i * 10})
            acked.append(("update", i))
        for i in range(0, 8, 2):
            yield from client.delete(proc, "ledger", (i,))
            acked.append(("delete", i))
        rows = yield from client.scan(proc, "ledger")
        return rows

    rows = rig.run(body)
    # Model: replay acknowledged ops only.
    model = {}
    for op, key in acked:
        if op == "insert":
            model[key] = 0
        elif op == "update":
            model[key] = key * 10
        else:
            del model[key]
    got = {key[0]: record["v"] for key, record in rows}
    return got, model, rig


# The whole stream takes ~700-1100 simulated ms; sweep crash instants
# across it (including before the stream and far after).
CRASH_POINTS = [0.5, 5, 17, 33, 52, 77, 104, 151, 207, 266, 333, 421,
                512, 640, 800, 1000]


@pytest.mark.parametrize("crash_ms", CRASH_POINTS)
def test_crash_point_exactly_once(crash_ms):
    got, model, rig = run_crash_at(crash_ms)
    assert got == model, f"crash at {crash_ms}ms diverged"
    assert rig.disc_processes["$data"].takeovers <= 1


def test_crash_point_dense_sweep_around_first_mutations():
    """A denser sweep over the first insert's pipeline specifically."""
    for tenth in range(2, 40):
        crash_ms = tenth / 2.0
        got, model, _rig = run_crash_at(crash_ms)
        assert got == model, f"crash at {crash_ms}ms diverged"


def test_backup_crash_is_invisible():
    """Failing the BACKUP at any point must never disturb the stream."""
    for crash_ms in (3, 40, 200, 600):
        rig = build_rig()
        client = rig.client
        env = rig.cluster.env

        def chaos():
            yield env.timeout(crash_ms)
            rig.cluster.node("alpha").fail_cpu(1)

        env.process(chaos(), name="chaos")

        def body(proc):
            yield from client.create_file(proc, rig.dictionary.schema("ledger"))
            for i in range(6):
                yield from client.insert(proc, "ledger", {"k": i, "v": i})
            rows = yield from client.scan(proc, "ledger")
            return rows

        rows = rig.run(body)
        assert [record["v"] for _key, record in rows] == [0, 1, 2, 3, 4, 5]
        assert rig.disc_processes["$data"].takeovers == 0
