"""Unit tests for audit trails and the AUDITPROCESS."""

import pytest

from repro.core import (
    AppendAudit,
    AuditProcess,
    AuditRecord,
    AuditTrail,
    ForceAudit,
    GetAudit,
    Transid,
)
from repro.guardian import Cluster
from repro.hardware import DiscDrive, IoController, MirroredVolume
from repro.sim import Environment


T1 = Transid("alpha", 0, 1)
T2 = Transid("alpha", 0, 2)


def record(seq, transid=T1, volume="$data", op="update"):
    return AuditRecord(
        transid=transid, volume=volume, file="f", op=op,
        key=(seq,), before={"v": 0}, after={"v": seq}, seq=seq,
    )


def make_volume(env):
    drives = [DiscDrive(env, "d0"), DiscDrive(env, "d1")]
    # Controllers are irrelevant to trail storage; one dummy channel set.
    from repro.hardware import Node
    node = Node(env, "x", cpu_count=2)
    controller = IoController(env, "c0", [node.cpus[0].channel])
    return MirroredVolume("$audvol", drives, [controller])


class TestAuditTrail:
    def test_append_and_scan(self):
        env = Environment()
        trail = AuditTrail(make_volume(env), records_per_file=4)
        for i in range(10):
            trail.append(record(i))
        assert trail.total_records == 10
        scanned = trail.scan_all()
        assert [r.seq for r in scanned] == list(range(10))

    def test_rollover_creates_numbered_files(self):
        env = Environment()
        trail = AuditTrail(make_volume(env), records_per_file=3)
        for i in range(8):
            trail.append(record(i))
        # ceil(8/3) = 3 files, numbered sequence
        assert trail.file_names == ["AA000001", "AA000002", "AA000003"]

    def test_append_many_coalesces_writes(self):
        env = Environment()
        trail = AuditTrail(make_volume(env), records_per_file=512,
                           entries_per_block=32)
        writes = trail.append_many([record(i) for i in range(20)])
        # 20 records fit one data block + header (+ new file header).
        assert writes <= 4
        assert trail.total_records == 20

    def test_discover_file_names(self):
        env = Environment()
        volume = make_volume(env)
        trail = AuditTrail(volume, records_per_file=2)
        for i in range(5):
            trail.append(record(i))
        names = AuditTrail.discover_file_names(volume, "AA")
        assert names == trail.file_names

    def test_attach_existing_resumes_counting(self):
        env = Environment()
        volume = make_volume(env)
        trail = AuditTrail(volume, records_per_file=4)
        for i in range(6):
            trail.append(record(i))
        fresh = AuditTrail(volume, records_per_file=4)
        fresh.attach_existing(AuditTrail.discover_file_names(volume, "AA"))
        assert fresh.total_records == 6
        fresh.append(record(6))
        assert fresh.scan_all()[-1].seq == 6

    def test_contents_survive_on_mirror(self):
        env = Environment()
        volume = make_volume(env)
        trail = AuditTrail(volume)
        trail.append(record(0))
        volume.drives[0].fail()
        assert [r.seq for r in trail.scan_all()] == [0]


class AuditRig:
    def __init__(self):
        self.cluster = Cluster(seed=3)
        self.node_os = self.cluster.add_node("alpha", cpu_count=4)
        self.cluster.connect_all()
        audit_volume = self.node_os.node.add_volume("$audvol", 2, 3)
        self.trail = AuditTrail(audit_volume)
        self.audit = AuditProcess(self.node_os, "$aud", 2, 3, self.trail,
                                  self.cluster.tracer)

    def request(self, payload, cpu=0):
        def body(proc):
            reply = yield from self.cluster.fs("alpha").send(proc, "$aud", payload)
            return reply

        proc = self.node_os.spawn("$req", cpu, body, register=False)
        return self.cluster.run(proc.sim_process)


class TestAuditProcess:
    def test_append_buffers_until_force(self):
        rig = AuditRig()
        reply = rig.request(AppendAudit("$data", (record(0), record(1))))
        assert reply == {"ok": True, "accepted": 2}
        assert rig.trail.total_records == 0  # buffered, not durable
        reply = rig.request(ForceAudit(T1))
        assert reply["ok"]
        assert rig.trail.total_records == 2

    def test_duplicate_sequences_suppressed(self):
        rig = AuditRig()
        rig.request(AppendAudit("$data", (record(0), record(1))))
        reply = rig.request(AppendAudit("$data", (record(0), record(1), record(2))))
        assert reply["accepted"] == 1  # only seq 2 is new

    def test_sequences_independent_per_volume(self):
        rig = AuditRig()
        rig.request(AppendAudit("$data", (record(0),)))
        reply = rig.request(AppendAudit("$other", (record(0, volume="$other"),)))
        assert reply["accepted"] == 1

    def test_get_audit_returns_transaction_records(self):
        rig = AuditRig()
        rig.request(AppendAudit("$data", (record(0, T1), record(1, T2), record(2, T1))))
        reply = rig.request(GetAudit(T1))
        assert [r.seq for r in reply["records"]] == [0, 2]

    def test_force_is_idempotent_and_empty_force_ok(self):
        rig = AuditRig()
        rig.request(AppendAudit("$data", (record(0),)))
        rig.request(ForceAudit(T1))
        reply = rig.request(ForceAudit(T1))
        assert reply["ok"]
        assert rig.trail.total_records == 1  # nothing written twice

    def test_takeover_preserves_buffer(self):
        rig = AuditRig()
        rig.request(AppendAudit("$data", (record(0), record(1))))
        rig.cluster.node("alpha").fail_cpu(2)  # audit primary
        reply = rig.request(ForceAudit(T1))
        assert reply["ok"]
        assert rig.trail.total_records == 2
        assert rig.audit.takeovers == 1

    def test_forget_transaction_clears_index(self):
        rig = AuditRig()
        rig.request(AppendAudit("$data", (record(0, T1),)))
        rig.audit.forget_transaction(T1)
        reply = rig.request(GetAudit(T1))
        assert reply["records"] == ()

    def test_cold_restart_rebuilds_from_trail(self):
        rig = AuditRig()
        rig.request(AppendAudit("$data", (record(0), record(1))))
        rig.request(ForceAudit(T1))
        rig.cluster.node("alpha").total_failure()
        rig.cluster.node("alpha").restore_all_cpus()
        rig.audit.cold_restart(2, 3)
        reply = rig.request(GetAudit(T1))
        assert [r.seq for r in reply["records"]] == [0, 1]
        # Duplicate suppression also survives: re-sent records rejected.
        reply = rig.request(AppendAudit("$data", (record(0), record(1))))
        assert reply["accepted"] == 0

    def test_unknown_request_rejected(self):
        rig = AuditRig()
        reply = rig.request({"op": "nonsense"})
        assert reply["ok"] is False
