"""The data-definition language front end to the dictionary."""

import pytest

from repro.discprocess import (
    DataDictionary,
    ENTRY_SEQUENCED,
    KEY_SEQUENCED,
    RELATIVE,
    RecordError,
)
from repro.discprocess.ddl import DdlError, install_ddl, parse_ddl


GOOD = """
-- the account file, partitioned across two nodes
DEFINE FILE account
    ORGANIZATION key-sequenced
    KEY (account_id)
    ALTERNATE KEY (branch_id)
    AUDITED
    PARTITION ON alpha.$data
    PARTITION ON beta.$data FROM (100)
    SECURE READ "alpha.*", "beta.*" WRITE "alpha.$bank-*";

DEFINE FILE history
    ORGANIZATION entry-sequenced
    AUDITED
    PARTITION ON alpha.$data;

DEFINE FILE slots
    ORGANIZATION relative
    PARTITION ON alpha.$data;
"""


class TestParse:
    def test_full_example(self):
        schemas = parse_ddl(GOOD)
        assert [s.name for s in schemas] == ["account", "history", "slots"]
        account = schemas[0]
        assert account.organization == KEY_SEQUENCED
        assert account.primary_key == ("account_id",)
        assert account.alternate_keys == ("branch_id",)
        assert account.audited
        assert len(account.partitions) == 2
        assert account.partitions[1].node == "beta"
        assert account.partitions[1].low_key == (100,)
        assert account.security.write == ("alpha.$bank-*",)
        assert account.security.read == ("alpha.*", "beta.*")
        assert schemas[1].organization == ENTRY_SEQUENCED
        assert schemas[2].organization == RELATIVE

    def test_compound_and_string_low_keys(self):
        schemas = parse_ddl("""
            DEFINE FILE po_detail
                ORGANIZATION key-sequenced
                KEY (po_id, line)
                PARTITION ON a.$d1
                PARTITION ON b.$d2 FROM ("P-500", 0);
        """)
        assert schemas[0].primary_key == ("po_id", "line")
        assert schemas[0].partitions[1].low_key == ("P-500", 0)

    def test_missing_organization(self):
        with pytest.raises(DdlError):
            parse_ddl("DEFINE FILE x KEY (k) PARTITION ON a.$d;")

    def test_key_sequenced_without_key_fails_schema_validation(self):
        with pytest.raises(RecordError):
            parse_ddl("""
                DEFINE FILE x
                    ORGANIZATION key-sequenced
                    PARTITION ON a.$d;
            """)

    def test_unknown_clause(self):
        with pytest.raises(DdlError):
            parse_ddl("DEFINE FILE x ORGANIZATION relative COMPRESS;")

    def test_bad_partition_location(self):
        with pytest.raises(DdlError):
            parse_ddl("DEFINE FILE x ORGANIZATION relative PARTITION ON onlyvolume;")

    def test_missing_semicolon(self):
        with pytest.raises(DdlError):
            parse_ddl("DEFINE FILE x ORGANIZATION relative PARTITION ON a.$d")

    def test_unknown_organization(self):
        with pytest.raises(DdlError):
            parse_ddl("DEFINE FILE x ORGANIZATION heap PARTITION ON a.$d;")

    def test_comments_stripped(self):
        schemas = parse_ddl("""
            -- leading comment
            DEFINE FILE x -- trailing comment
                ORGANIZATION relative
                PARTITION ON a.$d;  -- done
        """)
        assert schemas[0].name == "x"


class TestInstall:
    def test_install_defines_in_dictionary(self):
        dictionary = DataDictionary()
        install_ddl(GOOD, dictionary)
        assert dictionary.files() == ["account", "history", "slots"]
        assert dictionary.schema("account").partitioned

    def test_duplicate_rejected(self):
        dictionary = DataDictionary()
        install_ddl(GOOD, dictionary)
        with pytest.raises(ValueError):
            install_ddl(GOOD, dictionary)


class TestEndToEnd:
    def test_ddl_defined_file_is_usable(self):
        """DDL -> dictionary -> live system -> transactions."""
        from repro.encompass import SystemBuilder

        builder = SystemBuilder(seed=96)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data", cpus=(0, 1))
        install_ddl("""
            DEFINE FILE parts
                ORGANIZATION key-sequenced
                KEY (part_id)
                ALTERNATE KEY (color)
                AUDITED
                PARTITION ON alpha.$data;
        """, builder.dictionary)
        system = builder.build()
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]

        def body(proc):
            transid = yield from tmf.begin(proc)
            yield from client.insert(
                proc, "parts", {"part_id": 1, "color": "red"}, transid=transid
            )
            yield from client.insert(
                proc, "parts", {"part_id": 2, "color": "red"}, transid=transid
            )
            yield from tmf.end(proc, transid)
            reds = yield from client.read_via_index(proc, "parts", "color", "red")
            return sorted(r["part_id"] for r in reds)

        proc = system.spawn("alpha", "$t", body, cpu=0)
        assert system.cluster.run(proc.sim_process) == [1, 2]
