"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Channel,
    ChannelClosed,
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    ProcessKilled,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5)
        assert env.now == 5
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 7.5
    assert env.now == 7.5


def test_timeouts_fire_in_order():
    env = Environment()
    fired = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        fired.append(tag)

    env.process(waiter(3, "c"))
    env.process(waiter(1, "a"))
    env.process(waiter(2, "b"))
    env.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    fired = []

    def waiter(tag):
        yield env.timeout(1)
        fired.append(tag)

    for tag in range(5):
        env.process(waiter(tag))
    env.run()
    assert fired == [0, 1, 2, 3, 4]


def test_process_return_value():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 42

    def outer():
        value = yield env.process(inner())
        return value + 1

    assert env.run(env.process(outer())) == 43


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter():
        try:
            yield env.process(failing())
        except ValueError as exc:
            return str(exc)

    assert env.run(env.process(waiter())) == "boom"


def test_unhandled_process_failure_raises_from_run():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise ValueError("unseen")

    env.process(failing())
    with pytest.raises(ValueError):
        env.run()


def test_run_until_time():
    env = Environment()
    log = []

    def ticker():
        while True:
            yield env.timeout(10)
            log.append(env.now)

    env.process(ticker())
    env.run(until=35)
    assert log == [10, 20, 30]
    assert env.now == 35


def test_run_until_past_raises():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_yield_already_triggered_event_resumes():
    env = Environment()
    ev = env.event()
    ev.succeed("early")

    def proc():
        value = yield ev
        return value

    # Let the event be processed before the process yields it.
    env.run(until=0)
    assert env.run(env.process(proc())) == "early"


def test_interrupt_wakes_process():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            caught.append((env.now, intr.cause))

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(5)
        p.interrupt("wake-up")

    env.process(interrupter())
    env.run()
    assert caught == [(5, "wake-up")]


def test_kill_terminates_silently():
    env = Environment()
    progressed = []

    def victim():
        yield env.timeout(10)
        progressed.append("too far")

    p = env.process(victim())

    def killer():
        yield env.timeout(1)
        p.kill("crash")

    env.process(killer())
    env.run()
    assert progressed == []
    assert not p.is_alive
    assert isinstance(p.value, ProcessKilled)


def test_waiting_on_killed_process_raises_processkilled():
    env = Environment()

    def victim():
        yield env.timeout(10)

    p = env.process(victim())

    def watcher():
        try:
            yield p
        except ProcessKilled as exc:
            return ("killed", exc.reason)

    w = env.process(watcher())

    def killer():
        yield env.timeout(1)
        p.kill("cpu down")

    env.process(killer())
    assert env.run(w) == ("killed", "cpu down")


def test_any_of_first_wins():
    env = Environment()

    def proc():
        fast = env.timeout(1, value="fast")
        slow = env.timeout(10, value="slow")
        result = yield env.any_of([fast, slow])
        return (env.now, list(result.values()))

    assert env.run(env.process(proc())) == (1, ["fast"])


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        a = env.timeout(1, value="a")
        b = env.timeout(5, value="b")
        result = yield env.all_of([a, b])
        return (env.now, sorted(result.values()))

    assert env.run(env.process(proc())) == (5, ["a", "b"])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    assert env.run(env.process(proc())) == 0


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(SimulationError):
        env.run(p)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


class TestChannel:
    def test_put_then_get(self):
        env = Environment()
        ch = Channel(env)

        def proc():
            ch.put("x")
            value = yield ch.get()
            return value

        assert env.run(env.process(proc())) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        ch = Channel(env)

        def getter():
            value = yield ch.get()
            return (env.now, value)

        def putter():
            yield env.timeout(7)
            ch.put("late")

        g = env.process(getter())
        env.process(putter())
        assert env.run(g) == (7, "late")

    def test_fifo_ordering(self):
        env = Environment()
        ch = Channel(env)
        got = []

        def getter(tag):
            value = yield ch.get()
            got.append((tag, value))

        env.process(getter("g1"))
        env.process(getter("g2"))

        def putter():
            yield env.timeout(1)
            ch.put("first")
            ch.put("second")

        env.process(putter())
        env.run()
        assert got == [("g1", "first"), ("g2", "second")]

    def test_close_fails_getters(self):
        env = Environment()
        ch = Channel(env)

        def getter():
            try:
                yield ch.get()
            except ChannelClosed:
                return "closed"

        g = env.process(getter())

        def closer():
            yield env.timeout(1)
            ch.close("owner died")

        env.process(closer())
        assert env.run(g) == "closed"
        assert ch.put("ignored") is False

    def test_cancelled_getter_skipped(self):
        env = Environment()
        ch = Channel(env)
        got = []

        def impatient():
            get_ev = ch.get()
            result = yield env.any_of([get_ev, env.timeout(1, value="timeout")])
            if get_ev in result:
                got.append(("impatient", result[get_ev]))
            else:
                ch.cancel(get_ev)
                got.append(("impatient", "gave up"))

        def patient():
            value = yield ch.get()
            got.append(("patient", value))

        env.process(impatient())
        env.process(patient())

        def putter():
            yield env.timeout(5)
            ch.put("item")

        env.process(putter())
        env.run()
        assert ("impatient", "gave up") in got
        assert ("patient", "item") in got
