"""The FASTPATH bench harness: runner, report schema, and comparator.

The harness's job is to make the regression gate trustworthy: the
runner must produce deterministic counters, the report must round-trip
through JSON unchanged (it is diffed against a checked-in baseline),
and the comparator must land on exactly one of its four verdicts —
clean, counter-drift, counter-improvement, wall-clock-soft-fail — for
the right reasons.
"""

import copy
import json

import pytest

from repro.bench import (
    CLEAN,
    COUNTER_DRIFT,
    COUNTER_IMPROVEMENT,
    EXPERIMENTS,
    SCHEMA,
    WALL_CLOCK_SOFT_FAIL,
    compare_reports,
    run_experiment,
    run_suite,
)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def test_registry_covers_the_paper_suite():
    names = set(EXPERIMENTS)
    assert {f"e{i}" for i in range(1, 12)} == {n.split("_")[0] for n in names
                                              if n.startswith("e")}
    assert {f"f{i}" for i in range(1, 5)} == {n.split("_")[0] for n in names
                                             if n.startswith("f")}


def test_smoke_run_one_experiment_shape():
    section = run_experiment("e10_process_pairs", scale="smoke", repeats=2)
    counters = section["counters"]
    assert counters and all(isinstance(v, int) for v in counters.values()), (
        "deterministic counters must be ints (exact-compared)"
    )
    assert counters["takeovers"] == 1, "the mid-run CPU failure forces takeover"
    assert counters["checkpoints"] > 0
    assert section["wall_ms"]["repeats"] == 2
    assert section["wall_ms"]["median"] >= 0.0


def test_repeats_with_diverging_counters_raise(monkeypatch):
    from repro.bench import experiments as exp

    calls = iter([{"counters": {"x": 1}, "info": {}},
                  {"counters": {"x": 2}, "info": {}}])
    monkeypatch.setitem(exp.EXPERIMENTS, "e7_storage", lambda scale: next(calls))
    with pytest.raises(AssertionError, match="differ between repeats"):
        run_experiment("e7_storage", scale="smoke", repeats=2)


def test_run_suite_subset_and_schema(tmp_path):
    report = run_suite(scale="smoke", only=["e7_storage", "f1_hardware_paths"])
    assert report["schema"] == SCHEMA
    assert report["mode"] == "smoke"
    assert set(report["experiments"]) == {"e7_storage", "f1_hardware_paths"}
    # The report is diffed as JSON: it must round-trip unchanged.
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True))
    assert json.loads(path.read_text()) == report


def test_run_suite_rejects_unknown_names():
    with pytest.raises(KeyError, match="e99"):
        run_suite(scale="smoke", only=["e99_nonsense"])


# ----------------------------------------------------------------------
# Comparator: the three verdicts
# ----------------------------------------------------------------------
def _report(wall=100.0, **counters):
    counters = counters or {"events": 1000, "commits": 10}
    return {
        "schema": SCHEMA,
        "mode": "smoke",
        "experiments": {
            "e_example": {
                "counters": dict(counters),
                "info": {},
                "wall_ms": {"median": wall, "repeats": 1},
            }
        },
    }


def test_verdict_clean():
    baseline = _report()
    comparison = compare_reports(baseline, copy.deepcopy(baseline))
    assert comparison.verdict == CLEAN
    assert comparison.ok
    assert not comparison.errors and not comparison.warnings


def test_verdict_counter_drift_is_hard():
    baseline = _report()
    current = _report()
    current["experiments"]["e_example"]["counters"]["commits"] = 11
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == COUNTER_DRIFT
    assert not comparison.ok
    assert any("baseline 10 != run 11" in e for e in comparison.errors)


def test_verdict_wall_clock_soft_fail():
    baseline = _report(wall=100.0)
    current = _report(wall=150.0)  # +50% > the 40% threshold
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == WALL_CLOCK_SOFT_FAIL
    assert comparison.ok, "wall-clock regressions must not fail the gate"
    assert comparison.warnings and not comparison.errors


def test_wall_clock_within_threshold_is_clean():
    comparison = compare_reports(_report(wall=100.0), _report(wall=135.0))
    assert comparison.verdict == CLEAN


def test_tiny_experiments_skip_wall_comparison():
    # Sub-50ms medians are interpreter noise; a 3x "regression" there
    # must not warn.
    comparison = compare_reports(_report(wall=5.0), _report(wall=15.0))
    assert comparison.verdict == CLEAN


def test_counter_drift_beats_soft_fail():
    baseline = _report(wall=100.0)
    current = _report(wall=200.0)
    # events going *up* is a cost regression: plain drift.
    current["experiments"]["e_example"]["counters"]["events"] = 1001
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == COUNTER_DRIFT
    assert comparison.warnings, "the wall regression is still reported"


def test_cost_counter_drop_is_an_improvement_not_drift():
    baseline = _report()
    current = _report()
    current["experiments"]["e_example"]["counters"]["events"] = 900
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == COUNTER_IMPROVEMENT
    assert not comparison.ok, "the baseline still has to be re-recorded"
    assert not comparison.errors
    assert any("cost counter improved" in line
               for line in comparison.improvements)


def test_improvement_plus_real_drift_is_drift():
    baseline = _report()
    current = _report()
    counters = current["experiments"]["e_example"]["counters"]
    counters["events"] = 900    # cost improved ...
    counters["commits"] = 11    # ... but outcomes changed too
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == COUNTER_DRIFT
    assert comparison.improvements, "the improvement is still reported"
    assert any("commits" in e for e in comparison.errors)


def test_outcome_counter_drop_is_still_drift():
    # commits is an outcome, not a cost: fewer commits is never "better".
    baseline = _report()
    current = _report()
    current["experiments"]["e_example"]["counters"]["commits"] = 9
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == COUNTER_DRIFT
    assert not comparison.improvements


def test_missing_and_extra_experiments_are_drift():
    baseline = _report()
    current = copy.deepcopy(baseline)
    current["experiments"]["e_new"] = current["experiments"].pop("e_example")
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == COUNTER_DRIFT
    assert any("missing from run" in e for e in comparison.errors)
    assert any("not in baseline" in e for e in comparison.errors)


def test_mode_mismatch_is_drift():
    baseline = _report()
    current = copy.deepcopy(baseline)
    current["mode"] = "full"
    comparison = compare_reports(baseline, current)
    assert comparison.verdict == COUNTER_DRIFT


# ----------------------------------------------------------------------
# The committed baseline matches a fresh run (the actual CI gate).
# ----------------------------------------------------------------------
def test_committed_baseline_matches_fresh_run(repo_root):
    baseline_path = repo_root / "benchmarks" / "BENCH_baseline.json"
    baseline = json.loads(baseline_path.read_text())
    assert baseline["schema"] == SCHEMA
    # One representative experiment end to end (the full suite runs in
    # the bench-smoke CI job; here we keep the tier-1 suite fast).
    name = "e10_process_pairs"
    fresh = run_experiment(name, scale="smoke")
    assert fresh["counters"] == baseline["experiments"][name]["counters"], (
        "simulated history drifted from the committed baseline — if the "
        "change is intentional, re-record with "
        "`python -m repro.bench --smoke --update-baseline`"
    )


@pytest.fixture
def repo_root():
    from pathlib import Path

    return Path(__file__).resolve().parent.parent
