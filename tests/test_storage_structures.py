"""Unit and property tests for the structured-file layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discprocess.blocks import MemoryBlockStore
from repro.discprocess.cache import BlockCache, CachedVolumeStore
from repro.discprocess.compress import (
    compress_keys,
    compress_records,
    decompress_keys,
    decompress_records,
    encoded_key_size,
    plain_key_size,
)
from repro.discprocess.entryseq import EntrySequencedFile
from repro.discprocess.index import StructuredFile
from repro.discprocess.keyseq import DuplicateKey, KeyNotFound, KeySequencedFile
from repro.discprocess.records import (
    ENTRY_SEQUENCED,
    KEY_SEQUENCED,
    RELATIVE,
    FileSchema,
    PartitionSpec,
    RecordError,
)
from repro.discprocess.relative import RelativeFile, SlotError


def _loc():
    return (PartitionSpec(node="alpha", volume="$data"),)


class TestKeySequenced:
    def make(self, **kwargs):
        store = MemoryBlockStore()
        return KeySequencedFile(store, "f", create=True, **kwargs), store

    def test_insert_read(self):
        tree, _ = self.make()
        tree.insert(("a",), {"v": 1})
        assert tree.read(("a",)) == {"v": 1}
        assert tree.read(("b",)) is None
        assert tree.record_count == 1

    def test_duplicate_insert_rejected(self):
        tree, _ = self.make()
        tree.insert(("a",), 1)
        with pytest.raises(DuplicateKey):
            tree.insert(("a",), 2)
        assert tree.record_count == 1

    def test_update_and_delete(self):
        tree, _ = self.make()
        tree.insert(("k",), "v1")
        assert tree.update(("k",), "v2") == "v1"
        assert tree.read(("k",)) == "v2"
        assert tree.delete(("k",)) == "v2"
        assert tree.read(("k",)) is None
        assert tree.record_count == 0

    def test_update_missing_raises(self):
        tree, _ = self.make()
        with pytest.raises(KeyNotFound):
            tree.update(("nope",), 1)

    def test_delete_missing_raises(self):
        tree, _ = self.make()
        with pytest.raises(KeyNotFound):
            tree.delete(("nope",), )

    def test_many_inserts_split_blocks(self):
        tree, _ = self.make(leaf_capacity=4, fanout=4)
        n = 500
        for i in range(n):
            tree.insert((i,), i * 10)
        assert tree.record_count == n
        assert tree.depth() > 2
        tree.check_invariants()
        for i in range(n):
            assert tree.read((i,)) == i * 10

    def test_reverse_and_shuffled_inserts(self):
        import random
        rng = random.Random(7)
        keys = list(range(300))
        rng.shuffle(keys)
        tree, _ = self.make(leaf_capacity=4, fanout=4)
        for k in keys:
            tree.insert((k,), -k)
        tree.check_invariants()
        assert tree.keys() == [(k,) for k in range(300)]

    def test_scan_range(self):
        tree, _ = self.make(leaf_capacity=4, fanout=4)
        for i in range(100):
            tree.insert((i,), i)
        rows = tree.scan(low=(10,), high=(20,))
        assert [k for k, _ in rows] == [(i,) for i in range(10, 21)]

    def test_scan_limit(self):
        tree, _ = self.make()
        for i in range(50):
            tree.insert((i,), i)
        assert len(tree.scan(limit=7)) == 7

    def test_scan_open_ends(self):
        tree, _ = self.make(leaf_capacity=4, fanout=4)
        for i in range(40):
            tree.insert((i,), i)
        assert len(tree.scan(low=(35,))) == 5
        assert len(tree.scan(high=(4,))) == 5

    def test_upsert(self):
        tree, _ = self.make()
        assert tree.upsert(("a",), 1) is None
        assert tree.upsert(("a",), 2) == 1
        assert tree.read(("a",)) == 2

    def test_string_keys_sorted(self):
        tree, _ = self.make(leaf_capacity=4, fanout=4)
        words = ["pear", "apple", "fig", "banana", "cherry", "date"]
        for w in words:
            tree.insert((w,), w.upper())
        assert tree.keys() == [(w,) for w in sorted(words)]

    def test_delete_heavy_then_invariants(self):
        tree, _ = self.make(leaf_capacity=4, fanout=4)
        for i in range(200):
            tree.insert((i,), i)
        for i in range(0, 200, 2):
            tree.delete((i,))
        tree.check_invariants()
        assert tree.keys() == [(i,) for i in range(1, 200, 2)]

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "update", "read"]),
                st.integers(min_value=0, max_value=60),
            ),
            max_size=200,
        )
    )
    def test_property_matches_dict_model(self, ops):
        """The B-tree behaves exactly like a sorted dict."""
        tree, _ = self.make(leaf_capacity=4, fanout=4)
        model = {}
        for op, key_int in ops:
            key = (key_int,)
            if op == "insert":
                if key in model:
                    with pytest.raises(DuplicateKey):
                        tree.insert(key, key_int)
                else:
                    tree.insert(key, key_int)
                    model[key] = key_int
            elif op == "delete":
                if key in model:
                    assert tree.delete(key) == model.pop(key)
                else:
                    with pytest.raises(KeyNotFound):
                        tree.delete(key)
            elif op == "update":
                if key in model:
                    tree.update(key, key_int + 1)
                    model[key] = key_int + 1
                else:
                    with pytest.raises(KeyNotFound):
                        tree.update(key, 0)
            else:
                assert tree.read(key) == model.get(key)
        tree.check_invariants()
        assert tree.scan() == sorted(model.items())


class TestRelative:
    def make(self):
        return RelativeFile(MemoryBlockStore(), "r", slots_per_block=4, create=True)

    def test_write_read(self):
        f = self.make()
        f.write(3, "x")
        assert f.read(3) == "x"
        assert f.read(2) is None
        assert f.record_count == 1
        assert f.next_record_number == 4

    def test_append_sequences(self):
        f = self.make()
        assert [f.append(c) for c in "abc"] == [0, 1, 2]
        assert f.scan() == [(0, "a"), (1, "b"), (2, "c")]

    def test_delete(self):
        f = self.make()
        f.append("a")
        assert f.delete(0) == "a"
        assert f.read(0) is None
        with pytest.raises(SlotError):
            f.delete(0)

    def test_negative_number_rejected(self):
        f = self.make()
        with pytest.raises(SlotError):
            f.read(-1)

    def test_sparse_blocks(self):
        f = self.make()
        f.write(100, "far")
        assert f.read(100) == "far"
        assert f.record_count == 1
        assert f.scan() == [(100, "far")]

    def test_overwrite_keeps_count(self):
        f = self.make()
        f.write(0, "a")
        f.write(0, "b")
        assert f.record_count == 1


class TestEntrySequenced:
    def make(self):
        return EntrySequencedFile(MemoryBlockStore(), "e", entries_per_block=4, create=True)

    def test_append_read(self):
        f = self.make()
        esns = [f.append({"n": i}) for i in range(10)]
        assert esns == list(range(10))
        assert f.read(5) == {"n": 5}
        assert f.read(99) is None

    def test_scan_from(self):
        f = self.make()
        for i in range(10):
            f.append(i)
        assert f.scan(start_esn=7) == [(7, 7), (8, 8), (9, 9)]

    def test_record_count(self):
        f = self.make()
        for i in range(6):
            f.append(i)
        assert f.record_count == 6


class TestStructuredFile:
    def make(self, alternate=("city",)):
        schema = FileSchema(
            name="people",
            organization=KEY_SEQUENCED,
            primary_key=("pid",),
            alternate_keys=alternate,
            partitions=_loc(),
        )
        return StructuredFile(MemoryBlockStore(), schema, create=True)

    def test_insert_and_index_lookup(self):
        f = self.make()
        f.insert({"pid": 1, "city": "sf", "name": "ann"})
        f.insert({"pid": 2, "city": "ny", "name": "bob"})
        f.insert({"pid": 3, "city": "sf", "name": "cid"})
        found = f.read_via_index("city", "sf")
        assert sorted(r["pid"] for r in found) == [1, 3]

    def test_update_maintains_index(self):
        f = self.make()
        f.insert({"pid": 1, "city": "sf"})
        f.update({"pid": 1, "city": "la"})
        assert f.read_via_index("city", "sf") == []
        assert [r["pid"] for r in f.read_via_index("city", "la")] == [1]

    def test_update_same_index_value_no_churn(self):
        f = self.make()
        f.insert({"pid": 1, "city": "sf", "age": 1})
        f.update({"pid": 1, "city": "sf", "age": 2})
        assert [r["age"] for r in f.read_via_index("city", "sf")] == [2]

    def test_delete_maintains_index(self):
        f = self.make()
        f.insert({"pid": 1, "city": "sf"})
        f.delete((1,))
        assert f.read_via_index("city", "sf") == []

    def test_missing_key_field_rejected(self):
        f = self.make()
        with pytest.raises(RecordError):
            f.insert({"city": "sf"})

    def test_missing_alternate_field_rejected(self):
        f = self.make()
        with pytest.raises(RecordError):
            f.insert({"pid": 9})

    def test_wrong_organization_op_rejected(self):
        f = self.make()
        with pytest.raises(TypeError):
            f.append_entry({"x": 1})

    def test_relative_structured(self):
        schema = FileSchema(
            name="slots", organization=RELATIVE, partitions=_loc()
        )
        f = StructuredFile(MemoryBlockStore(), schema, create=True)
        f.append_slot({"v": 1})
        assert f.read_slot(0) == {"v": 1}

    def test_entry_structured(self):
        schema = FileSchema(
            name="hist", organization=ENTRY_SEQUENCED, partitions=_loc()
        )
        f = StructuredFile(MemoryBlockStore(), schema, create=True)
        assert f.append_entry({"v": 1}) == 0
        assert f.read_entry(0) == {"v": 1}

    @settings(max_examples=25, deadline=None)
    @given(
        records=st.lists(
            st.tuples(st.integers(0, 50), st.sampled_from(["sf", "ny", "la"])),
            max_size=60,
        )
    )
    def test_property_index_consistency(self, records):
        """After arbitrary upserts, every index entry matches the base."""
        f = self.make()
        model = {}
        for pid, city in records:
            record = {"pid": pid, "city": city}
            if pid in model:
                f.update(record)
            else:
                f.insert(record)
            model[pid] = city
        for city in ["sf", "ny", "la"]:
            expected = sorted(pid for pid, c in model.items() if c == city)
            got = sorted(r["pid"] for r in f.read_via_index("city", city))
            assert got == expected


class TestSchemas:
    def test_key_sequenced_needs_primary_key(self):
        with pytest.raises(RecordError):
            FileSchema(name="x", organization=KEY_SEQUENCED, partitions=_loc())

    def test_bad_organization(self):
        with pytest.raises(RecordError):
            FileSchema(name="x", organization="heap", partitions=_loc())

    def test_alternate_requires_key_sequenced(self):
        with pytest.raises(RecordError):
            FileSchema(
                name="x",
                organization=RELATIVE,
                alternate_keys=("a",),
                partitions=_loc(),
            )

    def test_partition_routing(self):
        schema = FileSchema(
            name="x",
            organization=KEY_SEQUENCED,
            primary_key=("k",),
            partitions=(
                PartitionSpec("alpha", "$d1"),
                PartitionSpec("beta", "$d2", low_key=("m",)),
            ),
        )
        assert schema.partition_for(("a",)).node == "alpha"
        assert schema.partition_for(("m",)).node == "beta"
        assert schema.partition_for(("z",)).node == "beta"
        assert schema.partitioned

    def test_partition_low_keys_must_ascend(self):
        with pytest.raises(RecordError):
            FileSchema(
                name="x",
                organization=KEY_SEQUENCED,
                primary_key=("k",),
                partitions=(
                    PartitionSpec("a", "$1"),
                    PartitionSpec("b", "$2", low_key=("m",)),
                    PartitionSpec("c", "$3", low_key=("b",)),
                ),
            )

    def test_first_partition_low_key_must_be_none(self):
        with pytest.raises(RecordError):
            FileSchema(
                name="x",
                organization=KEY_SEQUENCED,
                primary_key=("k",),
                partitions=(PartitionSpec("a", "$1", low_key=("a",)),),
            )


class TestCompression:
    def test_key_roundtrip(self):
        keys = [("acct-0001",), ("acct-0002",), ("acct-0103",)]
        encoded = compress_keys(keys)
        assert decompress_keys(encoded) == ["acct-0001", "acct-0002", "acct-0103"]

    def test_sorted_keys_compress_well(self):
        keys = [(f"customer-{i:08d}",) for i in range(100)]
        encoded = compress_keys(keys)
        assert encoded_key_size(encoded) < plain_key_size(keys) / 2

    def test_record_roundtrip(self):
        records = [
            {"city": "sf", "status": "open", "n": i} for i in range(5)
        ] + [{"city": "ny", "status": "open", "n": 99}]
        model, deltas = compress_records(records)
        assert decompress_records(model, deltas) == records

    def test_record_heterogeneous_fields_roundtrip(self):
        records = [{"a": 1, "b": 2}, {"a": 1}, {"b": 2, "c": 3}]
        model, deltas = compress_records(records)
        assert decompress_records(model, deltas) == records

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.text(max_size=8), st.integers(0, 99)), max_size=30
        )
    )
    def test_property_key_roundtrip(self, raw):
        keys = sorted({(t, i) for t, i in raw})
        encoded = compress_keys(keys)
        decoded = decompress_keys(encoded)
        assert decoded == ["\x00".join([t, str(i)]) for t, i in keys]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(0, 3),
                max_size=4,
            ),
            max_size=20,
        )
    )
    def test_property_record_roundtrip(self, records):
        model, deltas = compress_records(records)
        assert decompress_records(model, deltas) == records


class TestCache:
    def test_lru_eviction_order(self):
        cache = BlockCache(capacity=2)
        cache.install(("f", 1), "a", dirty=False)
        cache.install(("f", 2), "b", dirty=False)
        cache.lookup(("f", 1))  # touch 1; 2 becomes LRU
        evicted = cache.install(("f", 3), "c", dirty=False)
        assert evicted == []  # clean blocks evict silently
        assert ("f", 2) not in cache
        assert ("f", 1) in cache

    def test_dirty_eviction_returns_writeback(self):
        cache = BlockCache(capacity=1)
        cache.install(("f", 1), "a", dirty=True)
        evicted = cache.install(("f", 2), "b", dirty=False)
        assert evicted == [(("f", 1), "a")]
        assert cache.stats.dirty_writebacks == 1

    def test_hit_ratio(self):
        cache = BlockCache(capacity=4)
        cache.install(("f", 1), "a", dirty=False)
        cache.lookup(("f", 1))
        cache.lookup(("f", 2))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_cached_store_reads_through(self):
        physical = {}
        cache = BlockCache(capacity=2)
        store = CachedVolumeStore(
            cache,
            physical_read=lambda key: physical.get(key),
            physical_write=lambda key, block: physical.__setitem__(key, block),
            physical_delete=lambda key: physical.pop(key, None),
            list_blocks=lambda f: [k for k in physical if k[0] == f],
        )
        physical[("f", 7)] = "ondisc"
        assert store.get("f", 7) == "ondisc"
        assert store.counters.reads == 1
        assert store.get("f", 7) == "ondisc"  # now cached
        assert store.counters.reads == 1

    def test_cached_store_write_back_on_flush(self):
        physical = {}
        cache = BlockCache(capacity=8)
        store = CachedVolumeStore(
            cache,
            physical_read=lambda key: physical.get(key),
            physical_write=lambda key, block: physical.__setitem__(key, block),
            physical_delete=lambda key: physical.pop(key, None),
            list_blocks=lambda f: [k for k in physical if k[0] == f],
        )
        store.put("f", 1, "dirty")
        assert ("f", 1) not in physical  # write-back, not write-through
        assert store.flush() == 1
        assert physical[("f", 1)] == "dirty"

    def test_btree_runs_over_cached_store(self):
        physical = {}
        cache = BlockCache(capacity=4)
        store = CachedVolumeStore(
            cache,
            physical_read=lambda key: physical.get(key),
            physical_write=lambda key, block: physical.__setitem__(key, block),
            physical_delete=lambda key: physical.pop(key, None),
            list_blocks=lambda f: [k for k in physical if k[0] == f],
        )
        tree = KeySequencedFile(store, "t", leaf_capacity=4, fanout=4, create=True)
        for i in range(100):
            tree.insert((i,), i)
        store.flush()
        # Wipe the cache (CPU failure) — everything must still be on disc.
        cache.clear()
        for i in range(100):
            assert tree.read((i,)) == i
        tree.check_invariants()
