"""SystemBuilder misuse and configuration-edge coverage."""

import pytest

from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec
from repro.encompass import SystemBuilder


def simple_schema(node="alpha"):
    return FileSchema(
        name="f", organization=KEY_SEQUENCED, primary_key=("k",),
        audited=True, partitions=(PartitionSpec(node, "$data"),),
    )


class TestBuilderMisuse:
    def test_double_build_rejected(self):
        builder = SystemBuilder(seed=1)
        builder.add_node("alpha", cpus=2)
        builder.build()
        with pytest.raises(RuntimeError):
            builder.build()

    def test_duplicate_file_definition_rejected(self):
        builder = SystemBuilder(seed=1)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")
        builder.define_file(simple_schema())
        with pytest.raises(ValueError):
            builder.define_file(simple_schema())

    def test_duplicate_node_rejected(self):
        builder = SystemBuilder(seed=1)
        builder.add_node("alpha", cpus=2)
        with pytest.raises(ValueError):
            builder.add_node("alpha", cpus=2)

    def test_terminal_for_unknown_program_rejected(self):
        builder = SystemBuilder(seed=1)
        builder.add_node("alpha", cpus=4)
        builder.add_tcp("alpha", "$tcp1", cpus=(2, 3))
        with pytest.raises(KeyError):
            builder.add_terminal("alpha", "$tcp1", "T1", "nope")

    def test_server_class_name_must_be_dollar(self):
        builder = SystemBuilder(seed=1)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")
        with pytest.raises(ValueError):
            builder.add_server_class("alpha", "bank", lambda c, r: iter(()))

    def test_audited_file_on_unaudited_volume_fails_ddl(self):
        builder = SystemBuilder(seed=1)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data", audited=False)
        builder.define_file(simple_schema())
        from repro.discprocess import FileError
        with pytest.raises(FileError):
            builder.build()  # CreateFile rejected by the DISCPROCESS


class TestSystemAccessors:
    def test_stats_and_accessors(self):
        builder = SystemBuilder(seed=2)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")
        system = builder.build()
        assert system.transaction_stats() == {
            "alpha": {"commits": 0, "aborts": 0},
        }
        assert system.node_os("alpha").node.name == "alpha"
        assert system.client("alpha") is system.clients["alpha"]

    def test_multi_node_auto_connect(self):
        builder = SystemBuilder(seed=3)
        builder.add_node("a", cpus=2)
        builder.add_node("b", cpus=2)
        system = builder.build()
        assert system.cluster.network.connected("a", "b")

    def test_explicit_topology_respected(self):
        builder = SystemBuilder(seed=4)
        for name in ("a", "b", "c"):
            builder.add_node(name, cpus=2)
        builder.connect("a", "b")
        builder.connect("b", "c")   # no a-c line: routes go through b
        system = builder.build()
        assert len(system.cluster.network.route("a", "c")) == 2

    def test_tmf_cpus_default_to_last_pair(self):
        builder = SystemBuilder(seed=5)
        builder.add_node("alpha", cpus=6)
        system = builder.build()
        tmf = system.tmf["alpha"]
        assert (tmf.tmp.primary_cpu, tmf.tmp.backup_cpu) == (4, 5)
