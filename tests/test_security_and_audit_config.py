"""Security controls (§Data Base Management feature 5) and multiple
AUDITPROCESS configuration (§Audit Trails)."""

import pytest

from repro.core import Transid
from repro.discprocess import (
    FileSchema,
    KEY_SEQUENCED,
    PartitionSpec,
    SecuritySpec,
    SecurityViolationError,
)
from repro.encompass import SystemBuilder


class TestSecuritySpec:
    def test_default_allows_everything(self):
        spec = SecuritySpec()
        assert spec.allows("read", "alpha.$anything")
        assert spec.allows("write", "beta.$x")

    def test_patterns_per_function(self):
        spec = SecuritySpec(read=("*",), write=("alpha.$bank-*",))
        assert spec.allows("read", "beta.$report")
        assert spec.allows("write", "alpha.$bank-2")
        assert not spec.allows("write", "beta.$bank-1")
        assert not spec.allows("write", "alpha.$rogue")

    def test_node_scoped_pattern(self):
        spec = SecuritySpec(read=("hq.*",), write=("hq.*",))
        assert spec.allows("read", "hq.$any")
        assert not spec.allows("read", "branch.$any")


class TestEnforcement:
    def _build(self):
        builder = SystemBuilder(seed=55)
        builder.add_node("alpha", cpus=4)
        builder.add_node("beta", cpus=2)
        builder.add_volume("alpha", "$data", cpus=(0, 1))
        builder.define_file(
            FileSchema(
                name="payroll",
                organization=KEY_SEQUENCED,
                primary_key=("emp",),
                audited=True,
                partitions=(PartitionSpec("alpha", "$data"),),
                security=SecuritySpec(
                    read=("alpha.*",),           # any alpha process may read
                    write=("alpha.$payroll*",),  # only the payroll server writes
                ),
            )
        )
        return builder.build()

    def test_authorized_writer(self):
        system = self._build()
        tmf = system.tmf["alpha"]

        def body(proc):
            transid = yield from tmf.begin(proc)
            yield from system.clients["alpha"].insert(
                proc, "payroll", {"emp": 1, "salary": 10}, transid=transid
            )
            yield from tmf.end(proc, transid)
            return True

        proc = system.spawn("alpha", "$payroll-1", body, cpu=0)
        assert system.cluster.run(proc.sim_process)

    def test_unauthorized_writer_rejected(self):
        system = self._build()
        tmf = system.tmf["alpha"]

        def body(proc):
            transid = yield from tmf.begin(proc)
            try:
                yield from system.clients["alpha"].insert(
                    proc, "payroll", {"emp": 2, "salary": 10}, transid=transid
                )
            except SecurityViolationError:
                yield from tmf.abort(proc, transid, "denied")
                return "denied"

        proc = system.spawn("alpha", "$rogue", body, cpu=0)
        assert system.cluster.run(proc.sim_process) == "denied"

    def test_network_node_control(self):
        """Access 'by network node': beta processes may not even read."""
        system = self._build()

        def body(proc):
            try:
                yield from system.clients["beta"].read(proc, "payroll", (1,))
            except SecurityViolationError:
                return "denied"

        proc = system.spawn("beta", "$reader", body, cpu=0)
        assert system.cluster.run(proc.sim_process) == "denied"

    def test_reads_allowed_where_writes_denied(self):
        system = self._build()
        tmf = system.tmf["alpha"]

        def seed(proc):
            transid = yield from tmf.begin(proc)
            yield from system.clients["alpha"].insert(
                proc, "payroll", {"emp": 5, "salary": 1}, transid=transid
            )
            yield from tmf.end(proc, transid)

        proc = system.spawn("alpha", "$payroll-9", seed, cpu=0)
        system.cluster.run(proc.sim_process)

        def body(proc):
            record = yield from system.clients["alpha"].read(proc, "payroll", (5,))
            return record

        proc = system.spawn("alpha", "$report", body, cpu=1)
        assert system.cluster.run(proc.sim_process)["salary"] == 1


class TestMultipleAuditProcesses:
    def test_volumes_on_separate_trails(self):
        builder = SystemBuilder(seed=57)
        builder.add_node("alpha", cpus=4)
        second = builder.add_audit_process("alpha", "$aud2", cpus=(0, 1))
        builder.add_volume("alpha", "$d1", cpus=(0, 1))  # default "$aud"
        builder.add_volume("alpha", "$d2", cpus=(2, 3),
                           audit_process_name="$aud2")
        for name, volume in (("f1", "$d1"), ("f2", "$d2")):
            builder.define_file(
                FileSchema(
                    name=name,
                    organization=KEY_SEQUENCED,
                    primary_key=("k",),
                    audited=True,
                    partitions=(PartitionSpec("alpha", volume),),
                )
            )
        system = builder.build()
        tmf = system.tmf["alpha"]

        def body(proc):
            transid = yield from tmf.begin(proc)
            yield from system.clients["alpha"].insert(
                proc, "f1", {"k": 1}, transid=transid
            )
            yield from system.clients["alpha"].insert(
                proc, "f2", {"k": 1}, transid=transid
            )
            yield from tmf.end(proc, transid)
            return True

        proc = system.spawn("alpha", "$t", body, cpu=0)
        assert system.cluster.run(proc.sim_process)
        first = system.audit_processes["alpha"]
        # Both trails were forced at phase one; each holds only its own
        # volume's images.
        from repro.core import AuditRecord
        first_records = [r for r in first.trail.scan_all() if isinstance(r, AuditRecord)]
        second_records = [r for r in second.trail.scan_all() if isinstance(r, AuditRecord)]
        assert {r.volume for r in first_records} == {"$d1"}
        assert {r.volume for r in second_records} == {"$d2"}
        assert first.forces >= 1 and second.forces >= 1

    def test_abort_collects_from_both_trails(self):
        builder = SystemBuilder(seed=58)
        builder.add_node("alpha", cpus=4)
        builder.add_audit_process("alpha", "$aud2", cpus=(0, 1))
        builder.add_volume("alpha", "$d1", cpus=(0, 1))
        builder.add_volume("alpha", "$d2", cpus=(2, 3),
                           audit_process_name="$aud2")
        for name, volume in (("g1", "$d1"), ("g2", "$d2")):
            builder.define_file(
                FileSchema(
                    name=name,
                    organization=KEY_SEQUENCED,
                    primary_key=("k",),
                    audited=True,
                    partitions=(PartitionSpec("alpha", volume),),
                )
            )
        system = builder.build()
        tmf = system.tmf["alpha"]

        def body(proc):
            transid = yield from tmf.begin(proc)
            yield from system.clients["alpha"].insert(
                proc, "g1", {"k": 1}, transid=transid
            )
            yield from system.clients["alpha"].insert(
                proc, "g2", {"k": 1}, transid=transid
            )
            yield from tmf.abort(proc, transid, "test")
            one = yield from system.clients["alpha"].read(proc, "g1", (1,))
            two = yield from system.clients["alpha"].read(proc, "g2", (1,))
            return one, two

        proc = system.spawn("alpha", "$t", body, cpu=0)
        assert system.cluster.run(proc.sim_process) == (None, None)
