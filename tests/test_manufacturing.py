"""Figure 4: the four-node manufacturing application.

Node autonomy vs. replica consistency: global updates run only at a
record's master node; non-master copies follow via suspense files; the
copies converge once the network heals.
"""

import pytest

from repro.apps.manufacturing import (
    MANUFACTURING_NODES,
    build_manufacturing_system,
)


@pytest.fixture(scope="module")
def app():
    # Module-scoped: building four full nodes is the expensive part.
    return build_manufacturing_system(seed=11, items_per_node=2,
                                      monitor_interval=200.0)


def run_op(app, node, gen_fn, name="$op"):
    p = app.system.spawn(node, name, gen_fn, cpu=0)
    return app.system.cluster.run(p.sim_process)


def settle(app, ms=3000.0):
    idle = app.system.spawn(
        "cupertino", "$settle",
        lambda proc: (yield app.system.env.timeout(ms)), cpu=0,
    )
    app.system.cluster.run(idle.sim_process)


class TestManufacturing:
    def test_initial_copies_identical(self, app):
        report = app.convergence_report()
        assert report["converged"]
        assert all(depth == 0 for depth in report["suspense_depth"].values())

    def test_update_at_master_propagates_everywhere(self, app):
        # Item 0 is mastered at cupertino.
        def op(proc):
            reply = yield from app.update_item(
                proc, "cupertino", 0, {"qty_on_hand": 55}
            )
            return reply

        reply = run_op(app, "cupertino", op)
        assert reply["ok"]
        settle(app)  # suspense monitors drain
        report = app.convergence_report()
        assert report["converged"]
        assert report["copies"]["neufahrn"][(0,)]["qty_on_hand"] == 55

    def test_update_from_non_master_routes_to_master(self, app):
        # Item 2 is mastered at santaclara; update it from reston.
        def op(proc):
            reply = yield from app.update_item(
                proc, "reston", 2, {"description": "routed"}
            )
            return reply

        reply = run_op(app, "reston", op)
        assert reply["ok"]
        settle(app)
        report = app.convergence_report()
        assert report["converged"]
        assert report["copies"]["reston"][(2,)]["description"] == "routed"

    def test_node_autonomy_during_partition(self, app):
        """A partitioned node keeps updating the records it masters;
        suspense entries accumulate; copies converge after heal."""
        network = app.system.cluster.network
        others = [n for n in MANUFACTURING_NODES if n != "neufahrn"]
        network.partition(["neufahrn"], others)

        # Neufahrn updates its own item (6 or 7 mastered there).
        def op_nf(proc):
            reply = yield from app.update_item(
                proc, "neufahrn", 6, {"qty_on_hand": 9}
            )
            return reply

        reply = run_op(app, "neufahrn", op_nf, name="$opnf")
        assert reply["ok"], "node autonomy: master-local update must succeed"

        # Cupertino also keeps updating its item.
        def op_cu(proc):
            reply = yield from app.update_item(
                proc, "cupertino", 1, {"qty_on_hand": 77}
            )
            return reply

        reply = run_op(app, "cupertino", op_cu, name="$opcu")
        assert reply["ok"]
        settle(app, 1500)
        report = app.convergence_report()
        assert not report["converged"]
        assert report["suspense_depth"]["neufahrn"] >= 1  # deferred for others
        assert report["suspense_depth"]["cupertino"] >= 1  # deferred for neufahrn

        # Heal: monitors drain both directions; copies converge.
        network.heal()
        settle(app, 6000)
        report = app.convergence_report()
        assert report["converged"]
        assert report["copies"]["cupertino"][(6,)]["qty_on_hand"] == 9
        assert report["copies"]["neufahrn"][(1,)]["qty_on_hand"] == 77
        assert all(d == 0 for d in report["suspense_depth"].values())

    def test_update_of_unreachable_master_fails(self, app):
        """The compromise's cost: no node may update a record whose
        master is unavailable."""
        network = app.system.cluster.network
        network.partition(["santaclara"], [n for n in MANUFACTURING_NODES if n != "santaclara"])

        def op(proc):
            reply = yield from app.update_item(
                proc, "reston", 2, {"description": "should fail"}
            )
            return reply

        reply = run_op(app, "reston", op, name="$opfail")
        assert not reply["ok"]
        assert reply["error"] in ("master_unavailable", "not_master")
        network.heal()
        settle(app, 3000)

    def test_local_transactions_always_run(self, app):
        """Most transactions access only local files and are unaffected
        by any partition."""
        network = app.system.cluster.network
        network.partition(["reston"], [n for n in MANUFACTURING_NODES if n != "reston"])

        def op(proc):
            qty = yield from app.local_transaction(proc, "reston", 42, +5)
            qty = yield from app.local_transaction(proc, "reston", 42, -2)
            return qty

        assert run_op(app, "reston", op, name="$oploc") == 3
        network.heal()
        settle(app, 2000)
