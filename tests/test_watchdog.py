"""The online invariant watchdog (repro.trace.watchdog).

Each detector is exercised with a targeted injection — a stuck-ending
transaction, an over-horizon lock wait, a waits-for cycle, an illegal
Figure-3 edge, an audit growth burst — and must raise exactly the
expected ``watchdog.alarm`` records, once per offending condition.
A clean run alarms nothing (pinned in tests/test_trace.py too).
"""

import random

import pytest

from repro.core import TransactionAborted
from repro.discprocess import (
    FileSchema,
    KEY_SEQUENCED,
    LockTimeoutError,
    PartitionSpec,
)
from repro.encompass import SystemBuilder
from repro.trace import Watchdog, WatchdogConfig


def build_system(watchdog=True, seed=5):
    builder = SystemBuilder(seed=seed, trace=True, watchdog=watchdog)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    builder.define_file(
        FileSchema(
            name="pair",
            organization=KEY_SEQUENCED,
            primary_key=("k",),
            audited=True,
            partitions=(PartitionSpec("alpha", "$data"),),
        )
    )
    return builder.build()


def seed_rows(system, keys=(1, 2)):
    def loader(proc):
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]
        transid = yield from tmf.begin(proc)
        for k in keys:
            yield from client.insert(proc, "pair", {"k": k}, transid=transid)
        yield from tmf.end(proc, transid)

    proc = system.spawn("alpha", "$seed", loader, cpu=0)
    system.cluster.run(proc.sim_process)


def alarm_reasons(watchdog):
    return [alarm["reason"] for alarm in watchdog.alarms]


# ---------------------------------------------------------------------------
# Detector 1: Figure-3 edges (subscription-driven)
# ---------------------------------------------------------------------------

def test_illegal_transition_alarms_and_legal_sequence_does_not():
    system = build_system()
    watchdog = system.watchdog
    tracer = system.tracer
    baseline = len(watchdog.alarms)

    # A legal life cycle, replayed through the record stream: silent.
    for state in ("active", "ending", "ended"):
        tracer.emit(0.0, "state_broadcast", node="alpha",
                    transid="\\alpha.9.1", state=state, cpus=4)
    assert len(watchdog.alarms) == baseline

    # active -> ended skips the ending state: not an edge of Figure 3.
    tracer.emit(1.0, "state_broadcast", node="alpha",
                transid="\\alpha.9.2", state="active", cpus=4)
    tracer.emit(2.0, "state_broadcast", node="alpha",
                transid="\\alpha.9.2", state="ended", cpus=4)
    assert alarm_reasons(watchdog)[baseline:] == ["illegal_transition"]
    alarm = watchdog.alarms[-1]
    assert alarm["transid"] == "\\alpha.9.2"
    assert alarm["from_state"] == "active" and alarm["to_state"] == "ended"
    # The alarm rode the tracer as a structured record too.
    records = tracer.select("watchdog.alarm", reason="illegal_transition")
    assert len(records) == 1 and records[0].transid == "\\alpha.9.2"


def test_real_run_emits_only_legal_edges():
    system = build_system()
    seed_rows(system)
    assert system.tracer.count("state_broadcast") > 0
    assert alarm_reasons(system.watchdog) == []


# ---------------------------------------------------------------------------
# Detector 2: stuck transactions (injected via the record stream)
# ---------------------------------------------------------------------------

def test_stuck_ending_transaction_alarms_exactly_once():
    system = build_system()
    watchdog = system.watchdog
    tracer = system.tracer
    tracer.emit(10.0, "state_broadcast", node="alpha",
                transid="\\alpha.9.3", state="active", cpus=4)
    tracer.emit(20.0, "state_broadcast", node="alpha",
                transid="\\alpha.9.3", state="ending", cpus=4)

    horizon = watchdog.config.stuck_horizon
    watchdog.check(20.0 + horizon)          # at the horizon: not stuck yet
    assert alarm_reasons(watchdog) == []
    watchdog.check(21.0 + horizon)          # past it: exactly one alarm
    watchdog.check(5_000.0 + horizon)       # dedup: still one
    assert alarm_reasons(watchdog) == ["stuck_transaction"]
    alarm = watchdog.alarms[-1]
    assert alarm["transid"] == "\\alpha.9.3" and alarm["state"] == "ending"
    assert alarm["stuck_ms"] > horizon

    # The transaction finally ends; the detector forgets it.
    tracer.emit(30.0, "state_broadcast", node="alpha",
                transid="\\alpha.9.3", state="ended", cpus=4)
    watchdog.check(50_000.0)
    assert alarm_reasons(watchdog) == ["stuck_transaction"]


# ---------------------------------------------------------------------------
# Detectors 3+4: lock waits and waits-for cycles (real lock managers)
# ---------------------------------------------------------------------------

def test_over_horizon_lock_wait_alarms():
    config = WatchdogConfig(interval=50.0, lock_wait_horizon=300.0)
    system = build_system(watchdog=config)
    seed_rows(system)
    tmf = system.tmf["alpha"]
    client = system.clients["alpha"]

    def holder(proc):
        transid = yield from tmf.begin(proc)
        yield from client.read(proc, "pair", (1,), transid=transid, lock=True)
        yield system.env.timeout(1_000.0)   # sit on the lock past the horizon
        yield from tmf.end(proc, transid)

    def waiter(proc):
        yield system.env.timeout(10.0)      # let the holder win the lock
        transid = yield from tmf.begin(proc)
        yield from client.read(proc, "pair", (1,), transid=transid, lock=True,
                               lock_timeout=5_000.0)
        yield from tmf.end(proc, transid)

    system.spawn("alpha", "$hold", holder, cpu=0)
    proc = system.spawn("alpha", "$wait", waiter, cpu=1)
    system.cluster.run(proc.sim_process)

    reasons = alarm_reasons(system.watchdog)
    assert reasons == ["lock_wait_horizon"]     # once, despite many checks
    alarm = system.watchdog.alarms[0]
    assert alarm["volume"] == "$data" and alarm["waited_ms"] > 300.0
    assert "'pair'" in alarm["target"]


def test_waits_for_cycle_alarms_global_deadlock():
    config = WatchdogConfig(interval=50.0, lock_wait_horizon=50_000.0)
    system = build_system(watchdog=config)
    seed_rows(system)
    tmf = system.tmf["alpha"]
    client = system.clients["alpha"]
    outcomes = {}

    def contender(name, first, second, delay):
        def body(proc):
            yield system.env.timeout(delay)
            transid = yield from tmf.begin(proc)
            yield from client.read(proc, "pair", (first,), transid=transid,
                                   lock=True)
            yield system.env.timeout(100.0)
            try:
                yield from client.read(proc, "pair", (second,),
                                       transid=transid, lock=True,
                                       lock_timeout=2_000.0)
                yield from tmf.end(proc, transid)
                outcomes[name] = "committed"
            except (LockTimeoutError, TransactionAborted):
                yield from tmf.abort(proc, transid, "deadlock")
                outcomes[name] = "aborted"
        return body

    a = system.spawn("alpha", "$a", contender("a", 1, 2, 0.0), cpu=0)
    b = system.spawn("alpha", "$b", contender("b", 2, 1, 10.0), cpu=1)
    system.cluster.run(a.sim_process)
    system.cluster.run(b.sim_process)

    reasons = alarm_reasons(system.watchdog)
    assert reasons == ["deadlock_cycle"]        # the cycle, exactly once
    alarm = system.watchdog.alarms[0]
    assert len(alarm["transids"]) == 2
    # The timeout scheme eventually broke the deadlock for at least one.
    assert "aborted" in outcomes.values()
    # The alarm surfaces in the victim transaction's trace too.
    trace = system.trace_of(alarm["transid"])
    assert any(
        getattr(record, "kind", "") == "watchdog.alarm"
        for record in trace.loose_annotations
    )


# ---------------------------------------------------------------------------
# Detector 5: audit-trail growth
# ---------------------------------------------------------------------------

def test_audit_growth_burst_alarms():
    config = WatchdogConfig(interval=100.0, audit_growth_limit=2)
    system = build_system(watchdog=config)

    def burst(proc):
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]
        transid = yield from tmf.begin(proc)
        for k in range(10):                 # a burst of audit records
            yield from client.insert(proc, "pair", {"k": k}, transid=transid)
        yield from tmf.end(proc, transid)
        yield system.env.timeout(250.0)     # let the periodic checks run

    proc = system.spawn("alpha", "$burst", burst, cpu=0)
    system.cluster.run(proc.sim_process)
    summary = system.watchdog.summary()
    assert summary["by_reason"].get("audit_growth", 0) >= 1
    assert set(summary["by_reason"]) == {"audit_growth"}
    alarm = next(a for a in system.watchdog.alarms
                 if a["reason"] == "audit_growth")
    assert alarm["grew"] > 2 and "alpha" in str(alarm["audit_process"])


# ---------------------------------------------------------------------------
# Wiring: XRAY report section, bounded checks, builder opt-in
# ---------------------------------------------------------------------------

def test_watchdog_summary_lands_in_xray_report():
    system = build_system()
    seed_rows(system)
    report = system.xray_report()
    assert report["watchdog"]["alarms"] == 0
    assert report["watchdog"]["checks_run"] == system.watchdog.checks_run
    assert report["watchdog"]["by_reason"] == {}


def test_watchdog_checks_are_bounded():
    config = WatchdogConfig(interval=10.0, max_checks=3)
    system = build_system(watchdog=config)

    def idle(proc):
        yield system.env.timeout(1_000.0)

    proc = system.spawn("alpha", "$idle", idle, cpu=0)
    system.cluster.run(proc.sim_process)
    assert system.watchdog.checks_run == 3


def test_watchdog_requires_opt_in():
    system = build_system(watchdog=None)
    assert system.watchdog is None
    assert "watchdog" not in system.xray_report()


def test_watchdog_config_passthrough():
    config = WatchdogConfig(stuck_horizon=123.0)
    system = build_system(watchdog=config)
    assert system.watchdog.config is config
    assert isinstance(system.watchdog, Watchdog)
