"""Soak test: the manufacturing network under churning line failures.

Random communication-line outages hit the Figure 4 network while every
node keeps issuing global updates for records it masters (and local
stock movements).  When the weather clears, all copies must converge to
a single history per record with monotonically increasing versions.
"""

import random

import pytest

from repro.apps.manufacturing import (
    MANUFACTURING_NODES,
    build_manufacturing_system,
)


@pytest.mark.parametrize("seed", [101, 202])
def test_convergence_through_line_churn(seed):
    app = build_manufacturing_system(seed=seed, items_per_node=2,
                                     monitor_interval=150.0)
    system = app.system
    network = system.cluster.network
    rng = random.Random(seed)
    results = {"updates": 0, "rejected": 0}

    # Each node updates the items it masters, repeatedly.
    def updater(node, items):
        def body(proc):
            for round_number in range(6):
                for item in items:
                    reply = yield from app.update_item(
                        proc, node, item,
                        {"qty_on_hand": 1000 * round_number + item},
                    )
                    if reply.get("ok"):
                        results["updates"] += 1
                    else:
                        results["rejected"] += 1
                yield system.env.timeout(150 + (item % 3) * 40)
        return body

    item_id = 0
    user_procs = []
    for node in MANUFACTURING_NODES:
        items = [item_id, item_id + 1]
        item_id += 2
        user_procs.append(
            system.spawn(node, f"$upd-{node}", updater(node, items), cpu=0)
        )

    # Line weather: random outages through the run.
    def weather():
        for _ in range(6):
            line = rng.choice(network.lines)
            line.fail(reason="weather")
            yield system.env.timeout(rng.uniform(100, 400))
            line.restore()
            yield system.env.timeout(rng.uniform(50, 200))

    system.env.process(weather(), name="weather")

    for proc in user_procs:
        system.cluster.run(proc.sim_process)
    network.heal()

    # Poll until suspense files drain everywhere (bounded).
    for _ in range(120):
        idle = system.spawn(
            "cupertino", "$poll", lambda p: (yield system.env.timeout(200)), cpu=1
        )
        system.cluster.run(idle.sim_process)
        report = app.convergence_report()
        if report["converged"] and all(
            d == 0 for d in report["suspense_depth"].values()
        ):
            break
    else:
        pytest.fail(f"never converged: {report['suspense_depth']}")

    assert results["updates"] > 0
    # Versions are consistent across all copies and strictly positive for
    # every record that was updated at least once.
    reference = report["copies"][MANUFACTURING_NODES[0]]
    for node in MANUFACTURING_NODES[1:]:
        assert report["copies"][node] == reference
    updated = [record for record in reference.values() if record["version"] > 0]
    assert len(updated) >= results["updates"] / 6 / 2  # many records advanced
