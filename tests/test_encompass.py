"""The ENCOMPASS application layer: TCPs, screen programs, server
classes, Pathway control, and the banking application's consistency
assertions under concurrency and failures.
"""

import pytest

from repro.apps.banking import (
    bank_server,
    check_consistency,
    debit_credit_program,
    install_banking,
    populate_banking,
)
from repro.encompass import SystemBuilder, TerminalInput


def build_bank(seed=3, cpus=4, server_instances=2, restart_limit=5,
               accounts=40, branches=2, tellers=4):
    builder = SystemBuilder(seed=seed)
    builder.add_node("alpha", cpus=cpus)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_banking(builder, "alpha", "$data", server_instances=server_instances)
    builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=restart_limit)
    builder.add_program("alpha", "$tcp1", "debit-credit", debit_credit_program)
    for t in range(8):
        builder.add_terminal("alpha", "$tcp1", f"T{t}", "debit-credit")
    system = builder.build()
    populate_banking(system, "alpha", branches=branches,
                     tellers_per_branch=tellers, accounts=accounts)
    return system


class TestQuickFlow:
    def test_single_posting_commits(self):
        system = build_bank()
        reply = system.drive("alpha", "$tcp1", "T0", {
            "account_id": 1, "teller_id": 0, "branch_id": 1, "amount": 25,
        })
        assert reply["ok"]
        assert reply["result"] == 1025
        assert reply["attempts"] == 1
        assert "POSTED +25" in reply["display"][0]
        report = check_consistency(system, "alpha")
        assert report["consistent"]
        assert report["history_count"] == 1

    def test_insufficient_funds_aborts_voluntarily(self):
        system = build_bank()
        reply = system.drive("alpha", "$tcp1", "T0", {
            "account_id": 1, "teller_id": 0, "branch_id": 1, "amount": -99999,
        })
        assert not reply["ok"]
        assert reply["error"] == "aborted"
        assert "insufficient_funds" in reply["reason"]
        report = check_consistency(system, "alpha")
        assert report["consistent"]
        assert report["history_count"] == 0
        tmf = system.tmf["alpha"]
        assert tmf.aborts >= 1

    def test_unknown_terminal_rejected(self):
        system = build_bank()
        reply = system.drive("alpha", "$tcp1", "T99", {"amount": 1})
        assert reply == {"ok": False, "error": "unknown_terminal"}

    def test_terminal_limit_is_32(self):
        builder = SystemBuilder(seed=1)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")
        install_banking(builder, "alpha", "$data")
        tcp = builder.add_tcp("alpha", "$tcp1", cpus=(2, 3))
        builder.add_program("alpha", "$tcp1", "p", debit_credit_program)
        for t in range(32):
            builder.add_terminal("alpha", "$tcp1", f"T{t}", "p")
        with pytest.raises(RuntimeError):
            builder.add_terminal("alpha", "$tcp1", "T32", "p")


class TestConcurrencyAndRestart:
    def test_concurrent_postings_keep_invariants(self):
        system = build_bank(accounts=10)
        results = []

        def user(proc, terminal, n, account):
            for i in range(n):
                reply = yield from system.terminal_request(
                    proc, "alpha", "$tcp1", terminal,
                    {"account_id": account, "teller_id": account % 8,
                     "branch_id": account % 2, "amount": 7},
                )
                results.append(reply["ok"])

        procs = []
        for t in range(6):
            # Several users hammer the same two hot accounts: guaranteed
            # lock conflicts and occasional deadlock-timeout restarts.
            procs.append(system.spawn(
                "alpha", f"$user{t}",
                (lambda tt: lambda p: user(p, f"T{tt}", 5, tt % 2))(t),
                cpu=t % 4,
            ))
        for p in procs:
            system.cluster.run(p.sim_process)
        assert all(results) and len(results) == 30
        report = check_consistency(system, "alpha")
        assert report["consistent"]
        assert report["history_count"] == 30
        assert report["history_sum"] == 30 * 7

    def test_deadlock_restart_is_transparent_to_user(self):
        """Two users lock the same pair of accounts in opposite order via
        a custom two-account transfer server: deadlock, timeout, restart
        -- and both ultimately commit."""
        builder = SystemBuilder(seed=5)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data", cpus=(0, 1))
        install_banking(builder, "alpha", "$data", server_instances=2)

        def transfer_server(ctx, request):
            first = yield from ctx.read(
                "account", (request["first"],), lock=True, lock_timeout=60,
            )
            yield from ctx.pause(30)  # hold the first lock: invite deadlock
            second = yield from ctx.read(
                "account", (request["second"],), lock=True, lock_timeout=60,
            )
            first["balance"] -= request["amount"]
            second["balance"] += request["amount"]
            yield from ctx.update("account", first)
            yield from ctx.update("account", second)
            return {"ok": True}

        def transfer_program(ctx, data):
            yield from ctx.send_ok("$xfer", data)
            return "done"

        builder.add_server_class("alpha", "$xfer", transfer_server, instances=2)
        builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=8)
        builder.add_program("alpha", "$tcp1", "transfer", transfer_program)
        builder.add_terminal("alpha", "$tcp1", "TA", "transfer")
        builder.add_terminal("alpha", "$tcp1", "TB", "transfer")
        system = builder.build()
        populate_banking(system, "alpha", branches=1, tellers_per_branch=1,
                         accounts=4)

        replies = {}

        def user(proc, terminal, first, second):
            reply = yield from system.terminal_request(
                proc, "alpha", "$tcp1", terminal,
                {"first": first, "second": second, "amount": 10},
            )
            replies[terminal] = reply

        pa = system.spawn("alpha", "$ua", lambda p: user(p, "TA", 0, 1), cpu=0)
        pb = system.spawn("alpha", "$ub", lambda p: user(p, "TB", 1, 0), cpu=1)
        system.cluster.run(pa.sim_process)
        system.cluster.run(pb.sim_process)
        assert replies["TA"]["ok"] and replies["TB"]["ok"]
        total_attempts = replies["TA"]["attempts"] + replies["TB"]["attempts"]
        assert total_attempts >= 3  # at least one side restarted
        report = check_consistency(system, "alpha")
        assert report["consistent"]
        tcp = system.tcps[("alpha", "$tcp1")]
        assert tcp.restarts_total >= 1

    def test_restart_limit_gives_up(self):
        builder = SystemBuilder(seed=2)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")

        def always_restart(ctx, data):
            ctx.restart_transaction("always")
            yield  # pragma: no cover

        builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=3)
        builder.add_program("alpha", "$tcp1", "loop", always_restart)
        builder.add_terminal("alpha", "$tcp1", "T0", "loop")
        system = builder.build()
        reply = system.drive("alpha", "$tcp1", "T0", {})
        assert reply["ok"] is False
        assert reply["error"] == "restart_limit"
        assert reply["attempts"] == 4  # 1 + 3 restarts


class TestTcpFaultTolerance:
    def test_tcp_takeover_preserves_terminal_service(self):
        system = build_bank()
        tcp = system.tcps[("alpha", "$tcp1")]
        outcome = {}

        def user(proc):
            r1 = yield from system.terminal_request(
                proc, "alpha", "$tcp1", "T0",
                {"account_id": 0, "teller_id": 0, "branch_id": 0, "amount": 5},
            )
            system.cluster.node("alpha").fail_cpu(2)  # TCP primary
            yield system.env.timeout(10)
            r2 = yield from system.terminal_request(
                proc, "alpha", "$tcp1", "T0",
                {"account_id": 0, "teller_id": 0, "branch_id": 0, "amount": 5},
            )
            outcome["r1"], outcome["r2"] = r1, r2

        p = system.spawn("alpha", "$u", user, cpu=0)
        system.cluster.run(p.sim_process)
        assert outcome["r1"]["ok"] and outcome["r2"]["ok"]
        assert tcp.takeovers == 1
        report = check_consistency(system, "alpha")
        assert report["consistent"]
        assert report["history_sum"] == 10

    def test_tcp_failure_mid_unit_aborts_and_rerun_commits_once(self):
        """The primary TCP dies while a unit is in flight: TMF backs the
        transaction out; the retried input re-runs it exactly once."""
        system = build_bank()
        outcome = {}

        def user(proc):
            reply = yield from system.terminal_request(
                proc, "alpha", "$tcp1", "T1",
                {"account_id": 3, "teller_id": 1, "branch_id": 1, "amount": 11},
            )
            outcome["reply"] = reply

        def saboteur(proc):
            yield system.env.timeout(40)  # mid-unit (posting takes ~100ms+)
            system.cluster.node("alpha").fail_cpu(2)

        p = system.spawn("alpha", "$u", user, cpu=0)
        system.spawn("alpha", "$sab", saboteur, cpu=1)
        system.cluster.run(p.sim_process)
        # Let any stray abort/backout work drain before checking.
        idle = system.spawn(
            "alpha", "$idle", lambda pr: iter(()) or (yield system.env.timeout(3000)),
            cpu=0,
        )
        system.cluster.run(idle.sim_process)
        assert outcome["reply"]["ok"]
        report = check_consistency(system, "alpha")
        assert report["consistent"]
        assert report["history_sum"] == 11  # exactly once, not twice

    def test_committed_unit_not_rerun_after_takeover(self):
        """If the unit committed and the TCP died before replying, the
        retried request answers from the checkpointed reply."""
        system = build_bank()
        tcp = system.tcps[("alpha", "$tcp1")]
        outcome = {}

        def user(proc):
            reply = yield from system.terminal_request(
                proc, "alpha", "$tcp1", "T2",
                {"account_id": 5, "teller_id": 2, "branch_id": 1, "amount": 9},
            )
            outcome["reply"] = reply

        observed = {}

        def watcher(proc):
            # Fail the TCP primary the moment the unit's commit lands.
            while tcp.units_committed == 0:
                yield system.env.timeout(0.5)
            system.cluster.node("alpha").fail_cpu(2)
            observed["failed_at"] = system.env.now

        p = system.spawn("alpha", "$u", user, cpu=0)
        system.spawn("alpha", "$w", watcher, cpu=1)
        system.cluster.run(p.sim_process)
        assert outcome["reply"]["ok"]
        report = check_consistency(system, "alpha")
        assert report["consistent"]
        assert report["history_sum"] == 9  # the posting applied exactly once


class TestPathway:
    def test_monitor_grows_server_class_under_load(self):
        builder = SystemBuilder(seed=4)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")

        def slow_server(ctx, request):
            yield from ctx.pause(200)
            return {"ok": True}

        server_class = builder.add_server_class(
            "alpha", "$slow", slow_server, instances=1, max_instances=6
        )
        builder.add_pathway_monitor("alpha", interval=50)
        system = builder.build()

        def flood(proc):
            # fire-and-collect: issue requests concurrently
            procs = []
            for i in range(24):
                def one(p, idx=i):
                    target = server_class.pick_instance()
                    reply = yield from system.cluster.fs("alpha").send(
                        p, target, {"n": idx}, timeout=60_000
                    )
                    return reply
                procs.append(system.spawn("alpha", f"$f{i}", one, cpu=i % 4))
            for p in procs:
                yield p.sim_process
            return True

        p = system.spawn("alpha", "$flood", flood, cpu=0)
        system.cluster.run(p.sim_process)
        monitor = system.pathway_monitors["alpha"]
        assert monitor.grows >= 1
        assert len(server_class.live_instances()) > 1

    def test_requests_route_round_robin(self):
        builder = SystemBuilder(seed=4)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")
        served = []

        def echo_server(ctx, request):
            served.append(ctx._proc.name)
            return {"ok": True}
            yield  # pragma: no cover

        server_class = builder.add_server_class(
            "alpha", "$echo", echo_server, instances=3
        )
        system = builder.build()

        def body(proc):
            for _ in range(6):
                target = server_class.pick_instance()
                yield from system.cluster.fs("alpha").send(proc, target, {})
            return served

        p = system.spawn("alpha", "$b", body, cpu=0)
        result = system.cluster.run(p.sim_process)
        assert len(set(result)) == 3  # all three instances used
