"""Integration tests for the DISCPROCESS (non-audited volumes).

Audited behaviour (audit trails, backout, commit) is covered by the TMF
tests; here we exercise the storage server itself: request dispatch,
partitioned files, locking through messages, I/O time accounting, and —
critically — takeover with no loss of data or locks.
"""

import pytest

from repro.core.transid import Transid
from repro.discprocess import (
    DataDictionary,
    DiscProcess,
    DuplicateKeyError,
    FileClient,
    FileSchema,
    FileUnavailableError,
    KEY_SEQUENCED,
    LockTimeoutError,
    NotFoundError,
    NotLockedError,
    PartitionSpec,
    RELATIVE,
    ENTRY_SEQUENCED,
)
from repro.guardian import Cluster

from conftest import StorageRig


def schema_people(audited=False):
    return FileSchema(
        name="people",
        organization=KEY_SEQUENCED,
        primary_key=("pid",),
        alternate_keys=("city",),
        audited=audited,
        partitions=(PartitionSpec("alpha", "$data"),),
    )


T1 = Transid("alpha", 0, 1)
T2 = Transid("alpha", 0, 2)


class TestBasicOps:
    def test_create_insert_read(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            key = yield from rig.client.insert(
                proc, "people", {"pid": 1, "city": "sf"}
            )
            record = yield from rig.client.read(proc, "people", key)
            return record

        assert rig.run(body) == {"pid": 1, "city": "sf"}

    def test_read_missing_returns_none(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            return (yield from rig.client.read(proc, "people", (9,)))

        assert rig.run(body) is None

    def test_duplicate_insert_raises(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            yield from rig.client.insert(proc, "people", {"pid": 1, "city": "sf"})
            try:
                yield from rig.client.insert(proc, "people", {"pid": 1, "city": "ny"})
            except DuplicateKeyError:
                return "dup"

        assert rig.run(body) == "dup"

    def test_update_delete_roundtrip(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            yield from rig.client.insert(proc, "people", {"pid": 1, "city": "sf"})
            yield from rig.client.update(proc, "people", {"pid": 1, "city": "la"})
            old = yield from rig.client.delete(proc, "people", (1,))
            gone = yield from rig.client.read(proc, "people", (1,))
            return old, gone

        old, gone = rig.run(body)
        assert old == {"pid": 1, "city": "la"}
        assert gone is None

    def test_update_missing_raises(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            try:
                yield from rig.client.update(proc, "people", {"pid": 5, "city": "x"})
            except NotFoundError:
                return "missing"

        assert rig.run(body) == "missing"

    def test_unknown_file_raises(self, rig):
        def body(proc):
            try:
                yield from rig.client.read(proc, "ghost", (1,))
            except FileUnavailableError:
                return "no file"

        assert rig.run(body) == "no file"

    def test_scan_and_index(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            for pid in range(10):
                yield from rig.client.insert(
                    proc, "people", {"pid": pid, "city": "sf" if pid % 2 else "ny"}
                )
            rows = yield from rig.client.scan(proc, "people", low=(3,), high=(6,))
            via = yield from rig.client.read_via_index(proc, "people", "city", "ny")
            return rows, via

        rows, via = rig.run(body)
        assert [k for k, _ in rows] == [(3,), (4,), (5,), (6,)]
        assert sorted(r["pid"] for r in via) == [0, 2, 4, 6, 8]

    def test_relative_and_entry_files(self, rig):
        rel = rig.dictionary.define(
            FileSchema(
                name="slots",
                organization=RELATIVE,
                partitions=(PartitionSpec("alpha", "$data"),),
            )
        )
        ent = rig.dictionary.define(
            FileSchema(
                name="journal",
                organization=ENTRY_SEQUENCED,
                partitions=(PartitionSpec("alpha", "$data"),),
            )
        )

        def body(proc):
            yield from rig.client.create_file(proc, rel)
            yield from rig.client.create_file(proc, ent)
            n = yield from rig.client.append_slot(proc, "slots", {"v": 1})
            old = yield from rig.client.write_slot(proc, "slots", n, {"v": 2})
            slot = yield from rig.client.read_slot(proc, "slots", n)
            esn = yield from rig.client.append_entry(proc, "journal", {"e": 1})
            entry = yield from rig.client.read_entry(proc, "journal", esn)
            return n, old, slot, esn, entry

        n, old, slot, esn, entry = rig.run(body)
        assert (n, esn) == (0, 0)
        assert old == {"v": 1}
        assert slot == {"v": 2}
        assert entry == {"e": 1}

    def test_io_takes_simulated_time(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            start = rig.cluster.env.now
            yield from rig.client.insert(proc, "people", {"pid": 1, "city": "sf"})
            return rig.cluster.env.now - start

        elapsed = rig.run(body)
        assert elapsed > 0


class TestLockingViaMessages:
    def test_transactional_lock_and_conflict(self, rig):
        schema = rig.dictionary.define(schema_people())
        events = []

        def writer(proc):
            yield from rig.client.create_file(proc, schema)
            yield from rig.client.insert(
                proc, "people", {"pid": 1, "city": "sf"}, transid=T1
            )
            # T1 holds the auto-generated insert lock.
            yield rig.cluster.env.timeout(100)
            from repro.discprocess.ops import ReleaseLocks
            yield from rig.cluster.fs("alpha").send(
                proc, "$data", ReleaseLocks(T1, committed=True)
            )
            events.append(("released", rig.cluster.env.now))

        def reader(proc):
            yield rig.cluster.env.timeout(60)
            record = yield from rig.client.read(
                proc, "people", (1,), transid=T2, lock=True, lock_timeout=500
            )
            events.append(("read", rig.cluster.env.now, record["pid"]))

        rig.node_os.spawn("$w", 2, writer, register=False)
        rig.node_os.spawn("$r", 3, reader, register=False)
        rig.cluster.run()
        assert events[0][0] == "released"
        assert events[1][0] == "read"
        assert events[1][1] >= events[0][1]

    def test_lock_timeout_surfaces_as_error(self, rig):
        schema = rig.dictionary.define(schema_people())
        outcome = []

        def holder(proc):
            yield from rig.client.create_file(proc, schema)
            yield from rig.client.insert(
                proc, "people", {"pid": 1, "city": "sf"}, transid=T1
            )
            yield rig.cluster.env.timeout(10_000)

        def contender(proc):
            yield rig.cluster.env.timeout(100)
            try:
                yield from rig.client.read(
                    proc, "people", (1,), transid=T2, lock=True, lock_timeout=50
                )
            except LockTimeoutError:
                outcome.append("timeout")

        rig.node_os.spawn("$h", 2, holder, register=False)
        rig.node_os.spawn("$c", 3, contender, register=False)
        rig.cluster.run(until=20_000)
        assert outcome == ["timeout"]

    def test_update_without_lock_rejected_when_audited(self):
        # Build an audited rig: volume with an audit process.
        from repro.core.audit import AuditProcess, AuditTrail

        rig = StorageRig()
        node = rig.cluster.node("alpha")
        audit_volume = node.add_volume("$audit", 2, 3)
        trail = AuditTrail(audit_volume)
        AuditProcess(rig.node_os, "$aud", 2, 3, trail, rig.cluster.tracer)
        rig.add_volume("$data", cpus=(0, 1), audit_process="$aud")
        schema = rig.dictionary.define(schema_people(audited=True))

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            yield from rig.client.insert(
                proc, "people", {"pid": 1, "city": "sf"}, transid=T1
            )
            from repro.discprocess.ops import ReleaseLocks
            yield from rig.cluster.fs("alpha").send(
                proc, "$data", ReleaseLocks(T1, committed=True)
            )
            # T2 updates without ever locking: TMF protocol violation.
            try:
                yield from rig.client.update(
                    proc, "people", {"pid": 1, "city": "ny"}, transid=T2
                )
            except NotLockedError:
                return "rejected"

        assert rig.run(body) == "rejected"


class TestPartitionedFiles:
    def test_cross_volume_partitioning(self):
        rig = StorageRig()
        rig.add_volume("$d1", cpus=(0, 1))
        rig.add_volume("$d2", cpus=(2, 3))
        schema = rig.dictionary.define(
            FileSchema(
                name="accts",
                organization=KEY_SEQUENCED,
                primary_key=("aid",),
                partitions=(
                    PartitionSpec("alpha", "$d1"),
                    PartitionSpec("alpha", "$d2", low_key=(50,)),
                ),
            )
        )

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            for aid in [1, 49, 50, 99]:
                yield from rig.client.insert(proc, "accts", {"aid": aid})
            low = yield from rig.client.read(proc, "accts", (1,))
            high = yield from rig.client.read(proc, "accts", (99,))
            rows = yield from rig.client.scan(proc, "accts")
            return low, high, [k for k, _ in rows]

        low, high, keys = rig.run(body)
        assert low == {"aid": 1}
        assert high == {"aid": 99}
        assert keys == [(1,), (49,), (50,), (99,)]
        # The records physically live on different volumes.
        assert rig.disc_processes["$d1"].files["accts"].record_count == 2
        assert rig.disc_processes["$d2"].files["accts"].record_count == 2


class TestTakeover:
    def test_data_survives_primary_failure(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            for pid in range(20):
                yield from rig.client.insert(proc, "people", {"pid": pid, "city": "sf"})
            rig.cluster.node("alpha").fail_cpu(0)  # DISCPROCESS primary
            yield rig.cluster.env.timeout(5)
            rows = yield from rig.client.scan(proc, "people")
            return len(rows)

        assert rig.run(body) == 20
        assert rig.disc_processes["$data"].takeovers == 1

    def test_locks_survive_takeover(self, rig):
        schema = rig.dictionary.define(schema_people())
        outcome = []

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            yield from rig.client.insert(
                proc, "people", {"pid": 1, "city": "sf"}, transid=T1
            )
            rig.cluster.node("alpha").fail_cpu(0)
            yield rig.cluster.env.timeout(5)
            # T1's insert lock must still be held by the new primary.
            try:
                yield from rig.client.read(
                    proc, "people", (1,), transid=T2, lock=True, lock_timeout=40
                )
            except LockTimeoutError:
                outcome.append("still locked")
            return outcome

        assert rig.run(body) == ["still locked"]

    def test_mutation_during_takeover_applies_exactly_once(self, rig):
        schema = rig.dictionary.define(schema_people())

        def client_body(proc):
            yield from rig.client.create_file(proc, schema)
            yield from rig.client.insert(proc, "people", {"pid": 1, "city": "a"})
            yield from rig.client.insert(proc, "people", {"pid": 2, "city": "b"})
            rows = yield from rig.client.scan(proc, "people")
            return rows

        def saboteur(proc):
            yield rig.cluster.env.timeout(30)  # mid-insert
            rig.cluster.node("alpha").fail_cpu(0)

        rig.node_os.spawn("$sab", 3, saboteur, register=False)
        rows = rig.run(client_body)
        assert [k for k, _ in rows] == [(1,), (2,)]

    def test_volume_down_after_double_failure(self, rig):
        schema = rig.dictionary.define(schema_people())
        outcome = []

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            rig.cluster.node("alpha").fail_cpu(0)
            rig.cluster.node("alpha").fail_cpu(1)
            yield rig.cluster.env.timeout(5)
            try:
                yield from rig.client.read(proc, "people", (1,))
            except FileUnavailableError:
                outcome.append("down")
            return outcome

        assert rig.run(body) == ["down"]

    def test_cache_fills_and_hits(self, rig):
        schema = rig.dictionary.define(schema_people())

        def body(proc):
            yield from rig.client.create_file(proc, schema)
            for pid in range(50):
                yield from rig.client.insert(proc, "people", {"pid": pid, "city": "x"})
            for _ in range(3):
                for pid in range(50):
                    yield from rig.client.read(proc, "people", (pid,))
            stats = yield from rig.client.volume_stats(proc, "$data")
            return stats

        stats = rig.run(body)
        assert stats["cache"]["hit_ratio"] > 0.9
        assert stats["files"]["people"] == 50
        # Compression accounting is reported per key-sequenced file.
        # (Tiny integer keys don't compress — the ratio can be < 1; the
        # realistic key sets are measured in bench E7.)
        assert stats["compression"]["people"] > 0.0
