"""Unit tests for the transaction state machine and its broadcaster."""

import pytest

from repro.core import (
    IllegalTransition,
    LEGAL_TRANSITIONS,
    StateBroadcaster,
    Transid,
    TransidGenerator,
    TxState,
)
from repro.hardware import Node
from repro.sim import Environment, Tracer


@pytest.fixture
def node():
    return Node(Environment(), "alpha", cpu_count=4)


@pytest.fixture
def broadcaster(node):
    return StateBroadcaster(node, Tracer())


T = Transid("alpha", 0, 1)


class TestTransids:
    def test_uniqueness_per_cpu(self):
        generator = TransidGenerator("alpha")
        ids = [generator.next(cpu) for cpu in (0, 0, 1, 1, 0)]
        assert len(set(ids)) == 5
        assert ids[0].sequence == 1 and ids[1].sequence == 2
        assert ids[2].cpu == 1 and ids[2].sequence == 1

    def test_network_form(self):
        assert str(Transid("beta", 3, 47)) == "\\beta.3.47"

    def test_ordering_and_hashing(self):
        a = Transid("alpha", 0, 1)
        b = Transid("alpha", 0, 2)
        assert a < b
        assert len({a, b, Transid("alpha", 0, 1)}) == 2


class TestLegalTransitions:
    def test_figure3_edge_set(self):
        assert set(LEGAL_TRANSITIONS[None]) == {TxState.ACTIVE}
        assert set(LEGAL_TRANSITIONS[TxState.ACTIVE]) == {
            TxState.ENDING, TxState.ABORTING,
        }
        assert set(LEGAL_TRANSITIONS[TxState.ENDING]) == {
            TxState.ENDED, TxState.ABORTING,
        }
        assert set(LEGAL_TRANSITIONS[TxState.ABORTING]) == {TxState.ABORTED}
        assert LEGAL_TRANSITIONS[TxState.ENDED] == ()
        assert LEGAL_TRANSITIONS[TxState.ABORTED] == ()


class TestBroadcaster:
    def test_broadcast_reaches_all_live_cpus(self, node, broadcaster):
        broadcaster.broadcast(T, TxState.ACTIVE)
        for cpu in node.cpus:
            assert broadcaster.tables[cpu.number][T] == TxState.ACTIVE

    def test_illegal_transition_rejected(self, broadcaster):
        broadcaster.broadcast(T, TxState.ACTIVE)
        with pytest.raises(IllegalTransition):
            broadcaster.broadcast(T, TxState.ENDED)
        with pytest.raises(IllegalTransition):
            broadcaster.broadcast(T, TxState.ABORTED)

    def test_double_begin_rejected(self, broadcaster):
        broadcaster.broadcast(T, TxState.ACTIVE)
        with pytest.raises(IllegalTransition):
            broadcaster.broadcast(T, TxState.ACTIVE)

    def test_terminal_states_remove_transid(self, broadcaster, node):
        broadcaster.broadcast(T, TxState.ACTIVE)
        broadcaster.broadcast(T, TxState.ENDING)
        broadcaster.broadcast(T, TxState.ENDED)
        assert broadcaster.current_state(T) is None
        for cpu in node.cpus:
            assert T not in broadcaster.tables[cpu.number]

    def test_abort_path(self, broadcaster):
        broadcaster.broadcast(T, TxState.ACTIVE)
        broadcaster.broadcast(T, TxState.ENDING)
        broadcaster.broadcast(T, TxState.ABORTING)
        assert broadcaster.current_state(T) == TxState.ABORTING
        broadcaster.broadcast(T, TxState.ABORTED)
        assert broadcaster.current_state(T) is None

    def test_single_cpu_failure_loses_nothing(self, node, broadcaster):
        broadcaster.broadcast(T, TxState.ACTIVE)
        node.fail_cpu(0)
        assert broadcaster.tables[0] == {}       # that CPU's memory is gone
        assert broadcaster.current_state(T) == TxState.ACTIVE  # survivors know

    def test_restored_cpu_reseeded_at_next_broadcast(self, node, broadcaster):
        broadcaster.broadcast(T, TxState.ACTIVE)
        other = Transid("alpha", 1, 9)
        broadcaster.broadcast(other, TxState.ACTIVE)
        node.fail_cpu(0)
        node.restore_cpu(0)
        assert broadcaster.tables[0] == {}
        broadcaster.broadcast(T, TxState.ENDING)
        # The restored CPU learned about BOTH transactions via re-seed.
        assert broadcaster.tables[0][T] == TxState.ENDING
        assert broadcaster.tables[0][other] == TxState.ACTIVE

    def test_broadcast_returns_bus_time(self, node, broadcaster):
        cost = broadcaster.broadcast(T, TxState.ACTIVE)
        assert cost == node.latencies.bus_broadcast

    def test_live_transids(self, broadcaster):
        a = Transid("alpha", 0, 1)
        b = Transid("alpha", 0, 2)
        broadcaster.broadcast(a, TxState.ACTIVE)
        broadcaster.broadcast(b, TxState.ACTIVE)
        broadcaster.broadcast(a, TxState.ENDING)
        broadcaster.broadcast(a, TxState.ENDED)
        assert broadcaster.live_transids() == [b]

    def test_broadcast_counter(self, broadcaster):
        broadcaster.broadcast(T, TxState.ACTIVE)
        broadcaster.broadcast(T, TxState.ENDING)
        broadcaster.broadcast(T, TxState.ENDED)
        assert broadcaster.broadcasts == 3
