"""Property-based tests of the EXPAND-like network routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Network, NoRoute, Node
from repro.sim import Environment

NODE_NAMES = ["n0", "n1", "n2", "n3", "n4"]

# A topology: which of the 10 possible edges exist; plus which are up.
edges_strategy = st.lists(
    st.tuples(
        st.integers(0, 4), st.integers(0, 4), st.booleans()
    ).filter(lambda e: e[0] < e[1]),
    min_size=1,
    max_size=10,
    unique_by=lambda e: (e[0], e[1]),
)


def build(edges):
    env = Environment()
    network = Network(env)
    for name in NODE_NAMES:
        network.add_node(Node(env, name, cpu_count=2))
    lines = []
    for a, b, up in edges:
        line = network.connect(NODE_NAMES[a], NODE_NAMES[b])
        if not up:
            line.fail()
        lines.append(line)
    return network


def reference_reachable(edges, source, destination):
    """BFS over the up edges only."""
    adjacency = {i: set() for i in range(5)}
    for a, b, up in edges:
        if up:
            adjacency[a].add(b)
            adjacency[b].add(a)
    seen, frontier = {source}, [source]
    while frontier:
        here = frontier.pop()
        for neighbour in adjacency[here]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return destination in seen


@settings(max_examples=80, deadline=None)
@given(edges=edges_strategy, source=st.integers(0, 4), dest=st.integers(0, 4))
def test_route_iff_reachable(edges, source, dest):
    network = build(edges)
    expected = source == dest or reference_reachable(edges, source, dest)
    assert network.connected(NODE_NAMES[source], NODE_NAMES[dest]) == expected


@settings(max_examples=60, deadline=None)
@given(edges=edges_strategy, source=st.integers(0, 4), dest=st.integers(0, 4))
def test_routes_use_only_up_lines_and_are_minimal_hops(edges, source, dest):
    network = build(edges)
    if source == dest:
        assert network.route(NODE_NAMES[source], NODE_NAMES[dest]) == []
        return
    try:
        path = network.route(NODE_NAMES[source], NODE_NAMES[dest])
    except NoRoute:
        assert not reference_reachable(edges, source, dest)
        return
    # Path is contiguous, uses only up lines, ends at the destination.
    here = NODE_NAMES[source]
    for line in path:
        assert line.up
        here = line.other_end(here)
    assert here == NODE_NAMES[dest]
    # Minimal hop count vs reference BFS.
    def bfs_hops():
        adjacency = {i: set() for i in range(5)}
        for a, b, up in edges:
            if up:
                adjacency[a].add(b)
                adjacency[b].add(a)
        depth = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for node in frontier:
                for neighbour in adjacency[node]:
                    if neighbour not in depth:
                        depth[neighbour] = depth[node] + 1
                        nxt.append(neighbour)
            frontier = nxt
        return depth[dest]

    assert len(path) == bfs_hops()


@settings(max_examples=40, deadline=None)
@given(edges=edges_strategy)
def test_partition_disconnects_and_heal_restores(edges):
    network = build(edges)
    for line in network.lines:
        line.restore()
    group_a = NODE_NAMES[:2]
    group_b = NODE_NAMES[2:]
    network.partition(group_a, group_b)
    for a in group_a:
        for b in group_b:
            assert not network.connected(a, b)
    network.heal()
    # After heal every edge in the topology is up again: connectivity is
    # whatever the full topology gives.
    full = [(a, b, True) for a, b, _up in edges]
    for i, a in enumerate(NODE_NAMES):
        for j, b in enumerate(NODE_NAMES):
            if i < j:
                assert network.connected(a, b) == (
                    reference_reachable(full, i, j)
                )
