"""Direct protocol-level tests of the TMP message interface."""

import pytest

from repro.core import (
    TmpAbort,
    TmpAbortRemote,
    TmpCommit,
    TmpForceDisposition,
    TmpPhase1,
    TmpPhase2,
    TmpQuery,
    TmpRemoteBegin,
    Transid,
)
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec

from conftest import TmfRig


UNKNOWN = Transid("elsewhere", 1, 777)


@pytest.fixture
def rig():
    rig = TmfRig(nodes=("alpha", "beta"))
    rig.add_volume("alpha", "$data")
    rig.dictionary.define(
        FileSchema(
            name="p", organization=KEY_SEQUENCED, primary_key=("k",),
            audited=True, partitions=(PartitionSpec("alpha", "$data"),),
        )
    )
    return rig


def tmp_request(rig, node, payload):
    def body(proc):
        reply = yield from rig.cluster.fs(node).send(proc, "$TMP", payload)
        return reply

    return rig.run(node, body, name="$pr")


class TestProtocolEdges:
    def test_phase1_for_unknown_transid_votes_no(self, rig):
        reply = tmp_request(rig, "alpha", TmpPhase1(UNKNOWN))
        assert reply["vote"] == "no"

    def test_commit_for_unknown_transid_reports_aborted(self, rig):
        reply = tmp_request(rig, "alpha", TmpCommit(UNKNOWN))
        assert reply["disposition"] == "aborted"

    def test_abort_for_unknown_transid_is_noop(self, rig):
        reply = tmp_request(rig, "alpha", TmpAbort(UNKNOWN, "whatever"))
        assert reply["ok"]

    def test_phase2_for_unknown_transid_acks(self, rig):
        reply = tmp_request(rig, "alpha", TmpPhase2(UNKNOWN))
        assert reply["ok"]

    def test_query_unknown_reports_unknown(self, rig):
        reply = tmp_request(rig, "alpha", TmpQuery(UNKNOWN))
        assert reply["disposition"] == "unknown"
        assert reply["state"] == "gone"

    def test_force_disposition_unknown_is_noop(self, rig):
        reply = tmp_request(rig, "alpha", TmpForceDisposition(UNKNOWN, "aborted"))
        assert reply["ok"]

    def test_remote_begin_is_idempotent(self, rig):
        transid = Transid("beta", 0, 1)
        r1 = tmp_request(rig, "alpha", TmpRemoteBegin(transid, parent="beta"))
        r2 = tmp_request(rig, "alpha", TmpRemoteBegin(transid, parent="beta"))
        assert r1["ok"] and r2["ok"]
        record = rig.tmf["alpha"].records[transid]
        assert record.parent == "beta"
        assert not record.home
        # Exactly one ACTIVE broadcast despite two begins.
        actives = rig.cluster.tracer.select(
            "state_broadcast", transid=str(transid), state="active", node="alpha"
        )
        assert len(actives) == 1

    def test_unknown_payload_rejected(self, rig):
        reply = tmp_request(rig, "alpha", {"op": "gibberish"})
        assert reply["ok"] is False

    def test_commit_is_idempotent_after_disposition(self, rig):
        holder = {}

        def body(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("p"))
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "p", {"k": 1}, transid=transid)
            yield from tmf.end(proc, transid)
            r1 = yield from rig.cluster.fs("alpha").send(
                proc, "$TMP", TmpCommit(transid)
            )
            r2 = yield from rig.cluster.fs("alpha").send(
                proc, "$TMP", TmpCommit(transid)
            )
            holder["replies"] = (r1, r2)

        rig.run("alpha", body)
        r1, r2 = holder["replies"]
        assert r1["disposition"] == "committed"
        assert r2["disposition"] == "committed"
        # The data was applied exactly once.
        def check(proc):
            rows = yield from rig.clients["alpha"].scan(proc, "p")
            return rows

        assert len(rig.run("alpha", check, name="$c")) == 1

    def test_abort_remote_for_committed_transaction_is_ignored(self, rig):
        """A (bogus/stale) remote-abort after local commit must not undo
        anything: 'ended' and 'aborted' are terminal and exclusive."""
        holder = {}

        def body(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("p"))
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "p", {"k": 2}, transid=transid)
            yield from tmf.end(proc, transid)
            yield from rig.cluster.fs("alpha").send(
                proc, "$TMP", TmpAbortRemote(transid, "stale")
            )
            record = yield from client.read(proc, "p", (2,))
            holder["record"] = record
            holder["done"] = tmf.records[transid].done

        rig.run("alpha", body)
        assert holder["record"] == {"k": 2}
        assert holder["done"] == "committed"
