"""Tests pinning specific sentences of the paper to observable behaviour.

Each test quotes the passage it verifies.  These complement the broader
integration tests: they exist so that a change that silently diverges
from the paper's stated semantics fails loudly.
"""

import pytest

from repro.core import Transid, TransactionAborted
from repro.discprocess import (
    FileSchema,
    KEY_SEQUENCED,
    PartitionSpec,
)
from repro.encompass import SystemBuilder


def build_simple():
    builder = SystemBuilder(seed=71)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    builder.define_file(
        FileSchema(
            name="t",
            organization=KEY_SEQUENCED,
            primary_key=("k",),
            audited=True,
            partitions=(PartitionSpec("alpha", "$data"),),
        )
    )
    return builder.build()


class TestConcurrencyClauses:
    """Gray's clauses (a)-(d) as adopted in §Concurrency Control."""

    def test_clause_a_no_overwriting_dirty_data(self):
        """'(a) does not overwrite dirty data of other transactions' —
        enforced by the not-locked check + exclusive locks: T2 cannot
        update a record T1 holds dirty."""
        system = build_simple()
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]
        outcome = {}

        def t1(proc):
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "t", {"k": 1, "v": "t1"}, transid=transid)
            outcome["t1_inserted_at"] = system.env.now
            yield system.env.timeout(300)
            yield from tmf.end(proc, transid)
            outcome["t1_done_at"] = system.env.now

        def t2(proc):
            yield system.env.timeout(100)
            transid = yield from tmf.begin(proc)
            from repro.discprocess import LockTimeoutError, NotLockedError
            try:
                # No lock held: TMF verifies and rejects.
                yield from client.update(proc, "t", {"k": 1, "v": "t2"}, transid=transid)
                outcome["t2"] = "updated dirty data (BAD)"
            except NotLockedError:
                outcome["t2"] = "rejected not_locked"
            except LockTimeoutError:
                outcome["t2"] = "blocked by lock"
            yield from tmf.abort(proc, transid, "test")

        p1 = system.spawn("alpha", "$t1", t1, cpu=0)
        p2 = system.spawn("alpha", "$t2", t2, cpu=1)
        system.cluster.run(p1.sim_process)
        system.cluster.run(p2.sim_process)
        assert outcome["t2"] in ("rejected not_locked", "blocked by lock")

    def test_clause_c_reads_with_lock_block_on_dirty_data(self):
        """'(c) does not read dirty data' — a locked read of a record
        another transaction has modified waits for its outcome."""
        system = build_simple()
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]
        order = []

        def writer(proc):
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "t", {"k": 2, "v": "dirty"}, transid=transid)
            yield system.env.timeout(200)
            yield from tmf.abort(proc, transid, "writer aborts")
            order.append(("writer_aborted", system.env.now))

        def reader(proc):
            yield system.env.timeout(50)
            transid = yield from tmf.begin(proc)
            record = yield from client.read(
                proc, "t", (2,), transid=transid, lock=True, lock_timeout=2000
            )
            order.append(("reader_saw", record, system.env.now))
            yield from tmf.end(proc, transid)

        pw = system.spawn("alpha", "$w", writer, cpu=0)
        pr = system.spawn("alpha", "$r", reader, cpu=1)
        system.cluster.run(pw.sim_process)
        system.cluster.run(pr.sim_process)
        # The reader was granted the lock only after the abort, and saw
        # the backed-out state (None), never the dirty insert.
        assert order[0][0] == "writer_aborted"
        assert order[1][1] is None

    def test_clause_d_not_enforced_for_unlocked_reads(self):
        """'The observance of clause (d) is recommended ... but for
        system performance reasons is not enforced' — an unlocked browse
        CAN see uncommitted data.  This documents the paper's stated
        non-guarantee."""
        system = build_simple()
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]
        seen = {}

        def writer(proc):
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "t", {"k": 3, "v": "dirty"}, transid=transid)
            yield system.env.timeout(200)
            yield from tmf.abort(proc, transid, "never happened")

        def browser(proc):
            yield system.env.timeout(100)
            record = yield from client.read(proc, "t", (3,))  # no lock
            seen["browse"] = record

        pw = system.spawn("alpha", "$w", writer, cpu=0)
        pb = system.spawn("alpha", "$b", browser, cpu=1)
        system.cluster.run(pw.sim_process)
        system.cluster.run(pb.sim_process)
        assert seen["browse"] == {"k": 3, "v": "dirty"}


class TestTransidStructure:
    def test_transid_composition(self):
        """'The transid consists of a sequence number, qualified by the
        number of the processor in which BEGIN-TRANSACTION was called,
        qualified by the number of the network node.'"""
        system = build_simple()
        tmf = system.tmf["alpha"]
        holder = {}

        def body(proc):
            transid = yield from tmf.begin(proc)
            holder["transid"] = transid
            yield from tmf.abort(proc, transid)

        proc = system.spawn("alpha", "$b", body, cpu=3)
        system.cluster.run(proc.sim_process)
        transid = holder["transid"]
        assert transid.home_node == "alpha"
        assert transid.cpu == 3
        assert transid.sequence >= 1


class TestEndTransactionSemantics:
    def test_commit_is_irrevocable(self):
        """'At the completion of the execution of this verb, the
        transaction's data base updates become permanent and will not
        under any circumstances be backed out.'  An abort attempt after
        END must not undo anything."""
        system = build_simple()
        tmf = system.tmf["alpha"]
        client = system.clients["alpha"]

        def body(proc):
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "t", {"k": 9, "v": 1}, transid=transid)
            yield from tmf.end(proc, transid)
            # A later (stale) abort request is a no-op on the outcome.
            yield from tmf.abort(proc, transid, "too late")
            record = yield from client.read(proc, "t", (9,))
            return record, tmf.records[transid].done

        proc = system.spawn("alpha", "$b", body, cpu=0)
        record, done = system.cluster.run(proc.sim_process)
        assert record == {"k": 9, "v": 1}
        assert done == "committed"

    def test_new_transid_per_restart_attempt(self):
        """'A new transid is obtained for the new attempt at executing
        the logical transaction.'"""
        transids = []
        builder = SystemBuilder(seed=72)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data")

        def program(ctx, data):
            transids.append(str(ctx.transaction_id))
            if ctx.attempt < 2:
                ctx.restart_transaction("again")
            return "done"
            yield  # pragma: no cover

        builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=5)
        builder.add_program("alpha", "$tcp1", "p", program)
        builder.add_terminal("alpha", "$tcp1", "T0", "p")
        system = builder.build()
        reply = system.drive("alpha", "$tcp1", "T0", {})
        assert reply["ok"] and reply["attempts"] == 3
        assert len(set(transids)) == 3, "every attempt got a fresh transid"
