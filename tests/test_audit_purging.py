"""Audit-trail purging: files covered by archives are reclaimed, and
recovery still works afterwards."""

import pytest

from repro.core import (
    Rollforward,
    dump_volume,
    purge_audit_trails,
)
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec

from conftest import TmfRig
from test_rollforward import total_failure_and_restart


def schema():
    return FileSchema(
        name="accts",
        organization=KEY_SEQUENCED,
        primary_key=("aid",),
        audited=True,
        partitions=(PartitionSpec("alpha", "$data"),),
    )


@pytest.fixture
def rig():
    rig = TmfRig()
    rig.add_volume("alpha", "$data")
    rig.dictionary.define(schema())
    # Small trail files so purging has units to reclaim.
    rig.audit_processes["alpha"].trail.records_per_file = 8
    return rig


def commit_inserts(rig, proc, start, count):
    tmf = rig.tmf["alpha"]
    client = rig.clients["alpha"]
    for aid in range(start, start + count):
        transid = yield from tmf.begin(proc)
        yield from client.insert(
            proc, "accts", {"aid": aid, "balance": aid}, transid=transid
        )
        yield from tmf.end(proc, transid)


class TestPurging:
    def test_purge_reclaims_covered_files(self, rig):
        holder = {}

        def body(proc):
            yield from rig.clients["alpha"].create_file(
                proc, rig.dictionary.schema("accts")
            )
            yield from commit_inserts(rig, proc, 0, 30)
            holder["archive"] = dump_volume(rig.disc_processes[("alpha", "$data")])
            yield from commit_inserts(rig, proc, 100, 4)

        rig.run("alpha", body)
        trail = rig.audit_processes["alpha"].trail
        files_before = len(trail.file_names)
        purged = purge_audit_trails(rig.tmf["alpha"], [holder["archive"]])
        assert purged >= 2
        assert len(trail.file_names) == files_before - purged
        # Post-archive records are never purged.
        remaining = trail.scan_all()
        assert any(r.seq >= holder["archive"].taken_at_seq for r in remaining)

    def test_recovery_after_purge_is_still_exact(self, rig):
        from repro.apps.banking import check_consistency  # noqa: F401 (style)
        holder = {}

        def phase_one(proc):
            yield from rig.clients["alpha"].create_file(
                proc, rig.dictionary.schema("accts")
            )
            yield from commit_inserts(rig, proc, 0, 20)
            holder["archive"] = dump_volume(rig.disc_processes[("alpha", "$data")])
            yield from commit_inserts(rig, proc, 200, 6)

        rig.run("alpha", phase_one)
        purge_audit_trails(rig.tmf["alpha"], [holder["archive"]])
        total_failure_and_restart(rig, "alpha")

        def phase_two(proc):
            rollforward = Rollforward(rig.tmf["alpha"])
            rollforward.rebuild_dispositions()
            yield from rollforward.recover_volume(
                proc, rig.disc_processes[("alpha", "$data")], holder["archive"]
            )
            rows = yield from rig.clients["alpha"].scan(proc, "accts")
            return [k for k, _ in rows]

        keys = rig.run("alpha", phase_two, name="$rf")
        assert keys == [(i,) for i in range(20)] + [(i,) for i in range(200, 206)]

    def test_uncovered_volume_blocks_purge(self, rig):
        """A trail file holding another (unarchived) volume's images is
        kept."""
        rig.add_volume("alpha", "$data2", cpus=(2, 3))
        rig.dictionary.define(
            FileSchema(
                name="other",
                organization=KEY_SEQUENCED,
                primary_key=("k",),
                audited=True,
                partitions=(PartitionSpec("alpha", "$data2"),),
            )
        )
        holder = {}

        def body(proc):
            client = rig.clients["alpha"]
            tmf = rig.tmf["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("accts"))
            yield from client.create_file(proc, rig.dictionary.schema("other"))
            # Interleave both volumes into the same shared trail files.
            for i in range(12):
                transid = yield from tmf.begin(proc)
                yield from client.insert(
                    proc, "accts", {"aid": i, "balance": 0}, transid=transid
                )
                yield from client.insert(proc, "other", {"k": i}, transid=transid)
                yield from tmf.end(proc, transid)
            holder["archive"] = dump_volume(rig.disc_processes[("alpha", "$data")])

        rig.run("alpha", body)
        # Archive covers only $data; every file also holds $data2 images.
        purged = purge_audit_trails(rig.tmf["alpha"], [holder["archive"]])
        assert purged == 0
