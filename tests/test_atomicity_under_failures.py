"""The system-level atomicity property: under arbitrary single-module
failure schedules, the banking invariants hold and every driven unit is
applied exactly once or not at all.

This is the reproduction's strongest correctness evidence for the
paper's central claim — "recovery from failures is transparent to user
programs and does not require system halt or restart" with "logical
data base consistency guaranteed despite processor failure, application
process failure, network partition, transaction deadlock, or
application-requested transaction abort."
"""

import random

import pytest

from repro.apps.banking import (
    check_consistency,
    debit_credit_program,
    install_banking,
    populate_banking,
)
from repro.encompass import SystemBuilder
from repro.workloads import (
    FailureSchedule,
    random_failure_schedule,
    run_closed_loop,
)


def build_system(seed):
    builder = SystemBuilder(seed=seed, keep_trace=False)
    builder.add_node("alpha", cpus=4)
    # Terminals live on a separate front-end node: the failure schedule
    # targets the host node only, as in the paper's model (terminal
    # users are outside the failing system).
    builder.add_node("term", cpus=2)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_banking(builder, "alpha", "$data", server_instances=3)
    builder.add_tcp("alpha", "$tcp1", cpus=(2, 3), restart_limit=8)
    builder.add_program("alpha", "$tcp1", "debit-credit", debit_credit_program)
    for t in range(6):
        builder.add_terminal("alpha", "$tcp1", f"T{t}", "debit-credit")
    system = builder.build()
    populate_banking(system, "alpha", branches=2, tellers_per_branch=4,
                     accounts=20)
    return system


def drive_with_failures(seed, failure_kinds, failure_count, duration=6000.0):
    system = build_system(seed)
    rng = random.Random(seed * 7919)

    def make_input(r, terminal_id, iteration):
        return {
            "account_id": r.randrange(20),
            "teller_id": r.randrange(8),
            "branch_id": r.randrange(2),
            "amount": r.choice([5, 10, 25, -5]),
            "allow_overdraft": True,
        }

    # Protect one side of every mirror and one bus so the run cannot
    # reach an (expected, but out of scope here) multi-module data loss;
    # protect the terminal front-end node and the line to it entirely.
    protect = []
    node = system.cluster.node("alpha")
    for volume in node.volumes.values():
        protect.append(volume.drives[0])
        protect.extend(volume.controllers[:1])
    protect.append(node.buses.x)
    protect.extend(system.cluster.node("term").components())
    protect.extend(system.cluster.network.lines)
    events = random_failure_schedule(
        system.cluster, rng, duration, failure_count,
        kinds=failure_kinds, outage=800.0, protect=protect,
    )
    FailureSchedule(system.cluster, events)
    result = run_closed_loop(
        system,
        "term",
        "\\alpha.$tcp1",
        [f"T{t}" for t in range(6)],
        make_input,
        duration=duration,
        think_time=15.0,
        rng=rng,
    )
    # Drain any in-flight aborts/safe deliveries.
    settle = system.spawn(
        "alpha", "$settle", lambda p: (yield system.env.timeout(5000)), cpu=0
    )
    system.cluster.run(settle.sim_process)
    report = check_consistency(system, "alpha")
    return system, result, report, events


class TestAtomicityUnderFailures:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_cpu_failures_preserve_invariants(self, seed):
        system, result, report, events = drive_with_failures(
            seed, ("cpu",), failure_count=3
        )
        assert result.committed > 0, "workload must make progress"
        assert report["consistent"], f"invariants violated: {report}"
        # Exactly-once: the history file holds one record per committed
        # posting (amounts sum to the balance movement).
        assert report["history_sum"] == report["teller_total"]

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_mixed_component_failures_preserve_invariants(self, seed):
        system, result, report, events = drive_with_failures(
            seed, ("cpu", "bus", "controller", "drive"), failure_count=5
        )
        assert result.committed > 0
        assert report["consistent"], f"invariants violated: {report}"

    def test_commit_abort_accounting_matches_history(self):
        system, result, report, _events = drive_with_failures(
            21, ("cpu",), failure_count=2
        )
        # Every driver-observed commit contributed exactly one history
        # record; failed units contributed none.
        assert report["history_count"] == result.committed

    def test_no_failures_baseline(self):
        system, result, report, _events = drive_with_failures(
            31, ("cpu",), failure_count=0, duration=3000.0
        )
        assert result.failed == 0
        assert report["consistent"]
        assert report["history_count"] == result.committed
