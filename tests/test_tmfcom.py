"""The TMFCOM operator utility."""

import pytest

from repro.core import Tmfcom, TransactionAborted
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec

from conftest import TmfRig


def schema(node="alpha"):
    return FileSchema(
        name="ops",
        organization=KEY_SEQUENCED,
        primary_key=("k",),
        audited=True,
        partitions=(PartitionSpec(node, "$data"),),
    )


@pytest.fixture
def rig():
    rig = TmfRig()
    rig.add_volume("alpha", "$data")
    rig.dictionary.define(schema())
    return rig


class TestStatus:
    def test_status_counts_and_health(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])

        def body(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("ops"))
            for k in range(3):
                transid = yield from tmf.begin(proc)
                yield from client.insert(proc, "ops", {"k": k}, transid=transid)
                if k == 2:
                    yield from tmf.abort(proc, transid)
                else:
                    yield from tmf.end(proc, transid)

        rig.run("alpha", body)
        status = tmfcom.status()
        assert status["commits"] == 2
        assert status["aborts"] == 1
        assert status["tmp_available"]
        assert status["audit_processes"]["$aud"]["available"]
        text = tmfcom.render_status()
        assert "TMF STATUS" in text and "commits: 2" in text

    def test_transactions_listing_shows_active(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])
        holder = {}

        def body(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("ops"))
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "ops", {"k": 9}, transid=transid)
            holder["rows"] = tmfcom.transactions(state="active")
            yield from tmf.end(proc, transid)
            holder["after"] = tmfcom.transactions(state="active")

        rig.run("alpha", body)
        assert len(holder["rows"]) == 1
        assert holder["rows"][0]["volumes"] == ["$data"]
        assert holder["after"] == []

    def test_disposition_info(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])
        holder = {}

        def body(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("ops"))
            transid = yield from tmf.begin(proc)
            yield from client.insert(proc, "ops", {"k": 1}, transid=transid)
            yield from tmf.end(proc, transid)
            holder["info"] = tmfcom.disposition(transid)

        rig.run("alpha", body)
        assert holder["info"]["disposition"] == "committed"


class TestScreens:
    """The status()/transactions() screens, plus INFO TRANSACTION, TRACE."""

    def test_transactions_unfiltered_lists_finished_units(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])

        def body(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("ops"))
            committed = yield from tmf.begin(proc)
            yield from client.insert(proc, "ops", {"k": 1}, transid=committed)
            yield from tmf.end(proc, committed)
            aborted = yield from tmf.begin(proc)
            yield from client.insert(proc, "ops", {"k": 2}, transid=aborted)
            yield from tmf.abort(proc, aborted)

        rig.run("alpha", body)
        rows = tmfcom.transactions()
        assert len(rows) == 2
        by_state = {row["state"] for row in rows}
        assert by_state == {"ended", "aborted"} or by_state == {
            "committed", "aborted"
        }
        for row in rows:
            assert row["home"] is True      # this node began them
            assert row["volumes"] == ["$data"]
        # And the filtered view is consistent with the full listing.
        assert tmfcom.transactions(state="active") == []

    def test_status_reports_audit_backlog_fields(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])
        status = tmfcom.status()
        assert status["node"] == "alpha"
        assert status["active_transactions"] == 0
        assert status["safe_delivery_backlog"] == 0
        aud = status["audit_processes"]["$aud"]
        assert set(aud) == {"available", "trail_files", "trail_records",
                            "buffered"}
        text = tmfcom.render_status()
        assert "$aud: up" in text

    def test_trace_screen_without_collector(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])
        assert "tracing not enabled" in tmfcom.trace("\\alpha.0.1")

    def test_trace_screen_delegates_to_collector(self, rig):
        class FakeCollector:
            def has_trace(self, transid):
                return str(transid) == "\\alpha.0.1"

            def trace_of(self, transid):
                class Trace:
                    def render(self):
                        return "TRANSACTION \\alpha.0.1 — 1 spans"
                return Trace()

        tmfcom = Tmfcom(rig.tmf["alpha"], collector=FakeCollector())
        assert tmfcom.trace("\\alpha.0.1") == "TRANSACTION \\alpha.0.1 — 1 spans"
        assert "no trace recorded" in tmfcom.trace("\\alpha.0.2")


class TestResolution:
    def test_remote_query_and_force(self):
        """The full manual-override workflow through TMFCOM."""
        rig = TmfRig(nodes=("home", "remote"))
        rig.add_volume("remote", "$data")
        rig.dictionary.define(
            FileSchema(
                name="ops", organization=KEY_SEQUENCED, primary_key=("k",),
                audited=True, partitions=(PartitionSpec("remote", "$data"),),
            )
        )
        tmf_home = rig.tmf["home"]
        tmf_remote = rig.tmf["remote"]
        tmfcom_remote = Tmfcom(tmf_remote)
        observations = {}

        def committer(proc, transid):
            try:
                yield from tmf_home.end(proc, transid)
                observations["home"] = "committed"
            except TransactionAborted:
                observations["home"] = "aborted"

        def body(proc):
            client = rig.clients["home"]
            yield from client.create_file(proc, rig.dictionary.schema("ops"))
            transid = yield from tmf_home.begin(proc)
            yield from client.insert(proc, "ops", {"k": 5}, transid=transid)
            c = rig.cluster.os("home").spawn(
                "$c", 1, lambda p: committer(p, transid), register=False
            )
            while not tmf_remote.records[transid].phase1_acked:
                yield rig.cluster.env.timeout(1)
            rig.cluster.network.partition(["home"], ["remote"])
            yield c.sim_process
            observations["transid"] = transid

        rig.run("home", body)
        assert observations["home"] == "committed"
        transid = observations["transid"]

        # On the stranded node: query fails (home unreachable), operator
        # learns the disposition out of band, forces it.
        def operator(proc):
            asked = yield from tmfcom_remote.query_remote_disposition(proc, transid)
            observations["query_during_partition"] = asked["disposition"]
            info = yield from tmfcom_remote.force_disposition(
                proc, transid, "committed"
            )
            observations["forced"] = info["disposition"]

        op = rig.cluster.os("remote").spawn("$op", 0, operator, register=False)
        rig.cluster.run(op.sim_process)
        assert observations["query_during_partition"] == "unknown"
        assert observations["forced"] == "committed"
        assert rig.disc_processes[("remote", "$data")].locks.held_count() == 0
        rig.cluster.network.heal()

    def test_force_validates_disposition(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])

        def body(proc):
            from repro.core import Transid
            with pytest.raises(ValueError):
                yield from tmfcom.force_disposition(
                    proc, Transid("alpha", 0, 1), "maybe"
                )
            return True

        assert rig.run("alpha", body)


class TestArchiveOps:
    def test_dump_recover_purge_cycle(self, rig):
        from test_rollforward import total_failure_and_restart

        tmfcom = Tmfcom(rig.tmf["alpha"])
        rig.audit_processes["alpha"].trail.records_per_file = 8
        holder = {}

        def phase_one(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("ops"))
            for k in range(10):
                transid = yield from tmf.begin(proc)
                yield from client.insert(proc, "ops", {"k": k}, transid=transid)
                yield from tmf.end(proc, transid)
            holder["archive"] = tmfcom.dump_volume("$data")
            for k in range(100, 104):
                transid = yield from tmf.begin(proc)
                yield from client.insert(proc, "ops", {"k": k}, transid=transid)
                yield from tmf.end(proc, transid)

        rig.run("alpha", phase_one)
        purged = tmfcom.purge_audit([holder["archive"]])
        assert purged >= 1
        total_failure_and_restart(rig, "alpha")

        def phase_two(proc):
            stats = yield from tmfcom.recover_volume(proc, holder["archive"])
            rows = yield from rig.clients["alpha"].scan(proc, "ops")
            return stats, [k[0] for k, _ in rows]

        stats, keys = rig.run("alpha", phase_two, name="$rf")
        assert keys == list(range(10)) + [100, 101, 102, 103]

    def test_dump_unknown_volume(self, rig):
        tmfcom = Tmfcom(rig.tmf["alpha"])
        with pytest.raises(KeyError):
            tmfcom.dump_volume("$nope")
