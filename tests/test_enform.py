"""The non-procedural query/report language and its access planner."""

import pytest

from repro.apps.order_entry import install_order_entry, populate_order_entry
from repro.encompass import EnformError, SystemBuilder, compile_query


@pytest.fixture(scope="module")
def system():
    builder = SystemBuilder(seed=66)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_order_entry(builder, "alpha", "$data")
    system = builder.build()
    populate_order_entry(system, "alpha", customers=12, items=20, stock=50,
                         price=7)
    return system


def run_query(system, source):
    query = compile_query(source, system.dictionary)
    holder = {}

    def body(proc):
        result = yield from query.execute(proc, system.clients["alpha"])
        holder["result"] = result

    proc = system.spawn("alpha", "$q", body, cpu=0)
    system.cluster.run(proc.sim_process)
    return query, holder["result"]


class TestCompile:
    def test_requires_from(self, system):
        with pytest.raises(EnformError):
            compile_query("SELECT x", system.dictionary)

    def test_unknown_file(self, system):
        with pytest.raises(Exception):
            compile_query("FROM nonexistent", system.dictionary)

    def test_bad_condition(self, system):
        with pytest.raises(EnformError):
            compile_query("FROM customer\nWHERE region !! 3", system.dictionary)

    def test_duplicate_clause(self, system):
        with pytest.raises(EnformError):
            compile_query("FROM customer\nFROM item", system.dictionary)

    def test_unknown_clause(self, system):
        with pytest.raises(EnformError):
            compile_query("FROM customer\nFETCH 10", system.dictionary)


class TestPlanner:
    def test_alternate_key_equality_uses_index(self, system):
        query = compile_query(
            'FROM customer\nWHERE region = "west"', system.dictionary
        )
        assert query.plan == "index-lookup"
        assert "region" in query.plan_detail

    def test_primary_key_range_uses_btree(self, system):
        query = compile_query(
            "FROM customer\nWHERE customer_id >= 3 AND customer_id <= 7",
            system.dictionary,
        )
        assert query.plan == "key-range"

    def test_primary_key_equality_is_range_of_one(self, system):
        query = compile_query(
            "FROM customer\nWHERE customer_id = 4", system.dictionary
        )
        assert query.plan == "key-range"
        assert query.plan_args == ((4,), (4,))

    def test_unindexed_predicate_full_scans(self, system):
        query = compile_query(
            'FROM customer\nWHERE name = "customer 3"', system.dictionary
        )
        assert query.plan == "full-scan"


class TestExecution:
    def test_projection_and_where(self, system):
        _query, result = run_query(system, """
            FROM customer
            SELECT customer_id, region
            WHERE region = "west"
        """)
        assert result.plan == "index-lookup"
        assert all(set(r) == {"customer_id", "region"} for r in result.rows)
        assert all(r["region"] == "west" for r in result.rows)
        assert sorted(r["customer_id"] for r in result.rows) == [0, 3, 6, 9]

    def test_range_and_order_desc(self, system):
        _query, result = run_query(system, """
            FROM item
            SELECT item_id
            WHERE item_id >= 5 AND item_id < 9
            ORDER BY item_id DESC
        """)
        assert [r["item_id"] for r in result.rows] == [8, 7, 6, 5]

    def test_total_and_count(self, system):
        _query, result = run_query(system, """
            FROM item
            WHERE item_id < 4
            TOTAL stock
            COUNT
        """)
        assert result.totals == {"stock": 4 * 50}
        assert result.count == 4

    def test_first_limits_rows(self, system):
        _query, result = run_query(system, """
            FROM customer
            ORDER BY customer_id
            FIRST 3
        """)
        assert [r["customer_id"] for r in result.rows] == [0, 1, 2]

    def test_report_rendering(self, system):
        _query, result = run_query(system, """
            FROM customer
            SELECT customer_id, region
            WHERE customer_id < 2
            COUNT
        """)
        text = result.render()
        assert "CUSTOMER_ID" in text and "REGION" in text
        assert "COUNT: 2" in text

    def test_string_comparisons(self, system):
        _query, result = run_query(system, """
            FROM customer
            WHERE region <> "west"
            COUNT
        """)
        assert result.count == 8

    def test_entry_sequenced_reportable(self, system):
        # order_log starts empty; report should still run (0 rows).
        _query, result = run_query(system, "FROM order_log\nCOUNT")
        assert result.count == 0

    def test_queries_are_browse_access(self, system):
        """Queries take no locks: no lock activity on the volume."""
        dp = system.disc_processes[("alpha", "$data")]
        before = dp.locks.grants
        run_query(system, 'FROM customer\nWHERE region = "eu"')
        assert dp.locks.grants == before
