"""Unit tests for the File System layer: transid export dedupe and the
automatic remote-transaction-begin protocol."""

import pytest

from repro.core import Transid, TransactionAborted
from repro.guardian import Cluster, FileSystemError


def echo_server(proc):
    while True:
        message = yield from proc.receive()
        proc.reply(message, {"ok": True, "transid": str(message.transid)})


class ExportRecorder:
    """A fake transid exporter standing in for the TMP protocol."""

    def __init__(self, fail_for=()):
        self.calls = []
        self.fail_for = set(fail_for)

    def __call__(self, proc, transid, dest_node):
        self.calls.append((str(transid), dest_node))
        if dest_node in self.fail_for:
            raise TransactionAborted(transid, f"remote begin to {dest_node} failed")
        return
        yield  # pragma: no cover


@pytest.fixture
def cluster():
    cluster = Cluster(seed=6)
    for name in ("a", "b", "c"):
        cluster.add_node(name, cpu_count=2)
    cluster.connect_all()
    cluster.os("b").spawn("$echo", 0, echo_server)
    cluster.os("c").spawn("$echo", 0, echo_server)
    return cluster


T = Transid("a", 0, 1)


class TestTransidExport:
    def test_exporter_called_for_remote_sends_with_transid(self, cluster):
        recorder = ExportRecorder()
        cluster.fs("a").transid_exporter = recorder

        def body(proc):
            yield from cluster.fs("a").send(proc, "\\b.$echo", {}, transid=T)
            yield from cluster.fs("a").send(proc, "\\c.$echo", {}, transid=T)
            return recorder.calls

        proc = cluster.os("a").spawn("$t", 0, body, register=False)
        calls = cluster.run(proc.sim_process)
        assert calls == [(str(T), "b"), (str(T), "c")]

    def test_no_export_for_local_sends(self, cluster):
        recorder = ExportRecorder()
        cluster.fs("a").transid_exporter = recorder
        cluster.os("a").spawn("$echo", 1, echo_server)

        def body(proc):
            yield from cluster.fs("a").send(proc, "$echo", {}, transid=T)
            return recorder.calls

        proc = cluster.os("a").spawn("$t", 0, body, register=False)
        assert cluster.run(proc.sim_process) == []

    def test_no_export_without_transid(self, cluster):
        recorder = ExportRecorder()
        cluster.fs("a").transid_exporter = recorder

        def body(proc):
            yield from cluster.fs("a").send(proc, "\\b.$echo", {})
            return recorder.calls

        proc = cluster.os("a").spawn("$t", 0, body, register=False)
        assert cluster.run(proc.sim_process) == []

    def test_failed_export_aborts_the_send(self, cluster):
        recorder = ExportRecorder(fail_for={"b"})
        cluster.fs("a").transid_exporter = recorder

        def body(proc):
            try:
                yield from cluster.fs("a").send(proc, "\\b.$echo", {}, transid=T)
            except TransactionAborted:
                return "aborted"

        proc = cluster.os("a").spawn("$t", 0, body, register=False)
        assert cluster.run(proc.sim_process) == "aborted"

    def test_transid_piggybacks_on_message(self, cluster):
        cluster.fs("a").transid_exporter = ExportRecorder()

        def body(proc):
            reply = yield from cluster.fs("a").send(proc, "\\b.$echo", {}, transid=T)
            return reply["transid"]

        proc = cluster.os("a").spawn("$t", 0, body, register=False)
        assert cluster.run(proc.sim_process) == str(T)


class TestRealExportDedupe:
    def test_tmf_exports_once_per_destination(self):
        """The real TMP protocol: 'the TMP on the sending node determines
        whether the destination node has received a previous transmission
        of the requesting transid from the sending node' — the second
        send to the same node skips the remote begin."""
        from conftest import TmfRig

        rig = TmfRig(nodes=("a", "b"))
        rig.add_volume("b", "$data")
        from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec
        rig.dictionary.define(
            FileSchema(
                name="f", organization=KEY_SEQUENCED, primary_key=("k",),
                audited=True, partitions=(PartitionSpec("b", "$data"),),
            )
        )
        tmf = rig.tmf["a"]

        def body(proc):
            yield from rig.clients["a"].create_file(proc, rig.dictionary.schema("f"))
            transid = yield from tmf.begin(proc)
            yield from rig.clients["a"].insert(proc, "f", {"k": 1}, transid=transid)
            yield from rig.clients["a"].insert(proc, "f", {"k": 2}, transid=transid)
            yield from rig.clients["a"].insert(proc, "f", {"k": 3}, transid=transid)
            yield from tmf.end(proc, transid)
            return True

        assert rig.run("a", body)
        assert tmf.remote_begins_sent == 1  # three sends, one remote begin
