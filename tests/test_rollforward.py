"""ROLLFORWARD: recovery from total node failure.

Archive + after-images of committed transactions reconstruct the data
base; uncommitted work is discarded; transactions caught in ENDING are
resolved by negotiating with their home node.
"""

import pytest

from repro.core import Rollforward, TransactionAborted, dump_volume
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec

from conftest import TmfRig


def schema_for(node):
    return FileSchema(
        name=f"{node}_accts",
        organization=KEY_SEQUENCED,
        primary_key=("aid",),
        audited=True,
        partitions=(PartitionSpec(node, "$data"),),
    )


def total_failure_and_restart(rig, node_name):
    """Crash every CPU, restore hardware, cold-restart all pairs."""
    node = rig.cluster.node(node_name)
    node.total_failure()
    node.restore_all_cpus()
    rig.audit_processes[node_name].cold_restart(2, 3)
    rig.tmf[node_name].tmp.restart(2, 3)
    rig.tmf[node_name].backout_process.restart(2, 3)
    rig.tmf[node_name].reset_after_total_failure()
    rig.disc_processes[(node_name, "$data")].cold_restart(0, 1)


class TestSingleNodeRollforward:
    def _populate(self, rig, proc, n_committed_before, n_after, n_uncommitted):
        """Create the file, commit, archive, commit more, leave one open."""
        tmf = rig.tmf["alpha"]
        client = rig.clients["alpha"]
        yield from client.create_file(proc, rig.dictionary.schema("alpha_accts"))
        for i in range(n_committed_before):
            transid = yield from tmf.begin(proc)
            yield from client.insert(
                proc, "alpha_accts", {"aid": i, "balance": 100 + i}, transid=transid
            )
            yield from tmf.end(proc, transid)
        archive = dump_volume(rig.disc_processes[("alpha", "$data")])
        for i in range(n_committed_before, n_committed_before + n_after):
            transid = yield from tmf.begin(proc)
            yield from client.insert(
                proc, "alpha_accts", {"aid": i, "balance": 100 + i}, transid=transid
            )
            yield from tmf.end(proc, transid)
        # Uncommitted work: audit may or may not be on the trail, but no
        # commit record exists — rollforward must discard it.
        transid = yield from tmf.begin(proc)
        for i in range(n_uncommitted):
            yield from client.insert(
                proc, "alpha_accts", {"aid": 900 + i, "balance": -1}, transid=transid
            )
        return archive

    def test_recovery_restores_exactly_committed_state(self, tmf_rig):
        tmf_rig.dictionary.define(schema_for("alpha"))
        holder = {}

        def phase_one(proc):
            archive = yield from self._populate(tmf_rig, proc, 5, 7, 3)
            holder["archive"] = archive

        tmf_rig.run("alpha", phase_one)
        total_failure_and_restart(tmf_rig, "alpha")

        def phase_two(proc):
            rollforward = Rollforward(tmf_rig.tmf["alpha"])
            rollforward.rebuild_dispositions()
            stats = yield from rollforward.recover_volume(
                proc, tmf_rig.disc_processes[("alpha", "$data")], holder["archive"]
            )
            rows = yield from tmf_rig.clients["alpha"].scan(proc, "alpha_accts")
            return stats, rows

        stats, rows = tmf_rig.run("alpha", phase_two, name="$rf")
        keys = [k for k, _ in rows]
        assert keys == [(i,) for i in range(12)]        # 5 + 7 committed
        assert all(r["balance"] == 100 + k[0] for k, r in rows)
        assert stats.transactions_discarded >= 0
        assert stats.records_reapplied >= 7             # the post-archive commits

    def test_updates_and_deletes_replay_correctly(self, tmf_rig):
        tmf_rig.dictionary.define(schema_for("alpha"))
        holder = {}

        def phase_one(proc):
            tmf = tmf_rig.tmf["alpha"]
            client = tmf_rig.clients["alpha"]
            yield from client.create_file(proc, tmf_rig.dictionary.schema("alpha_accts"))
            transid = yield from tmf.begin(proc)
            for i in range(4):
                yield from client.insert(
                    proc, "alpha_accts", {"aid": i, "balance": 0}, transid=transid
                )
            yield from tmf.end(proc, transid)
            holder["archive"] = dump_volume(tmf_rig.disc_processes[("alpha", "$data")])
            # post-archive: update 0, delete 1, insert 9 — all committed
            transid = yield from tmf.begin(proc)
            rec = yield from client.read(proc, "alpha_accts", (0,), transid=transid, lock=True)
            rec["balance"] = 777
            yield from client.update(proc, "alpha_accts", rec, transid=transid)
            yield from client.read(proc, "alpha_accts", (1,), transid=transid, lock=True)
            yield from client.delete(proc, "alpha_accts", (1,), transid=transid)
            yield from client.insert(
                proc, "alpha_accts", {"aid": 9, "balance": 9}, transid=transid
            )
            yield from tmf.end(proc, transid)
            # and one committed-then-aborted pair of transactions
            transid = yield from tmf.begin(proc)
            rec = yield from client.read(proc, "alpha_accts", (2,), transid=transid, lock=True)
            rec["balance"] = -5
            yield from client.update(proc, "alpha_accts", rec, transid=transid)
            yield from tmf.abort(proc, transid)

        tmf_rig.run("alpha", phase_one)
        total_failure_and_restart(tmf_rig, "alpha")

        def phase_two(proc):
            rollforward = Rollforward(tmf_rig.tmf["alpha"])
            rollforward.rebuild_dispositions()
            yield from rollforward.recover_volume(
                proc, tmf_rig.disc_processes[("alpha", "$data")], holder["archive"]
            )
            rows = yield from tmf_rig.clients["alpha"].scan(proc, "alpha_accts")
            return {k: r["balance"] for k, r in rows}

        result = tmf_rig.run("alpha", phase_two, name="$rf")
        assert result == {(0,): 777, (2,): 0, (3,): 0, (9,): 9}

    def test_volume_is_down_until_rollforward(self, tmf_rig):
        tmf_rig.dictionary.define(schema_for("alpha"))
        holder = {}

        def phase_one(proc):
            archive = yield from self._populate(tmf_rig, proc, 2, 0, 0)
            holder["archive"] = archive

        tmf_rig.run("alpha", phase_one)
        total_failure_and_restart(tmf_rig, "alpha")

        def phase_two(proc):
            from repro.discprocess import FileUnavailableError
            try:
                yield from tmf_rig.clients["alpha"].read(proc, "alpha_accts", (0,))
            except FileUnavailableError:
                return "down"

        assert tmf_rig.run("alpha", phase_two, name="$chk") == "down"


class TestEndingNegotiation:
    def test_remote_participant_negotiates_committed(self):
        """A participant that crashed between phase 1 and phase 2 asks the
        transaction's home node for the disposition."""
        rig = TmfRig(nodes=("alpha", "beta"))
        rig.add_volume("alpha", "$data")
        rig.add_volume("beta", "$data")
        rig.dictionary.define(schema_for("alpha"))
        holder = {}

        def committer(proc, transid, tmf_b):
            try:
                yield from tmf_b.end(proc, transid)
                holder["home"] = "committed"
            except TransactionAborted:
                holder["home"] = "aborted"

        def phase_one(proc):
            # beta is home; the data lives on alpha.
            tmf_b = rig.tmf["beta"]
            client_b = rig.clients["beta"]
            yield from client_b.create_file(proc, rig.dictionary.schema("alpha_accts"))
            holder["archive"] = dump_volume(rig.disc_processes[("alpha", "$data")])
            transid = yield from tmf_b.begin(proc)
            holder["transid"] = transid
            yield from client_b.insert(
                proc, "alpha_accts", {"aid": 1, "balance": 11}, transid=transid
            )
            c = rig.cluster.os("beta").spawn(
                "$c", 1, lambda p: committer(p, transid, tmf_b), register=False
            )
            # Cut alpha off the moment it acks phase 1, so phase 2 never
            # arrives before the crash.
            while not rig.tmf["alpha"].records[transid].phase1_acked:
                yield rig.cluster.env.timeout(1)
            rig.cluster.network.partition(["beta"], ["alpha"])
            yield c.sim_process

        rig.run("beta", phase_one)
        assert holder["home"] == "committed"
        total_failure_and_restart(rig, "alpha")
        rig.cluster.network.heal()

        def phase_two(proc):
            rollforward = Rollforward(rig.tmf["alpha"])
            rollforward.rebuild_dispositions()
            stats = yield from rollforward.recover_volume(
                proc, rig.disc_processes[("alpha", "$data")], holder["archive"]
            )
            record = yield from rig.clients["alpha"].read(proc, "alpha_accts", (1,))
            return stats, record

        stats, record = rig.run("alpha", phase_two, name="$rf")
        assert stats.negotiated == 1
        assert record == {"aid": 1, "balance": 11}

    def test_home_node_rule_discards_unresolved(self):
        """No commit record at the home node => the transaction aborts."""
        rig = TmfRig(nodes=("alpha",))
        rig.add_volume("alpha", "$data")
        rig.dictionary.define(schema_for("alpha"))
        holder = {}

        def phase_one(proc):
            tmf = rig.tmf["alpha"]
            client = rig.clients["alpha"]
            yield from client.create_file(proc, rig.dictionary.schema("alpha_accts"))
            holder["archive"] = dump_volume(rig.disc_processes[("alpha", "$data")])
            transid = yield from tmf.begin(proc)
            yield from client.insert(
                proc, "alpha_accts", {"aid": 1, "balance": 1}, transid=transid
            )
            # Force the audit to the trail (as phase one would: drain
            # the volume's boxcar, then force the trail), but crash
            # before the commit record is written.
            from repro.core import ForceAudit
            from repro.discprocess import ForceBoxcar
            yield from rig.cluster.fs("alpha").send(proc, "$data", ForceBoxcar(transid))
            yield from rig.cluster.fs("alpha").send(proc, "$aud", ForceAudit(transid))

        rig.run("alpha", phase_one)
        total_failure_and_restart(rig, "alpha")

        def phase_two(proc):
            rollforward = Rollforward(rig.tmf["alpha"])
            rollforward.rebuild_dispositions()
            stats = yield from rollforward.recover_volume(
                proc, rig.disc_processes[("alpha", "$data")], holder["archive"]
            )
            rows = yield from rig.clients["alpha"].scan(proc, "alpha_accts")
            return stats, rows

        stats, rows = rig.run("alpha", phase_two, name="$rf")
        assert rows == []
        assert stats.transactions_discarded == 1
