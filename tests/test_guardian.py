"""Unit and integration tests for the GUARDIAN-like OS layer."""

import pytest

from repro.guardian import (
    Cluster,
    FileSystemError,
    PathDown,
    ProcessDied,
    ProcessPair,
    ProcessUnavailable,
    ReceiveTimeout,
    parse_destination,
)


def make_cluster(nodes=("alpha",), cpus=4):
    cluster = Cluster(seed=1)
    for name in nodes:
        cluster.add_node(name, cpu_count=cpus)
    cluster.connect_all()
    return cluster


def echo_server(proc):
    while True:
        message = yield from proc.receive()
        proc.reply(message, ("echo", message.payload, message.transid))


class TestNames:
    def test_parse_local(self):
        assert parse_destination("alpha", "$srv") == ("alpha", "$srv")

    def test_parse_network(self):
        assert parse_destination("alpha", "\\beta.$srv") == ("beta", "$srv")

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            parse_destination("alpha", "\\beta")


class TestMessaging:
    def test_local_request_reply(self):
        cluster = make_cluster()
        node_os = cluster.os("alpha")
        node_os.spawn("$echo", 0, echo_server)

        def client(proc):
            reply = yield from proc.request("alpha", "$echo", "hi")
            return reply

        client_proc = node_os.spawn("$client", 1, client)
        result = cluster.run(client_proc.sim_process)
        assert result == ("echo", "hi", None)
        # Cross-CPU request+reply cost two bus transits.
        assert cluster.env.now == pytest.approx(2 * cluster.latencies.bus_message)

    def test_same_cpu_is_cheaper_than_cross_cpu(self):
        cluster = make_cluster()
        node_os = cluster.os("alpha")
        node_os.spawn("$echo", 0, echo_server)

        def client(proc):
            yield from proc.request("alpha", "$echo", "x")
            return cluster.env.now

        same = node_os.spawn("$c1", 0, client)
        t_same = cluster.run(same.sim_process)
        assert t_same == pytest.approx(2 * cluster.latencies.local_message)

    def test_remote_request(self):
        cluster = make_cluster(("alpha", "beta"))
        cluster.os("beta").spawn("$echo", 0, echo_server)

        def client(proc):
            reply = yield from proc.request("beta", "$echo", "remote")
            return (reply, cluster.env.now)

        proc = cluster.os("alpha").spawn("$client", 0, client)
        reply, elapsed = cluster.run(proc.sim_process)
        assert reply == ("echo", "remote", None)
        assert elapsed == pytest.approx(2 * cluster.latencies.network_hop)

    def test_unknown_name_unavailable(self):
        cluster = make_cluster()

        def client(proc):
            try:
                yield from proc.request("alpha", "$ghost", "x")
            except ProcessUnavailable:
                return "unavailable"

        proc = cluster.os("alpha").spawn("$client", 0, client)
        assert cluster.run(proc.sim_process) == "unavailable"

    def test_partition_raises_pathdown(self):
        cluster = make_cluster(("alpha", "beta"))
        cluster.os("beta").spawn("$echo", 0, echo_server)
        cluster.network.partition(["alpha"], ["beta"])

        def client(proc):
            try:
                yield from proc.request("beta", "$echo", "x")
            except PathDown:
                return "pathdown"

        proc = cluster.os("alpha").spawn("$client", 0, client)
        assert cluster.run(proc.sim_process) == "pathdown"

    def test_server_death_mid_request_fails_requester(self):
        cluster = make_cluster()
        node_os = cluster.os("alpha")

        def slow_server(proc):
            message = yield from proc.receive()
            yield cluster.env.timeout(100)  # dies before this completes
            proc.reply(message, "too late")

        node_os.spawn("$slow", 0, slow_server)

        def client(proc):
            try:
                yield from proc.request("alpha", "$slow", "x")
            except ProcessDied:
                return ("died", cluster.env.now)

        proc = node_os.spawn("$client", 1, client)

        def saboteur(p):
            yield cluster.env.timeout(10)
            cluster.node("alpha").fail_cpu(0)

        node_os_proc = node_os.spawn("$sab", 2, saboteur, register=False)
        result = cluster.run(proc.sim_process)
        assert result == ("died", 10)

    def test_request_timeout(self):
        cluster = make_cluster()
        node_os = cluster.os("alpha")

        def silent_server(proc):
            while True:
                yield from proc.receive()
                # never replies

        node_os.spawn("$silent", 0, silent_server)

        def client(proc):
            from repro.guardian import RequestTimeout
            try:
                yield from proc.request("alpha", "$silent", "x", timeout=50)
            except RequestTimeout:
                return cluster.env.now

        proc = node_os.spawn("$client", 1, client)
        assert cluster.run(proc.sim_process) == pytest.approx(50 + cluster.latencies.bus_message)

    def test_receive_timeout(self):
        cluster = make_cluster()

        def lonely(proc):
            try:
                yield from proc.receive(timeout=25)
            except ReceiveTimeout:
                return cluster.env.now

        proc = cluster.os("alpha").spawn("$lonely", 0, lonely)
        assert cluster.run(proc.sim_process) == 25

    def test_reply_lost_on_partition_mid_request(self):
        cluster = make_cluster(("alpha", "beta"))

        def server(proc):
            message = yield from proc.receive()
            yield cluster.env.timeout(50)
            cluster.network.partition(["alpha"], ["beta"])
            proc.reply(message, "lost")

        cluster.os("beta").spawn("$srv", 0, server)

        def client(proc):
            from repro.guardian import RequestTimeout
            try:
                yield from proc.request("beta", "$srv", "x", timeout=200)
            except RequestTimeout:
                return "timed out"

        proc = cluster.os("alpha").spawn("$client", 0, client)
        assert cluster.run(proc.sim_process) == "timed out"


class TestNodeOs:
    def test_cpu_failure_kills_resident_processes(self):
        cluster = make_cluster()
        node_os = cluster.os("alpha")
        node_os.spawn("$a", 0, echo_server)
        node_os.spawn("$b", 1, echo_server)
        cluster.node("alpha").fail_cpu(0)
        assert node_os.lookup("$a") is None
        assert node_os.lookup("$b") is not None

    def test_duplicate_live_name_rejected(self):
        cluster = make_cluster()
        node_os = cluster.os("alpha")
        node_os.spawn("$x", 0, echo_server)
        with pytest.raises(RuntimeError):
            node_os.spawn("$x", 1, echo_server)

    def test_spawn_on_dead_cpu_rejected(self):
        cluster = make_cluster()
        cluster.node("alpha").fail_cpu(2)
        with pytest.raises(RuntimeError):
            cluster.os("alpha").spawn("$x", 2, echo_server)

    def test_pick_cpu_prefers_least_loaded(self):
        cluster = make_cluster()
        node_os = cluster.os("alpha")
        node_os.spawn("$a", 0, echo_server)
        node_os.spawn("$b", 0, echo_server)
        assert node_os.pick_cpu(exclude=[1]) in (2, 3)


class CounterPair(ProcessPair):
    """A pair that counts requests, checkpointing after each one."""

    def on_start(self, proc):
        self.state.setdefault("count", 0)
        self.state.setdefault("completed", {})

    def handle(self, proc, message):
        completed = self.state["completed"]
        if message.msg_id in completed:
            proc.reply(message, completed[message.msg_id])
            return
        self.state["count"] += 1
        result = self.state["count"]
        completed[message.msg_id] = result
        yield from self.checkpoint(count=result, completed=completed)
        proc.reply(message, result)


class TestProcessPair:
    def test_normal_operation_counts(self):
        cluster = make_cluster()
        pair = CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)

        def client(proc):
            results = []
            for _ in range(3):
                value = yield from cluster.fs("alpha").send(proc, "$ctr", "inc")
                results.append(value)
            return results

        proc = cluster.os("alpha").spawn("$client", 2, client)
        assert cluster.run(proc.sim_process) == [1, 2, 3]
        assert pair.checkpoints_sent == 3

    def test_takeover_preserves_checkpointed_state(self):
        cluster = make_cluster()
        pair = CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)

        def client(proc):
            first = yield from cluster.fs("alpha").send(proc, "$ctr", "inc")
            cluster.node("alpha").fail_cpu(0)
            yield cluster.env.timeout(5)
            second = yield from cluster.fs("alpha").send(proc, "$ctr", "inc")
            return (first, second)

        proc = cluster.os("alpha").spawn("$client", 2, client)
        assert cluster.run(proc.sim_process) == (1, 2)
        assert pair.takeovers == 1
        assert pair.primary_cpu == 1
        assert pair.backup_cpu is not None  # re-protected on another CPU

    def test_filesystem_retry_hides_takeover(self):
        """The paper's transparency claim: a request in flight when the
        primary dies is retried automatically; the client never sees it."""
        cluster = make_cluster()
        CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)

        def client(proc):
            value = yield from cluster.fs("alpha").send(proc, "$ctr", "inc")
            return value

        def saboteur(proc):
            yield cluster.env.timeout(0.05)  # request is in flight
            cluster.node("alpha").fail_cpu(0)

        proc = cluster.os("alpha").spawn("$client", 2, client)
        cluster.os("alpha").spawn("$sab", 3, saboteur, register=False)
        assert cluster.run(proc.sim_process) == 1

    def test_duplicate_suppression_after_takeover(self):
        """If the old primary completed the op and checkpointed before
        dying, the retried request must not be applied twice."""
        cluster = make_cluster()
        pair = CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)

        def client(proc):
            v1 = yield from cluster.fs("alpha").send(proc, "$ctr", "inc")
            v2 = yield from cluster.fs("alpha").send(proc, "$ctr", "inc")
            return (v1, v2)

        def saboteur(proc):
            # Fail the primary after it has checkpointed+replied the first
            # op but (possibly) before the reply arrives.
            yield cluster.env.timeout(0.35)
            cluster.node("alpha").fail_cpu(0)

        proc = cluster.os("alpha").spawn("$client", 2, client)
        cluster.os("alpha").spawn("$sab", 3, saboteur, register=False)
        v1, v2 = cluster.run(proc.sim_process)
        assert (v1, v2) == (1, 2)  # not (1, 3): duplicate suppressed

    def test_pair_down_on_double_failure(self):
        cluster = make_cluster(cpus=2)
        pair = CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)
        cluster.node("alpha").fail_cpu(0)
        cluster.node("alpha").fail_cpu(1)
        assert not pair.available

    def test_backup_loss_recruits_replacement(self):
        cluster = make_cluster()
        pair = CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)
        cluster.node("alpha").fail_cpu(1)
        assert pair.available
        assert pair.backup_cpu in (2, 3)

    def test_unprotected_until_cpu_returns(self):
        cluster = make_cluster(cpus=2)
        pair = CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)
        cluster.node("alpha").fail_cpu(1)
        assert pair.available and not pair.protected
        cluster.node("alpha").restore_cpu(1)
        assert pair.protected and pair.backup_cpu == 1

    def test_restart_after_pair_down(self):
        cluster = make_cluster(cpus=2)
        pair = CounterPair(cluster.os("alpha"), "$ctr", 0, 1, cluster.tracer)
        cluster.node("alpha").total_failure()
        assert not pair.available
        cluster.node("alpha").restore_all_cpus()
        pair.restart(0, 1)
        assert pair.available and pair.protected

    def test_operator_pair_service_continuity(self):
        """The paper's operator-process example: console formatting keeps
        working across the failure of the primary's processor."""
        cluster = make_cluster()
        console = []

        class OperatorPair(ProcessPair):
            def on_start(self, proc):
                self.state.setdefault("seq", 0)

            def handle(self, proc, message):
                self.state["seq"] += 1
                yield from self.checkpoint(seq=self.state["seq"])
                console.append(f"[{self.state['seq']:04d}] {message.payload}")
                proc.reply(message, "logged")

        OperatorPair(cluster.os("alpha"), "$opr", 0, 1, cluster.tracer)

        def reporter(proc):
            yield from cluster.fs("alpha").send(proc, "$opr", "disc error")
            cluster.node("alpha").fail_cpu(0)
            yield cluster.env.timeout(5)
            yield from cluster.fs("alpha").send(proc, "$opr", "cpu 0 down")
            return console

        proc = cluster.os("alpha").spawn("$rep", 2, reporter)
        out = cluster.run(proc.sim_process)
        assert out == ["[0001] disc error", "[0002] cpu 0 down"]
