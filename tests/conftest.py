"""Shared test fixtures and builders."""

import pytest

from repro.discprocess import DataDictionary, DiscProcess, FileClient
from repro.guardian import Cluster


class StorageRig:
    """A one-node cluster with DISCPROCESS volumes, for storage tests."""

    def __init__(self, cpu_count=4, seed=1, audited=False, audit_builder=None):
        self.cluster = Cluster(seed=seed)
        self.node_os = self.cluster.add_node("alpha", cpu_count=cpu_count)
        self.cluster.connect_all()
        self.dictionary = DataDictionary()
        self.client = FileClient(self.cluster.fs("alpha"), self.dictionary)
        self.disc_processes = {}

    def add_volume(self, name="$data", cpus=(0, 1), audit_process=None, **kwargs):
        volume = self.cluster.node("alpha").add_volume(name, *cpus)
        dp = DiscProcess(
            self.node_os,
            name,
            cpus[0],
            cpus[1],
            volume,
            self.cluster.fs("alpha"),
            audit_process=audit_process,
            tracer=self.cluster.tracer,
            **kwargs,
        )
        self.disc_processes[name] = dp
        return dp

    def run(self, gen, cpu=2, name="$t"):
        """Run a client generator as a process and return its result."""
        proc = self.node_os.spawn(name, cpu, lambda p: gen(p), register=False)
        return self.cluster.run(proc.sim_process)


@pytest.fixture
def rig():
    rig = StorageRig()
    rig.add_volume()
    return rig


class TmfRig:
    """A multi-node cluster with full TMF on every node."""

    def __init__(self, nodes=("alpha",), cpu_count=4, seed=1):
        from repro.core import AuditProcess, AuditTrail, TmfNode

        self.cluster = Cluster(seed=seed)
        self.dictionary = DataDictionary()
        self.tmf = {}
        self.clients = {}
        self.audit_processes = {}
        self.disc_processes = {}
        for name in nodes:
            node_os = self.cluster.add_node(name, cpu_count=cpu_count)
            node = node_os.node
            audit_volume = node.add_volume("$audvol", 2, 3)
            trail = AuditTrail(audit_volume)
            audit_process = AuditProcess(
                node_os, "$aud", 2, 3, trail, self.cluster.tracer
            )
            tmf = TmfNode(
                node_os,
                self.cluster.fs(name),
                monitor_volume=audit_volume,
                tmp_cpus=(2, 3),
                tracer=self.cluster.tracer,
            )
            tmf.register_audit_process("$aud", audit_process)
            self.tmf[name] = tmf
            self.audit_processes[name] = audit_process
            self.clients[name] = FileClient(self.cluster.fs(name), self.dictionary)
        self.cluster.connect_all()

    def add_volume(self, node_name, volume_name, cpus=(0, 1), audited=True,
                   boxcar=True):
        node_os = self.cluster.os(node_name)
        volume = node_os.node.add_volume(volume_name, *cpus)
        dp = DiscProcess(
            node_os,
            volume_name,
            cpus[0],
            cpus[1],
            volume,
            self.cluster.fs(node_name),
            audit_process="$aud" if audited else None,
            tmf_registry=self.tmf[node_name],
            tracer=self.cluster.tracer,
            boxcar=boxcar,
        )
        self.tmf[node_name].register_disc_process(volume_name, dp)
        self.disc_processes[(node_name, volume_name)] = dp
        return dp

    def run(self, node_name, gen, cpu=0, name="$t"):
        node_os = self.cluster.os(node_name)
        proc = node_os.spawn(name, cpu, lambda p: gen(p), register=False)
        return self.cluster.run(proc.sim_process)


@pytest.fixture
def tmf_rig():
    rig = TmfRig()
    rig.add_volume("alpha", "$data")
    return rig
