"""The miniature Screen-COBOL-like language: parser, interpreter, and
end-to-end execution under a TCP."""

import pytest

from repro.apps.banking import bank_server, install_banking, populate_banking
from repro.encompass import SystemBuilder
from repro.encompass.scobol import ScobolError, compile_program


class FakeCtx:
    """A stand-in ScreenContext for interpreter-only tests."""

    def __init__(self, replies=()):
        self.transaction_id = "\\t.0.1"
        self.attempt = 0
        self.display_lines = []
        self.sent = []
        self._replies = list(replies)

    def send_ok(self, server, payload, timeout=None):
        self.sent.append((server, payload))
        reply = self._replies.pop(0) if self._replies else {"ok": True}
        return reply
        yield  # pragma: no cover

    def display(self, text):
        self.display_lines.append(text)

    def abort_transaction(self, reason="abort"):
        from repro.encompass import AbortTransaction
        raise AbortTransaction(reason)

    def restart_transaction(self, reason="restart"):
        from repro.encompass import RestartTransaction
        raise RestartTransaction(reason)


def run(program, ctx, data):
    gen = program(ctx, data)
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class TestInterpreter:
    def test_move_add_return(self):
        program = compile_program("""
            PROGRAM arith.
            MOVE 10 TO X.
            ADD 5 TO X.
            SUBTRACT 3 FROM X.
            RETURN X.
        """)
        assert run(program, FakeCtx(), {}) == 12

    def test_input_paths_and_records(self):
        program = compile_program("""
            PROGRAM paths.
            MOVE { item: INPUT.item, qty: INPUT.qty } TO REC.
            RETURN REC.
        """)
        assert run(program, FakeCtx(), {"item": "w", "qty": 3}) == {
            "item": "w", "qty": 3,
        }

    def test_send_sets_reply(self):
        program = compile_program("""
            PROGRAM sender.
            SEND { op: "ping" } TO "$srv".
            RETURN REPLY.answer.
        """)
        ctx = FakeCtx(replies=[{"ok": True, "answer": 42}])
        assert run(program, ctx, {}) == 42
        assert ctx.sent == [("$srv", {"op": "ping"})]

    def test_if_else(self):
        program = compile_program("""
            PROGRAM branch.
            IF INPUT.amount >= 0 THEN
                MOVE "credit" TO KIND.
            ELSE
                MOVE "debit" TO KIND.
            END-IF.
            RETURN KIND.
        """)
        assert run(program, FakeCtx(), {"amount": 10}) == "credit"
        assert run(program, FakeCtx(), {"amount": -1}) == "debit"

    def test_while_loop(self):
        program = compile_program("""
            PROGRAM looper.
            MOVE 0 TO TOTAL.
            MOVE 0 TO I.
            WHILE I < 5 DO
                ADD I TO TOTAL.
                ADD 1 TO I.
            END-WHILE.
            RETURN TOTAL.
        """)
        assert run(program, FakeCtx(), {}) == 10

    def test_display(self):
        program = compile_program("""
            PROGRAM shower.
            DISPLAY "balance is" INPUT.balance.
            RETURN 0.
        """)
        ctx = FakeCtx()
        run(program, ctx, {"balance": 7})
        assert ctx.display_lines == ["balance is 7"]

    def test_abort_verb(self):
        from repro.encompass import AbortTransaction
        program = compile_program("""
            PROGRAM quitter.
            ABORT-TRANSACTION "nope".
        """)
        with pytest.raises(AbortTransaction):
            run(program, FakeCtx(), {})

    def test_restart_verb(self):
        from repro.encompass import RestartTransaction
        program = compile_program("""
            PROGRAM retrier.
            IF ATTEMPT = 0 THEN
                RESTART-TRANSACTION "try again".
            END-IF.
            RETURN "ok".
        """)
        with pytest.raises(RestartTransaction):
            run(program, FakeCtx(), {})

    def test_transactionid_register(self):
        program = compile_program("""
            PROGRAM reg.
            RETURN TRANSACTIONID.
        """)
        assert run(program, FakeCtx(), {}) == "\\t.0.1"

    def test_comments_and_blanks_skipped(self):
        program = compile_program("""
            PROGRAM commented.
            * this is a comment
            MOVE 1 TO X.

            RETURN X.
        """)
        assert run(program, FakeCtx(), {}) == 1


class TestParseErrors:
    def test_missing_program_header(self):
        with pytest.raises(ScobolError):
            compile_program("MOVE 1 TO X.")

    def test_missing_period(self):
        with pytest.raises(ScobolError):
            compile_program("PROGRAM p.\nMOVE 1 TO X")

    def test_unterminated_if(self):
        with pytest.raises(ScobolError):
            compile_program("PROGRAM p.\nIF X = 1 THEN.\nMOVE 1 TO Y.")

    def test_unknown_statement(self):
        with pytest.raises(ScobolError):
            compile_program("PROGRAM p.\nFROB X.")

    def test_bad_comparator(self):
        with pytest.raises(ScobolError):
            compile_program("PROGRAM p.\nIF A ! B THEN.\nEND-IF.")

    def test_undefined_variable_at_runtime(self):
        program = compile_program("PROGRAM p.\nRETURN NOPE.")
        with pytest.raises(ScobolError):
            run(program, FakeCtx(), {})

    def test_runaway_loop_guarded(self):
        program = compile_program("""
            PROGRAM spin.
            MOVE 0 TO X.
            WHILE X = 0 DO
                ADD 0 TO X.
            END-WHILE.
        """)
        with pytest.raises(ScobolError):
            run(program, FakeCtx(), {})


class TestEndToEnd:
    def test_scobol_posting_under_tcp(self):
        """A Screen-COBOL-like requester drives the banking server
        through a real TCP, committing a TMF transaction."""
        builder = SystemBuilder(seed=19)
        builder.add_node("alpha", cpus=4)
        builder.add_volume("alpha", "$data", cpus=(0, 1))
        install_banking(builder, "alpha", "$data", server_instances=2)
        program = compile_program("""
            PROGRAM post-and-report.
            MOVE { op: "post", account_id: INPUT.account_id,
                   teller_id: INPUT.teller_id, branch_id: INPUT.branch_id,
                   amount: INPUT.amount } TO REQUEST.
            SEND REQUEST TO "$bank".
            DISPLAY "NEW BALANCE" REPLY.balance.
            IF REPLY.balance < 0 THEN
                ABORT-TRANSACTION "overdrawn".
            END-IF.
            RETURN REPLY.balance.
        """)
        builder.add_tcp("alpha", "$tcp1", cpus=(2, 3))
        builder.add_program("alpha", "$tcp1", "post", program)
        builder.add_terminal("alpha", "$tcp1", "T1", "post")
        system = builder.build()
        populate_banking(system, "alpha", branches=2, tellers_per_branch=2,
                         accounts=4)
        reply = system.drive("alpha", "$tcp1", "T1", {
            "account_id": 1, "teller_id": 0, "branch_id": 1, "amount": 25,
        })
        assert reply["ok"]
        assert reply["result"] == 1025
        assert reply["display"] == ["NEW BALANCE 1025"]
