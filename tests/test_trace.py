"""The TRACE causal-tracing subsystem (repro.trace).

Four properties pin the design, mirroring tests/test_measure.py:

* tracing is deterministic: two same-seed traced runs produce a
  byte-identical timeline JSON;
* tracing never perturbs the simulation: the traced run commits exactly
  what the untraced same-seed run commits, and untraced runs carry no
  hub at all;
* the assembled trace of a distributed transaction is a causally
  ordered tree spanning the nodes it touched, with TCP, server,
  DISCPROCESS, audit and TMP hops all present;
* the export is valid Chrome ``trace_event`` JSON.

Plus the satellite fixes: :class:`repro.sim.TraceRecord` survives
copy/pickle, and the tracer's per-kind index stays coherent with the
full record list through ``clear()``.
"""

import copy
import json
import pickle
import random

import pytest

from repro.apps.banking import (
    debit_credit_program,
    install_banking,
    populate_banking,
)
from repro.core import Tmfcom
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec
from repro.encompass import SystemBuilder
from repro.sim import TraceRecord, Tracer
from repro.workloads import run_closed_loop


# ---------------------------------------------------------------------------
# Satellite fixes: TraceRecord dunder guard, Tracer kind index
# ---------------------------------------------------------------------------

def test_trace_record_survives_copy_and_pickle():
    record = TraceRecord(time=3.5, kind="checkpoint", fields={"node": "a"})
    assert record.node == "a"
    for clone in (copy.copy(record), copy.deepcopy(record),
                  pickle.loads(pickle.dumps(record))):
        assert clone.time == 3.5 and clone.kind == "checkpoint"
        assert clone.node == "a"
    with pytest.raises(AttributeError):
        record.missing_field
    # Dunder probes must fail fast instead of recursing into fields.
    with pytest.raises(AttributeError):
        record.__getstate_probe__


def test_tracer_kind_index_matches_full_scan_through_clear():
    tracer = Tracer()
    for i in range(6):
        tracer.emit(float(i), "even" if i % 2 == 0 else "odd", n=i)
    assert [r.n for r in tracer.iter("even")] == [0, 2, 4]
    assert [r.n for r in tracer.select("odd", n=3)] == [3]
    # The index selects exactly what a linear scan over records would.
    for kind in ("even", "odd"):
        assert list(tracer.iter(kind)) == [
            r for r in tracer.records if r.kind == kind
        ]
    tracer.clear()
    assert tracer.records == [] and list(tracer.iter("even")) == []
    tracer.emit(9.0, "even", n=8)
    assert [r.n for r in tracer.iter("even")] == [8]
    assert len(tracer.records) == 1


# ---------------------------------------------------------------------------
# Traced banking runs: determinism and non-perturbation
# ---------------------------------------------------------------------------

def _run_banking(trace):
    builder = SystemBuilder(seed=11, keep_trace=trace, trace=trace,
                            watchdog=trace)
    builder.add_node("alpha", cpus=4)
    builder.add_volume("alpha", "$data", cpus=(0, 1))
    install_banking(builder, "alpha", "$data", server_instances=2)
    builder.add_tcp("alpha", "$tcp1", cpus=(2, 3))
    builder.add_program("alpha", "$tcp1", "post", debit_credit_program)
    terminals = [f"T{i}" for i in range(4)]
    for terminal in terminals:
        builder.add_terminal("alpha", "$tcp1", terminal, "post")
    system = builder.build()
    populate_banking(system, "alpha", branches=2, tellers_per_branch=2,
                     accounts=8)

    def make_input(rng, terminal_id, iteration):
        return {
            "account_id": rng.randrange(8),
            "teller_id": rng.randrange(4),
            "branch_id": rng.randrange(2),
            "amount": rng.choice([5, -5, 10]),
            "allow_overdraft": True,
        }

    result = run_closed_loop(
        system, "alpha", "$tcp1", terminals, make_input,
        duration=1500.0, think_time=10.0, rng=random.Random(3),
    )
    return system, result


def test_same_seed_traced_runs_are_byte_identical():
    system1, result1 = _run_banking(trace=True)
    system2, result2 = _run_banking(trace=True)
    blob1, blob2 = system1.timeline_json(), system2.timeline_json()
    assert blob1 == blob2
    assert result1.committed == result2.committed
    # And the run actually traced something.
    ids = system1.trace_collector.trace_ids()
    assert ids
    unit = next(t for t in ids if ".2." in t)   # a TCP-begun transaction
    assert system1.trace_of(unit).render() == system2.trace_of(unit).render()


def test_tracing_does_not_perturb_the_simulation():
    traced, result_traced = _run_banking(trace=True)
    untraced, result_untraced = _run_banking(trace=False)
    assert result_traced.committed == result_untraced.committed
    assert result_traced.failed == result_untraced.failed
    assert [m.end for m in result_traced.metrics] == [
        m.end for m in result_untraced.metrics
    ]
    # A clean run alarms nothing.
    assert traced.watchdog.summary()["alarms"] == 0
    assert traced.xray_report()["watchdog"]["alarms"] == 0
    # Untraced runs carry no hub at all on the environment...
    assert untraced.env.trace is None
    assert untraced.trace_collector is None and untraced.watchdog is None
    assert "watchdog" not in untraced.xray_report()
    # ...and the accessors refuse rather than degrade silently.
    with pytest.raises(RuntimeError, match="tracing is disabled"):
        untraced.trace_of("anything")
    with pytest.raises(RuntimeError, match="tracing is disabled"):
        untraced.timeline_json()


# ---------------------------------------------------------------------------
# The distributed acceptance trace: 3 nodes, every hop kind
# ---------------------------------------------------------------------------

def _build_three_node_traced():
    builder = SystemBuilder(seed=21, trace=True)
    for name in ("node1", "node2", "node3"):
        builder.add_node(name, cpus=4)
        builder.add_volume(name, "$data", cpus=(0, 1))
    builder.define_file(
        FileSchema(
            name="ledger",
            organization=KEY_SEQUENCED,
            primary_key=("entry",),
            audited=True,
            partitions=(PartitionSpec("node3", "$data"),),
        )
    )

    def ledger_server(ctx, request):
        key = (request["entry"],)
        record = yield from ctx.read("ledger", key, lock=True)
        if record is None:
            yield from ctx.insert("ledger", {"entry": request["entry"],
                                             "value": request["value"]})
        else:
            record["value"] = request["value"]
            yield from ctx.update("ledger", record)
        return {"ok": True}

    builder.add_server_class("node2", "$ledger", ledger_server, instances=1)

    def post_entry(ctx, data):
        yield from ctx.send_ok("\\node2.$ledger-1", data)
        return {"posted": data["entry"]}

    builder.add_tcp("node1", "$tcp", cpus=(2, 3))
    builder.add_program("node1", "$tcp", "post-entry", post_entry)
    builder.add_terminal("node1", "$tcp", "T1", "post-entry")
    return builder.build()


@pytest.fixture(scope="module")
def distributed_trace():
    system = _build_three_node_traced()

    def driver(proc):
        reply = yield from system.terminal_request(
            proc, "node1", "$tcp", "T1", {"entry": 1, "value": 100}
        )
        return reply

    proc = system.spawn("node1", "$term", driver, cpu=2)
    reply = system.cluster.run(proc.sim_process)
    assert reply["ok"], reply
    return system, system.trace_of(reply["transid"])


def test_distributed_trace_spans_nodes_and_hop_kinds(distributed_trace):
    _system, trace = distributed_trace
    assert len(trace.nodes) >= 2
    assert {"node1", "node2", "node3"} <= set(trace.nodes)
    # Every required hop appears as a span endpoint: the TCP, the
    # application server, the DISCPROCESS, the audit process, the TMP.
    processes = set(trace.processes)
    assert "$tcp" in processes
    assert any(p.startswith("$ledger") for p in processes)
    assert "$data" in processes and "$aud" in processes
    assert "$TMP" in processes
    # The root is the TCP's serve span (the unit adopted its transid).
    assert len(trace.roots) == 1
    root = trace.roots[0]
    assert root.kind == "serve" and root.name == "$tcp"
    assert root.node == "node1"


def test_distributed_trace_is_causally_ordered(distributed_trace):
    _system, trace = distributed_trace

    def walk(span, depth=0):
        assert span.end is not None and span.end >= span.start
        previous_start = None
        for child in span.children:
            # A child starts within its parent and after its siblings.
            assert child.start >= span.start
            assert child.hop > span.hop or span.kind == "rpc"
            if previous_start is not None:
                assert child.start >= previous_start
            previous_start = child.start
            walk(child, depth + 1)

    for root in trace.roots:
        walk(root)
    # spans is the same set, in (start, emission) order.
    starts = [span.start for span in trace.spans]
    assert starts == sorted(starts)


def test_timeline_export_is_valid_chrome_trace_event_json(
        distributed_trace, tmp_path):
    system, trace = distributed_trace
    path = tmp_path / "timeline.json"
    system.write_timeline(str(path), [trace.transid])
    with open(path) as handle:
        document = json.load(handle)
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert events
    phases = {event["ph"] for event in events}
    assert "X" in phases and "M" in phases
    for event in events:
        assert event["ph"] in ("M", "X", "i")
        assert isinstance(event["pid"], int)
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            continue
        assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
            assert event["args"]["trace_id"] == trace.transid
    # Three simulated nodes -> three timeline processes.
    pids = {e["pid"] for e in events if e["ph"] != "M"}
    assert len({e["pid"] for e in events}) >= 3
    assert pids  # at least one span/instant event landed


def test_flight_recorder_screen_and_tmfcom_delegation(distributed_trace):
    system, trace = distributed_trace
    screen = system.trace_screen(trace.transid)
    assert screen.startswith(f"TRANSACTION {trace.transid}")
    assert "[serve]" in screen and "[rpc]" in screen
    assert "3 nodes" in screen
    # TMFCOM's INFO TRANSACTION, TRACE delegates to the collector.
    tmfcom = system.tmfcom("node1")
    assert tmfcom.trace(trace.transid) == screen
    assert "no trace recorded" in tmfcom.trace("\\nowhere.9.9")
    bare = Tmfcom(system.tmf["node1"])
    assert "tracing not enabled" in bare.trace(trace.transid)
