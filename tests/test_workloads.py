"""Unit tests for the workload-generation package."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import zipf_weights
from repro.workloads import (
    FailureEvent,
    FailureSchedule,
    KeyChooser,
    format_table,
    random_failure_schedule,
    sweep,
)
from repro.guardian import Cluster


class TestZipf:
    def test_uniform_degenerate(self):
        weights = zipf_weights(4, 0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_skew_orders_weights(self):
        weights = zipf_weights(10, 1.0)
        assert weights == sorted(weights, reverse=True)
        assert sum(weights) == pytest.approx(1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestKeyChooser:
    def test_uniform_covers_space(self):
        chooser = KeyChooser(random.Random(1), 10, skew=0.0)
        seen = {chooser.choose() for _ in range(500)}
        assert seen == set(range(10))

    def test_skew_concentrates_on_low_keys(self):
        chooser = KeyChooser(random.Random(2), 100, skew=1.5)
        draws = [chooser.choose() for _ in range(2000)]
        hot_share = sum(1 for k in draws if k < 5) / len(draws)
        assert hot_share > 0.5

    def test_choose_distinct(self):
        chooser = KeyChooser(random.Random(3), 8, skew=1.0)
        keys = chooser.choose_distinct(8)
        assert sorted(keys) == list(range(8))
        with pytest.raises(ValueError):
            chooser.choose_distinct(9)

    def test_deterministic_given_seed(self):
        a = KeyChooser(random.Random(7), 50, skew=0.9)
        b = KeyChooser(random.Random(7), 50, skew=0.9)
        assert [a.choose() for _ in range(20)] == [b.choose() for _ in range(20)]

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 50), skew=st.floats(0, 3))
    def test_property_draws_in_range(self, n, skew):
        chooser = KeyChooser(random.Random(0), n, skew=skew)
        assert all(0 <= chooser.choose() < n for _ in range(50))


class TestSweepAndTables:
    def test_sweep_collects_rows(self):
        rows = sweep([1, 2, 3], lambda v: {"square": v * v}, parameter_name="n")
        assert rows == [
            {"n": 1, "square": 1},
            {"n": 2, "square": 4},
            {"n": 3, "square": 9},
        ]

    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.125}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[1] and "bb" in lines[1]
        assert "2.50" in text and "0.12" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="X")


class TestFailureSchedules:
    def _cluster(self):
        cluster = Cluster(seed=9)
        cluster.add_node("alpha", cpu_count=4)
        cluster.add_node("beta", cpu_count=2)
        cluster.connect_all()
        cluster.node("alpha").add_volume("$d", 0, 1)
        return cluster

    def test_schedule_fails_and_restores(self):
        cluster = self._cluster()
        cpu = cluster.node("alpha").cpus[1]
        FailureSchedule(cluster, [FailureEvent(at=10, component=cpu, restore_at=30)])
        cluster.run(until=20)
        assert cpu.down
        cluster.run(until=40)
        assert cpu.up

    def test_schedule_orders_events(self):
        cluster = self._cluster()
        a = cluster.node("alpha").cpus[2]
        b = cluster.node("alpha").cpus[3]
        schedule = FailureSchedule(cluster, [
            FailureEvent(at=50, component=a, restore_at=60),
            FailureEvent(at=10, component=b, restore_at=20),
        ])
        cluster.run(until=100)
        log = [entry for _t, entry in schedule.injected]
        assert log == [
            "fail:cpu:alpha.cpu3", "restore:cpu:alpha.cpu3",
            "fail:cpu:alpha.cpu2", "restore:cpu:alpha.cpu2",
        ]

    def test_restored_drive_revived_from_mirror(self):
        cluster = self._cluster()
        volume = cluster.node("alpha").volumes["$d"]
        volume.write_block(("f", 1), "x")
        drive = volume.drives[1]
        FailureSchedule(cluster, [FailureEvent(at=5, component=drive, restore_at=10)])
        cluster.run(until=20)
        assert drive.serviceable
        assert drive.blocks == volume.drives[0].blocks

    def test_random_schedule_respects_protect_and_kinds(self):
        cluster = self._cluster()
        rng = random.Random(4)
        protect = [cluster.node("alpha").cpus[0]]
        events = random_failure_schedule(
            cluster, rng, duration=1000, count=20,
            kinds=("cpu",), protect=protect,
        )
        assert len(events) == 20
        for event in events:
            assert event.component.kind == "cpu"
            assert event.component is not protect[0]
            assert 0 < event.at < 1000
            assert event.restore_at > event.at

    def test_random_schedule_deterministic(self):
        cluster = self._cluster()
        events_a = random_failure_schedule(
            cluster, random.Random(5), 1000, 5, kinds=("cpu", "bus")
        )
        events_b = random_failure_schedule(
            cluster, random.Random(5), 1000, 5, kinds=("cpu", "bus")
        )
        assert [(e.at, e.component.full_name) for e in events_a] == [
            (e.at, e.component.full_name) for e in events_b
        ]
