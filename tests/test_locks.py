"""Tests for the per-volume lock manager."""

import pytest

from repro.discprocess.locks import LockManager, LockTimeout
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def lm(env):
    return LockManager(env, name="$data")


def run(env, gen):
    return env.run(env.process(gen))


class TestBasicLocking:
    def test_grant_free_record_lock(self, env, lm):
        def proc():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=100)
            return lm.holder_of_record("f", ("k",))

        assert run(env, proc()) == "t1"
        assert lm.grants == 1

    def test_reacquire_own_lock_is_noop_grant(self, env, lm):
        def proc():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=100)
            yield from lm.acquire_record("t1", "f", ("k",), timeout=100)
            return True

        assert run(env, proc())
        assert lm.waits == 0

    def test_conflicting_lock_waits_until_release(self, env, lm):
        order = []

        def holder():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=100)
            yield env.timeout(50)
            lm.release_all("t1")
            order.append(("released", env.now))

        def waiter():
            yield env.timeout(1)
            yield from lm.acquire_record("t2", "f", ("k",), timeout=200)
            order.append(("granted", env.now))

        env.process(holder())
        env.process(waiter())
        env.run()
        assert order == [("released", 50), ("granted", 50)]
        assert lm.holder_of_record("f", ("k",)) == "t2"

    def test_lock_timeout_raises(self, env, lm):
        outcome = []

        def holder():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=10)
            yield env.timeout(1000)

        def waiter():
            yield env.timeout(1)
            try:
                yield from lm.acquire_record("t2", "f", ("k",), timeout=20)
            except LockTimeout as exc:
                outcome.append((env.now, exc.transid))

        env.process(holder())
        env.process(waiter())
        env.run(until=500)
        assert outcome == [(21, "t2")]
        assert lm.timeouts == 1

    def test_fifo_grant_order(self, env, lm):
        granted = []

        def holder():
            yield from lm.acquire_record("t0", "f", ("k",), timeout=10)
            yield env.timeout(10)
            lm.release_all("t0")

        def waiter(tid, delay):
            yield env.timeout(delay)
            yield from lm.acquire_record(tid, "f", ("k",), timeout=500)
            granted.append(tid)
            yield env.timeout(5)
            lm.release_all(tid)

        env.process(holder())
        env.process(waiter("t1", 1))
        env.process(waiter("t2", 2))
        env.process(waiter("t3", 3))
        env.run()
        assert granted == ["t1", "t2", "t3"]

    def test_release_all_returns_count(self, env, lm):
        def proc():
            yield from lm.acquire_record("t1", "f", ("a",), timeout=10)
            yield from lm.acquire_record("t1", "f", ("b",), timeout=10)
            yield from lm.acquire_file("t1", "g", timeout=10)
            return lm.release_all("t1")

        assert run(env, proc()) == 3
        assert lm.held_count() == 0


class TestFileLocks:
    def test_file_lock_blocks_record_lock(self, env, lm):
        events = []

        def file_holder():
            yield from lm.acquire_file("t1", "f", timeout=10)
            yield env.timeout(30)
            lm.release_all("t1")

        def record_waiter():
            yield env.timeout(1)
            yield from lm.acquire_record("t2", "f", ("k",), timeout=100)
            events.append(env.now)

        env.process(file_holder())
        env.process(record_waiter())
        env.run()
        assert events == [30]

    def test_record_lock_blocks_file_lock(self, env, lm):
        events = []

        def record_holder():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=10)
            yield env.timeout(30)
            lm.release_all("t1")

        def file_waiter():
            yield env.timeout(1)
            yield from lm.acquire_file("t2", "f", timeout=100)
            events.append(env.now)

        env.process(record_holder())
        env.process(file_waiter())
        env.run()
        assert events == [30]

    def test_own_record_locks_do_not_block_own_file_lock(self, env, lm):
        def proc():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=10)
            yield from lm.acquire_file("t1", "f", timeout=10)
            return True

        assert run(env, proc())

    def test_file_locks_on_different_files_independent(self, env, lm):
        def proc():
            yield from lm.acquire_file("t1", "f", timeout=10)
            yield from lm.acquire_file("t2", "g", timeout=10)
            return (lm.holder_of_file("f"), lm.holder_of_file("g"))

        assert run(env, proc()) == ("t1", "t2")


class TestDeadlock:
    def _start_deadlock(self, env, lm, timeout_a=100, timeout_b=100):
        """t1 holds a, wants b; t2 holds b, wants a."""
        outcomes = []

        def tx(tid, first, second, timeout):
            yield from lm.acquire_record(tid, "f", first, timeout=10)
            yield env.timeout(5)
            try:
                yield from lm.acquire_record(tid, "f", second, timeout=timeout)
                outcomes.append((tid, "granted"))
            except LockTimeout:
                outcomes.append((tid, "timeout"))
                lm.release_all(tid)

        env.process(tx("t1", ("a",), ("b",), timeout_a))
        env.process(tx("t2", ("b",), ("a",), timeout_b))
        return outcomes

    def test_deadlock_resolved_by_timeout(self, env, lm):
        outcomes = self._start_deadlock(env, lm, timeout_a=20, timeout_b=200)
        env.run()
        # t1 times out first, releases, t2 then gets its lock.
        assert ("t1", "timeout") in outcomes
        assert ("t2", "granted") in outcomes

    def test_waits_for_graph_sees_cycle(self, env, lm):
        self._start_deadlock(env, lm)
        env.run(until=10)  # both are now waiting on each other
        cycle = lm.find_deadlock_cycle()
        assert cycle is not None
        assert set(cycle) == {"t1", "t2"}

    def test_no_cycle_when_simple_wait(self, env, lm):
        def holder():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=10)
            yield env.timeout(100)

        def waiter():
            yield env.timeout(1)
            yield from lm.acquire_record("t2", "f", ("k",), timeout=300)

        env.process(holder())
        env.process(waiter())
        env.run(until=10)
        assert lm.find_deadlock_cycle() is None
        assert lm.waits_for_edges() == [("t2", "t1")]

    def test_three_way_cycle_detected(self, env, lm):
        def tx(tid, first, second):
            yield from lm.acquire_record(tid, "f", first, timeout=10)
            yield env.timeout(5)
            try:
                yield from lm.acquire_record(tid, "f", second, timeout=1000)
            except LockTimeout:
                lm.release_all(tid)

        env.process(tx("t1", ("a",), ("b",)))
        env.process(tx("t2", ("b",), ("c",)))
        env.process(tx("t3", ("c",), ("a",)))
        env.run(until=20)
        cycle = lm.find_deadlock_cycle()
        assert cycle is not None
        assert set(cycle) == {"t1", "t2", "t3"}


class TestTryAcquire:
    def test_try_acquire_success_and_failure(self, env, lm):
        assert lm.try_acquire_record("t1", "f", ("k",))
        assert not lm.try_acquire_record("t2", "f", ("k",))
        assert lm.try_acquire_record("t1", "f", ("k",))  # own lock

    def test_zero_timeout_is_immediate_failure(self, env, lm):
        def proc():
            yield from lm.acquire_record("t1", "f", ("k",), timeout=10)
            try:
                yield from lm.acquire_record("t2", "f", ("k",), timeout=0)
            except LockTimeout:
                return "immediate"

        assert run(env, proc()) == "immediate"
