"""Distributed TMF: remote begin, the distributed two-phase commit,
unilateral abort, partition stranding, manual override, safe delivery.
"""

import pytest

from repro.core import TransactionAborted, TxState
from repro.discprocess import FileSchema, KEY_SEQUENCED, PartitionSpec

from conftest import TmfRig


@pytest.fixture
def net_rig():
    rig = TmfRig(nodes=("alpha", "beta", "gamma"))
    rig.add_volume("alpha", "$data")
    rig.add_volume("beta", "$data")
    rig.add_volume("gamma", "$data")
    rig.dictionary.define(
        FileSchema(
            name="a_file",
            organization=KEY_SEQUENCED,
            primary_key=("k",),
            audited=True,
            partitions=(PartitionSpec("alpha", "$data"),),
        )
    )
    rig.dictionary.define(
        FileSchema(
            name="b_file",
            organization=KEY_SEQUENCED,
            primary_key=("k",),
            audited=True,
            partitions=(PartitionSpec("beta", "$data"),),
        )
    )
    rig.dictionary.define(
        FileSchema(
            name="g_file",
            organization=KEY_SEQUENCED,
            primary_key=("k",),
            audited=True,
            partitions=(PartitionSpec("gamma", "$data"),),
        )
    )
    return rig


def create_files(rig, proc):
    client = rig.clients["alpha"]
    for name in ("a_file", "b_file", "g_file"):
        yield from client.create_file(proc, rig.dictionary.schema(name))


class TestDistributedCommit:
    def test_two_node_commit(self, net_rig):
        tmf_a = net_rig.tmf["alpha"]
        client = net_rig.clients["alpha"]

        def body(proc):
            yield from create_files(net_rig, proc)
            transid = yield from tmf_a.begin(proc)
            yield from client.insert(proc, "a_file", {"k": 1, "v": "local"}, transid=transid)
            yield from client.insert(proc, "b_file", {"k": 1, "v": "remote"}, transid=transid)
            yield from tmf_a.end(proc, transid)
            local = yield from client.read(proc, "a_file", (1,))
            remote = yield from client.read(proc, "b_file", (1,))
            return local["v"], remote["v"], str(transid)

        local, remote, transid_str = net_rig.run("alpha", body)
        assert (local, remote) == ("local", "remote")
        assert tmf_a.remote_begins_sent == 1
        assert tmf_a.phase1_sent == 1
        # Both participating nodes durably record the disposition.
        assert any(
            str(t) == transid_str and d == "committed"
            for t, d in net_rig.tmf["alpha"].dispositions.items()
        )

    def test_remote_node_releases_locks_after_phase2(self, net_rig):
        tmf_a = net_rig.tmf["alpha"]
        client = net_rig.clients["alpha"]

        def body(proc):
            yield from create_files(net_rig, proc)
            transid = yield from tmf_a.begin(proc)
            yield from client.insert(proc, "b_file", {"k": 5, "v": 1}, transid=transid)
            yield from tmf_a.end(proc, transid)
            # Safe-delivery phase 2 may lag; give the pump a moment.
            yield net_rig.cluster.env.timeout(1000)
            return net_rig.disc_processes[("beta", "$data")].locks.held_count()

        assert net_rig.run("alpha", body) == 0

    def test_nonparticipant_gets_no_broadcasts(self, net_rig):
        """Network rule of §Transaction State Change: only participating
        nodes are notified."""
        tmf_a = net_rig.tmf["alpha"]
        client = net_rig.clients["alpha"]

        def body(proc):
            yield from create_files(net_rig, proc)
            transid = yield from tmf_a.begin(proc)
            yield from client.insert(proc, "b_file", {"k": 1, "v": 1}, transid=transid)
            yield from tmf_a.end(proc, transid)
            return str(transid)

        transid_str = net_rig.run("alpha", body)
        nodes_seen = {
            r.node
            for r in net_rig.cluster.tracer.select("state_broadcast", transid=transid_str)
        }
        assert "gamma" not in nodes_seen
        assert nodes_seen == {"alpha", "beta"}

    def test_transitive_three_node_chain(self, net_rig):
        """The paper's example: TCP on node 1 SENDs to a server on node
        2, which updates a record via a DISCPROCESS on node 3.  Node 1
        knows only of node 2; node 2 knows of node 3; the commit wave
        travels the transmission tree."""
        tmf_a = net_rig.tmf["alpha"]
        client_a = net_rig.clients["alpha"]
        client_b = net_rig.clients["beta"]

        def beta_server(proc):
            while True:
                message = yield from proc.receive()
                # The server's current transid came with the request; its
                # own I/O to gamma exports the transid transitively.
                yield from client_b.insert(
                    proc, "g_file", dict(message.payload), transid=message.transid
                )
                proc.reply(message, {"ok": True})

        def body(proc):
            yield from create_files(net_rig, proc)
            net_rig.cluster.os("beta").spawn("$server", 0, beta_server)
            transid = yield from tmf_a.begin(proc)
            yield from net_rig.cluster.fs("alpha").send(
                proc, "\\beta.$server", {"k": 9, "v": "via beta"}, transid=transid
            )
            yield from tmf_a.end(proc, transid)
            record = yield from client_a.read(proc, "g_file", (9,))
            # Phase 2 propagates by safe delivery; let the pumps drain.
            yield net_rig.cluster.env.timeout(2000)
            return record["v"], str(transid)

        value, transid_str = net_rig.run("alpha", body)
        assert value == "via beta"
        # alpha only transmitted to beta; beta transmitted to gamma.
        transid = next(t for t in tmf_a.records if str(t) == transid_str)
        assert tmf_a.records[transid].children == {"beta"}
        assert net_rig.tmf["beta"].records[transid].children == {"gamma"}
        assert net_rig.tmf["beta"].records[transid].parent == "alpha"
        # All three nodes broadcast the full commit sequence.
        for node in ("alpha", "beta", "gamma"):
            states = [
                r.state
                for r in net_rig.cluster.tracer.select(
                    "state_broadcast", transid=transid_str, node=node
                )
            ]
            assert states == ["active", "ending", "ended"]


class TestPartitionAborts:
    def test_partition_before_commit_aborts_everywhere(self, net_rig):
        tmf_a = net_rig.tmf["alpha"]
        client = net_rig.clients["alpha"]

        def body(proc):
            yield from create_files(net_rig, proc)
            transid = yield from tmf_a.begin(proc)
            yield from client.insert(proc, "a_file", {"k": 1, "v": "x"}, transid=transid)
            yield from client.insert(proc, "b_file", {"k": 1, "v": "y"}, transid=transid)
            net_rig.cluster.network.partition(["alpha", "gamma"], ["beta"])
            try:
                yield from tmf_a.end(proc, transid)
                outcome = "committed"
            except TransactionAborted:
                outcome = "aborted"
            local = yield from client.read(proc, "a_file", (1,))
            # Heal; safe-delivery abort reaches beta, which backs out.
            net_rig.cluster.network.heal()
            yield net_rig.cluster.env.timeout(3000)
            return outcome, local, str(transid)

        outcome, local, transid_str = net_rig.run("alpha", body)
        assert outcome == "aborted"
        assert local is None  # alpha's own update backed out
        # Beta eventually backed out too (unilateral or safe-delivery).
        beta_tmf = net_rig.tmf["beta"]
        transid = next(t for t in beta_tmf.records if str(t) == transid_str)
        assert beta_tmf.records[transid].done == "aborted"

        def check(proc):
            record = yield from net_rig.clients["beta"].read(proc, "b_file", (1,))
            return record

        assert net_rig.run("beta", check, name="$chk") is None

    def test_unilateral_abort_forces_consensus(self, net_rig):
        """A participant that lost its parent aborts unilaterally; the
        later phase-1 request gets a 'no' vote."""
        tmf_a = net_rig.tmf["alpha"]
        tmf_b = net_rig.tmf["beta"]
        client = net_rig.clients["alpha"]

        def body(proc):
            yield from create_files(net_rig, proc)
            transid = yield from tmf_a.begin(proc)
            yield from client.insert(proc, "b_file", {"k": 2, "v": "y"}, transid=transid)
            net_rig.cluster.network.partition(["alpha"], ["beta", "gamma"])
            # Beta's sweep notices the lost parent and aborts unilaterally.
            yield net_rig.cluster.env.timeout(2000)
            done_during_partition = tmf_b.records[transid].done
            net_rig.cluster.network.heal()
            try:
                yield from tmf_a.end(proc, transid)
                outcome = "committed"
            except TransactionAborted:
                outcome = "aborted"
            return done_during_partition, outcome

        done_during_partition, outcome = net_rig.run("alpha", body)
        assert done_during_partition == "aborted"   # unilateral
        assert outcome == "aborted"                 # consensus forced

    def test_locks_stranded_after_phase1_ack_until_heal(self, net_rig):
        tmf_a = net_rig.tmf["alpha"]
        tmf_b = net_rig.tmf["beta"]
        client = net_rig.clients["alpha"]
        observations = {}

        def committer(proc, transid):
            try:
                yield from tmf_a.end(proc, transid)
                observations["home"] = "committed"
            except TransactionAborted:
                observations["home"] = "aborted"

        def body(proc):
            yield from create_files(net_rig, proc)
            transid = yield from tmf_a.begin(proc)
            yield from client.insert(proc, "b_file", {"k": 3, "v": "z"}, transid=transid)
            node_os = net_rig.cluster.os("alpha")
            c = node_os.spawn("$commit", 1, lambda p: committer(p, transid), register=False)
            # Partition the instant beta acks phase 1 (its reply already
            # left, so the home node can still commit).
            while not tmf_b.records[transid].phase1_acked:
                yield net_rig.cluster.env.timeout(1)
            net_rig.cluster.network.partition(["alpha"], ["beta", "gamma"])
            yield c.sim_process
            # Beta acked phase 1: it must hold the locks while cut off.
            yield net_rig.cluster.env.timeout(2000)
            observations["locks_during_partition"] = (
                net_rig.disc_processes[("beta", "$data")].locks.held_count()
            )
            observations["beta_done_during"] = tmf_b.records[transid].done
            net_rig.cluster.network.heal()
            yield net_rig.cluster.env.timeout(3000)
            observations["locks_after_heal"] = (
                net_rig.disc_processes[("beta", "$data")].locks.held_count()
            )
            observations["beta_done_after"] = tmf_b.records[transid].done
            return observations

        result = net_rig.run("alpha", body)
        assert result["home"] == "committed"
        assert result["locks_during_partition"] > 0     # stranded
        assert result["beta_done_during"] is None       # in doubt
        assert result["locks_after_heal"] == 0          # safe delivery won
        assert result["beta_done_after"] == "committed"

    def test_manual_override_frees_stranded_locks(self, net_rig):
        from repro.core import TmpForceDisposition, TmpQuery

        tmf_a = net_rig.tmf["alpha"]
        tmf_b = net_rig.tmf["beta"]
        client = net_rig.clients["alpha"]
        observations = {}

        def committer(proc, transid):
            try:
                yield from tmf_a.end(proc, transid)
                observations["home"] = "committed"
            except TransactionAborted:
                observations["home"] = "aborted"

        def operator_beta(proc, transid):
            # Step 1-2 of the paper's manual procedure: the operator
            # learns the disposition at the home node "by telephone".
            disposition = tmf_a.dispositions.get(transid, "aborted")
            # Step 3: force it at the stranded node.
            yield from net_rig.cluster.fs("beta").send(
                proc, "$TMP", TmpForceDisposition(transid, disposition)
            )
            observations["forced"] = disposition

        def body(proc):
            yield from create_files(net_rig, proc)
            transid = yield from tmf_a.begin(proc)
            yield from client.insert(proc, "b_file", {"k": 4, "v": "w"}, transid=transid)
            node_os = net_rig.cluster.os("alpha")
            c = node_os.spawn("$commit", 1, lambda p: committer(p, transid), register=False)
            while not tmf_b.records[transid].phase1_acked:
                yield net_rig.cluster.env.timeout(1)
            net_rig.cluster.network.partition(["alpha"], ["beta", "gamma"])
            yield c.sim_process
            yield net_rig.cluster.env.timeout(500)
            # Operator intervenes on beta while still partitioned.
            op = net_rig.cluster.os("beta").spawn(
                "$op", 0, lambda p: operator_beta(p, transid), register=False
            )
            yield op.sim_process
            observations["locks_after_override"] = (
                net_rig.disc_processes[("beta", "$data")].locks.held_count()
            )
            observations["beta_done"] = tmf_b.records[transid].done
            return observations

        result = net_rig.run("alpha", body)
        assert result["home"] == "committed"
        assert result["forced"] == "committed"
        assert result["locks_after_override"] == 0
        assert result["beta_done"] == "committed"
